//! Offline shim for `proptest`: deterministic, shrinkless property
//! testing with the same surface syntax as upstream (`proptest!`,
//! `prop_oneof!`, `prop_assert*`, `prop_assume!`, strategy combinators,
//! `prop::collection::vec`).
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! inputs that triggered it verbatim), and case generation is seeded from
//! the test name so every run explores the same inputs.

use std::fmt::Debug;
use std::ops::Range;

// ---------------------------------------------------------------------
// Deterministic RNG (splitmix64)
// ---------------------------------------------------------------------

/// The per-case random source handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Widening-multiply; modulo bias is irrelevant for test-case
        // generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------

pub trait Strategy {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Type-erased strategy; what `prop_oneof!` arms become.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union(alternatives)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

// Integer range strategies.
macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// Tuple strategies.
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// `Just` always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2.0 - 1.0
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T` (uniform bits for integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Length bounds accepted by `vec` (ranges or an exact size).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, 0..25)` etc.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------

#[derive(Debug)]
pub enum TestCaseError {
    /// Assumption failed — the case is discarded and retried.
    Reject,
    /// Assertion failed — the test fails with this message.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

pub mod test_runner {
    pub use super::TestCaseError;

    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `case` for `config.cases` deterministic inputs seeded from
    /// `name`; rejected cases (failed `prop_assume!`) are retried and do
    /// not count, up to a cap.
    pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut super::TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name.as_bytes());
        let mut passed: u32 = 0;
        let mut attempt: u64 = 0;
        let max_attempts = u64::from(config.cases) * 16 + 1024;
        while passed < config.cases {
            if attempt >= max_attempts {
                panic!(
                    "proptest shim: too many rejected cases in `{name}` \
                     ({passed}/{} passed after {attempt} attempts)",
                    config.cases
                );
            }
            let mut rng = super::TestRng::from_seed(base.wrapping_add(attempt));
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed (test `{name}`, attempt {attempt}): {msg}");
                }
            }
        }
    }
}

pub use test_runner::ProptestConfig;

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(__config, stringify!($name), |__rng| {
                    let ($($arg_pat,)*) =
                        ($($crate::Strategy::sample(&($arg_strat), __rng),)*);
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!(
                    "assertion failed: {} ({})",
                    stringify!($cond),
                    format!($($fmt)+),
                ),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

// ---------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------

pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Pick {
        Small(u8),
        Big(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(x in 3u8..9, y in -5i64..5, z in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn vec_sizes_respect_bounds(xs in prop::collection::vec(0u16..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for v in &xs {
                prop_assert!(*v < 10);
            }
        }

        #[test]
        fn oneof_and_flat_map_compose(
            p in prop_oneof![
                (0u8..10).prop_map(Pick::Small),
                (100u64..200).prop_map(Pick::Big),
            ],
            pair in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u8..5, n..=n)),
        ) {
            match p {
                Pick::Small(v) => prop_assert!(v < 10),
                Pick::Big(v) => prop_assert!((100..200).contains(&v)),
            }
            prop_assert!(!pair.is_empty() && pair.len() < 4);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::TestRng::from_seed(1);
        let mut b = crate::TestRng::from_seed(1);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_context() {
        crate::test_runner::run(
            ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| -> Result<(), TestCaseError> {
                prop_assert!(1 == 2, "one is not two");
                Ok(())
            },
        );
    }
}
