//! Offline shim for `rand_chacha` 0.3: a real ChaCha8 generator producing
//! the same output stream as upstream `ChaCha8Rng`.
//!
//! Upstream wraps a four-block ChaCha core in `rand_core`'s `BlockRng`
//! (a 64-word buffer refilled four blocks at a time, with `next_u64`
//! straddling refills in a specific way). Both behaviors are reproduced
//! here so seeded streams match bit for bit.

use rand::{RngCore, SeedableRng};

const BUF_WORDS: usize = 64; // four 16-word ChaCha blocks per refill

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block with `rounds` rounds (8 for ChaCha8).
fn chacha_block(key: &[u32; 8], counter: u64, stream: u64, rounds: usize, out: &mut [u32]) {
    let mut state: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        stream as u32,
        (stream >> 32) as u32,
    ];
    let initial = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
        *o = s.wrapping_add(*i);
    }
}

/// The ChaCha rng with 8 rounds — rand's recommended fast generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    /// Block counter of the next refill (in blocks, advances by 4).
    counter: u64,
    stream: u64,
    buf: [u32; BUF_WORDS],
    /// Read cursor into `buf`; `BUF_WORDS` means "empty, refill next".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        for block in 0..4 {
            let start = block * 16;
            chacha_block(
                &self.key,
                self.counter + block as u64,
                self.stream,
                8,
                &mut self.buf[start..start + 16],
            );
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // Mirrors rand_core's BlockRng::next_u64 buffer-straddling rules.
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
        } else if index >= BUF_WORDS {
            self.refill();
            self.index = 2;
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        } else {
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.refill();
            self.index = 1;
            (u64::from(self.buf[0]) << 32) | lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439-style ChaCha test vector check, adapted to 8 rounds via
    /// internal consistency: a fresh rng from the zero seed must produce
    /// the ChaCha8 keystream of the all-zero key, block 0.
    #[test]
    fn zero_key_first_block_is_chacha8_keystream() {
        let mut out = [0u32; 16];
        chacha_block(&[0; 8], 0, 0, 8, &mut out);
        // ChaCha8 keystream for the zero key/counter/nonce starts with
        // bytes 3e 00 ef 2f (ECRYPT reference vectors), i.e. the word
        // 0x2fef003e little-endian.
        assert_eq!(out[0], 0x2fef003e);
    }

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..200).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..200).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..200).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn u32_u64_mix_straddles_refills_consistently() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Push the cursor to an odd position near the buffer end.
        for _ in 0..63 {
            rng.next_u32();
        }
        let straddled = rng.next_u64(); // low word = last of old buffer
        let mut clone_path = ChaCha8Rng::seed_from_u64(7);
        let mut last = 0;
        for _ in 0..64 {
            last = clone_path.next_u32();
        }
        let first_new = clone_path.next_u32();
        assert_eq!(straddled, (u64::from(first_new) << 32) | u64::from(last));
    }
}
