//! Derive macros for the in-tree serde shim.
//!
//! Parses the derive input token stream directly (no syn/quote) and
//! generates `to_value` / `from_value` implementations following serde's
//! externally-tagged representation:
//!
//! * named struct      → map of fields (declaration order)
//! * newtype struct    → the inner value
//! * tuple struct      → sequence
//! * unit enum variant → `"Variant"`
//! * newtype variant   → `{"Variant": value}`
//! * tuple variant     → `{"Variant": [..]}`
//! * struct variant    → `{"Variant": {..}}`
//!
//! Supported field attributes: `#[serde(default)]` (missing field =>
//! `Default::default()`) and `#[serde(skip)]` (never serialized,
//! defaulted on deserialization). Generic types are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
    skip: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    Unit {
        name: String,
    },
    Named {
        name: String,
        fields: Vec<Field>,
    },
    Tuple {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Splits a token list on commas that sit at angle-bracket depth 0.
/// Commas inside `(..)`, `[..]`, `{..}` are invisible (they are inside
/// `Group`s); commas inside generics like `BTreeMap<String, u16>` are
/// skipped by tracking `<`/`>` puncts.
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Consumes leading `#[...]` attributes, returning whether a
/// `#[serde(...)]` among them contains `default` / `skip`.
fn strip_attrs(tokens: &[TokenTree]) -> (usize, bool, bool) {
    let mut i = 0;
    let (mut default, mut skip) = (false, false);
    while i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for t in args.stream() {
                                if let TokenTree::Ident(opt) = t {
                                    match opt.to_string().as_str() {
                                        "default" => default = true,
                                        "skip" => skip = true,
                                        _ => {}
                                    }
                                }
                            }
                        }
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (i, default, skip)
}

/// Parses one named field: `[attrs] [pub[(..)]] name : type`.
fn parse_field(tokens: &[TokenTree]) -> Option<Field> {
    let (mut i, default, skip) = strip_attrs(tokens);
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(Field {
            name: id.to_string(),
            default,
            skip,
        }),
        _ => None,
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    split_top_commas(&tokens)
        .iter()
        .filter(|seg| !seg.is_empty())
        .filter_map(|seg| parse_field(seg))
        .collect()
}

fn parse_variant(tokens: &[TokenTree]) -> Option<Variant> {
    let (i, _, _) = strip_attrs(tokens);
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    let kind = match tokens.get(i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let arity = split_top_commas(&inner)
                .iter()
                .filter(|seg| !seg.is_empty())
                .count();
            if arity == 0 {
                VariantKind::Unit
            } else {
                VariantKind::Tuple(arity)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            VariantKind::Struct(parse_named_fields(g.stream()))
        }
        _ => VariantKind::Unit,
    };
    Some(Variant { name, kind })
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                i += 1;
            }
            Some(_) => i += 1,
            None => return Err("no struct/enum keyword in derive input".into()),
        }
    };
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing type name".into()),
    };
    if matches!(tokens.get(i + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    match tokens.get(i + 2) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Shape::Named {
                    name,
                    fields: parse_named_fields(g.stream()),
                })
            } else {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let variants = split_top_commas(&inner)
                    .iter()
                    .filter(|seg| !seg.is_empty())
                    .filter_map(|seg| parse_variant(seg))
                    .collect();
                Ok(Shape::Enum { name, variants })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let arity = split_top_commas(&inner)
                .iter()
                .filter(|seg| !seg.is_empty())
                .count();
            Ok(Shape::Tuple { name, arity })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::Unit { name }),
        _ => Err(format!("unsupported shape for `{name}`")),
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Unit { name } => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}
            }}"
        ),
        Shape::Named { name, fields } => {
            let pushes: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "m.push((::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0})));",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                            ::std::vec::Vec::new();
                        {pushes}
                        ::serde::Value::Map(m)
                    }}
                }}"
            )
        }
        Shape::Tuple { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{ {body} }}
                }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pushes: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), \
                                         ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Map(vec![{}]))]),",
                                binds.join(", "),
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    }
}

fn gen_named_field_reads(fields: &[Field], map_expr: &str, ty: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            if f.skip {
                format!("{fname}: ::std::default::Default::default(),")
            } else if f.default {
                format!(
                    "{fname}: match ::serde::__map_get({map_expr}, \"{fname}\") {{
                        ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,
                        ::std::option::Option::None => ::std::default::Default::default(),
                    }},"
                )
            } else {
                format!(
                    "{fname}: match ::serde::__map_get({map_expr}, \"{fname}\") {{
                        ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,
                        ::std::option::Option::None => return ::std::result::Result::Err(\
                            ::serde::DeError::missing_field(\"{fname}\", \"{ty}\")),
                    }},"
                )
            }
        })
        .collect()
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Unit { name } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_value(v: &::serde::Value) \
                    -> ::std::result::Result<Self, ::serde::DeError> {{
                    match v {{
                        ::serde::Value::Null => ::std::result::Result::Ok({name}),
                        _ => ::std::result::Result::Err(\
                            ::serde::DeError::expected(\"null\", \"{name}\")),
                    }}
                }}
            }}"
        ),
        Shape::Named { name, fields } => {
            let reads = gen_named_field_reads(fields, "m", name);
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) \
                        -> ::std::result::Result<Self, ::serde::DeError> {{
                        let m = v.as_map().ok_or_else(|| \
                            ::serde::DeError::expected(\"map\", \"{name}\"))?;
                        ::std::result::Result::Ok({name} {{ {reads} }})
                    }}
                }}"
            )
        }
        Shape::Tuple { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let reads: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                    .collect();
                format!(
                    "let s = v.as_seq().ok_or_else(|| \
                         ::serde::DeError::expected(\"sequence\", \"{name}\"))?;
                     if s.len() != {arity} {{
                         return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"wrong tuple arity for {name}\"));
                     }}
                     ::std::result::Result::Ok({name}({reads}))",
                    reads = reads.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) \
                        -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}
                }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let reads: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{
                                    let s = __inner.as_seq().ok_or_else(|| \
                                        ::serde::DeError::expected(\
                                            \"sequence\", \"{name}::{vn}\"))?;
                                    if s.len() != {n} {{
                                        return ::std::result::Result::Err(\
                                            ::serde::DeError::custom(\
                                                \"wrong arity for {name}::{vn}\"));
                                    }}
                                    ::std::result::Result::Ok({name}::{vn}({reads}))
                                }}",
                                reads = reads.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let reads =
                                gen_named_field_reads(fields, "mm", &format!("{name}::{vn}"));
                            Some(format!(
                                "\"{vn}\" => {{
                                    let mm = __inner.as_map().ok_or_else(|| \
                                        ::serde::DeError::expected(\"map\", \"{name}::{vn}\"))?;
                                    ::std::result::Result::Ok({name}::{vn} {{ {reads} }})
                                }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) \
                        -> ::std::result::Result<Self, ::serde::DeError> {{
                        match v {{
                            ::serde::Value::Str(__s) => match __s.as_str() {{
                                {unit_arms}
                                __other => ::std::result::Result::Err(\
                                    ::serde::DeError::custom(format!(\
                                        \"unknown variant `{{__other}}` of {name}\"))),
                            }},
                            ::serde::Value::Map(__m) if __m.len() == 1 => {{
                                let (__k, __inner) = &__m[0];
                                match __k.as_str() {{
                                    {tagged_arms}
                                    __other => ::std::result::Result::Err(\
                                        ::serde::DeError::custom(format!(\
                                            \"unknown variant `{{__other}}` of {name}\"))),
                                }}
                            }}
                            _ => ::std::result::Result::Err(\
                                ::serde::DeError::expected(\"variant\", \"{name}\")),
                        }}
                    }}
                }}"
            )
        }
    }
}

fn run(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen(&shape)
            .parse()
            .expect("serde shim derive generated invalid code"),
        Err(msg) => format!("compile_error!(\"{msg}\");").parse().unwrap(),
    }
}

/// Derives `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    run(input, gen_serialize)
}

/// Derives `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    run(input, gen_deserialize)
}
