//! Offline shim for `criterion`: the same authoring surface
//! (`criterion_group!`, `criterion_main!`, groups, throughput,
//! `BenchmarkId`) backed by a simple wall-clock harness.
//!
//! Each benchmark runs a short warmup, then `sample_size` timed batches,
//! and prints min/median/mean per iteration. Honors criterion's standard
//! `--bench` / `--test` CLI arguments so `cargo bench` and `cargo test
//! --benches` both work; unknown args (e.g. filters) are accepted and
//! unsupported modes are no-ops.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque black box — best-effort inlining barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher<'_> {
    /// Times `routine`, collecting one duration per sample batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }

    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, routine: R) {
        self.iter(routine);
    }
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// The harness entry point. `--test` mode (cargo test --benches) runs each
/// benchmark exactly once to check it executes.
pub struct Criterion {
    settings: Settings,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            settings: Settings::default(),
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.settings.measurement_time = t;
        self
    }

    pub fn warm_up_time(self, _t: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings: self.settings,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let settings = self.settings;
        let id = id.into();
        run_one(&id.id, settings, None, self.test_mode, f);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(
            &full,
            self.settings,
            self.throughput,
            self.criterion.test_mode,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    id: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    test_mode: bool,
    mut f: F,
) {
    if test_mode {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            iters_per_sample: 1,
        };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }

    // Calibrate: how many iterations fit one sample's time slice.
    let mut samples = Vec::new();
    let mut b = Bencher {
        samples: &mut samples,
        iters_per_sample: 1,
    };
    f(&mut b);
    let probe = samples.pop().unwrap_or(Duration::from_nanos(1));
    let slice = settings.measurement_time / settings.sample_size as u32;
    let iters = (slice.as_nanos() / probe.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    samples.clear();
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            samples: &mut samples,
            iters_per_sample: iters,
        };
        f(&mut b);
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    print!(
        "{id:<48} min {:>12?}  median {:>12?}  mean {:>12?}",
        min, median, mean
    );
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 / median.as_secs_f64();
        match t {
            Throughput::Elements(n) => print!("  [{:.3e} elem/s]", per_sec(n)),
            Throughput::Bytes(n) => print!("  [{:.3e} B/s]", per_sec(n)),
        }
    }
    println!();
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            iters_per_sample: 4,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 4);
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("events", 128).id, "events/128");
        assert_eq!(BenchmarkId::from_parameter(0.05).id, "0.05");
    }
}
