//! Offline shim for `serde` 1: object-safe `Serialize` / `Deserialize`
//! through an owned [`Value`] data model.
//!
//! Unlike real serde there is no serializer/deserializer abstraction —
//! everything funnels through `Value`, which is all `serde_json` (the
//! only format used in this workspace) needs. The derive macros in
//! `serde_derive` generate `to_value` / `from_value` implementations
//! with serde's externally-tagged enum representation, so the JSON
//! produced is byte-identical to what upstream serde_json would write
//! for the same types.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// The self-describing data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// A key-ordered map (declaration order preserved, like serde's
    /// struct serialization).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// First value for `key` in a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
    /// "expected X, found something else while reading Y".
    pub fn expected(what: &str, context: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {context}"))
    }
    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> DeError {
        DeError(format!("missing field `{field}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Map lookup helper used by derived code.
pub fn __map_get<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! serialize_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($ty))),
                };
                <$ty>::try_from(n).map_err(|_| DeError::custom(format!(
                    "{} out of range for {}", n, stringify!($ty))))
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::custom("integer overflow"))?,
                    Value::I64(n) => n,
                    Value::F64(f) if f.fract() == 0.0
                        && (i64::MIN as f64..=i64::MAX as f64).contains(&f) => f as i64,
                    _ => return Err(DeError::expected("integer", stringify!($ty))),
                };
                <$ty>::try_from(n).map_err(|_| DeError::custom(format!(
                    "{} out of range for {}", n, stringify!($ty))))
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN), // serde_json writes non-finite floats as null
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", "char")),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_value(v)?.into())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of {N}, got {len}")))
    }
}

macro_rules! serialize_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                let expected = [$($i,)+].len();
                if s.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {}", s.len())));
                }
                Ok(($($t::from_value(&s[$i])?,)+))
            }
        }
    )*};
}
serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Maps serialize as JSON objects when the keys serialize to strings
/// (or integers, which serde_json renders as string keys), and as
/// sequences of `[key, value]` pairs otherwise — mirroring serde_json's
/// behavior for string/integer keys while staying total for compound
/// keys like `(u16, u16)`.
fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)> + Clone,
{
    let stringy = entries
        .clone()
        .all(|(k, _)| matches!(k.to_value(), Value::Str(_) | Value::U64(_) | Value::I64(_)));
    if stringy {
        Value::Map(
            entries
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        Value::U64(n) => n.to_string(),
                        Value::I64(n) => n.to_string(),
                        _ => unreachable!(),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    } else {
        Value::Seq(
            entries
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

fn key_from_str<K: Deserialize>(s: &str) -> Result<K, DeError> {
    // Try string first, then integer renderings (serde_json string-keys
    // integer map keys).
    K::from_value(&Value::Str(s.to_string())).or_else(|e| {
        if let Ok(u) = s.parse::<u64>() {
            K::from_value(&Value::U64(u))
        } else if let Ok(i) = s.parse::<i64>() {
            K::from_value(&Value::I64(i))
        } else {
            Err(e)
        }
    })
}

fn map_entries_from_value<K: Deserialize, V: Deserialize>(
    v: &Value,
) -> Result<Vec<(K, V)>, DeError> {
    match v {
        Value::Map(m) => m
            .iter()
            .map(|(k, val)| Ok((key_from_str::<K>(k)?, V::from_value(val)?)))
            .collect(),
        Value::Seq(pairs) => pairs
            .iter()
            .map(|pair| {
                let s = pair
                    .as_seq()
                    .filter(|s| s.len() == 2)
                    .ok_or_else(|| DeError::expected("[key, value] pair", "map"))?;
                Ok((K::from_value(&s[0])?, V::from_value(&s[1])?))
            })
            .collect(),
        _ => Err(DeError::expected("map", "map")),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort serialized entries for deterministic output.
        let mut entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        let stringy = entries
            .iter()
            .all(|(k, _)| matches!(k, Value::Str(_) | Value::U64(_) | Value::I64(_)));
        if stringy {
            Value::Map(
                entries
                    .into_iter()
                    .map(|(k, v)| {
                        let key = match k {
                            Value::Str(s) => s,
                            Value::U64(n) => n.to_string(),
                            Value::I64(n) => n.to_string(),
                            _ => unreachable!(),
                        };
                        (key, v)
                    })
                    .collect(),
            )
        } else {
            Value::Seq(
                entries
                    .into_iter()
                    .map(|(k, v)| Value::Seq(vec![k, v]))
                    .collect(),
            )
        }
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", "()")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn compound_key_map_round_trips() {
        let mut m = BTreeMap::new();
        m.insert((1u16, 2u16), 7u32);
        m.insert((3, 4), 9);
        let v = m.to_value();
        assert!(matches!(v, Value::Seq(_)));
        let back: BTreeMap<(u16, u16), u32> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn string_key_map_is_object() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 1u8);
        m.insert("a".to_string(), 2);
        let v = m.to_value();
        assert!(v.as_map().is_some());
        let back: BTreeMap<String, u8> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn fixed_arrays_round_trip() {
        let a: [Option<u16>; 3] = [Some(1), None, Some(3)];
        let back: [Option<u16>; 3] = Deserialize::from_value(&a.to_value()).unwrap();
        assert_eq!(back, a);
    }
}
