//! Offline shim for `serde_json`: serializes the serde shim's `Value`
//! tree to JSON text and parses JSON back into `Value`.
//!
//! Output conventions match upstream serde_json where this repo relies
//! on them: struct fields in declaration order, compact (`to_string`)
//! and two-space pretty (`to_string_pretty`) forms, floats printed via
//! Rust's shortest-round-trip `Display`, non-finite floats as `null`.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's Display for f64 is shortest-round-trip, like serde_json's
        // ryu output for these magnitudes; "1" prints as "1.0" via the
        // explicit fractional check below to match serde_json ("1.0"? no:
        // serde_json prints 1.0 as "1.0"). Display prints 1f64 as "1".
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') || s.contains("inf") {
            out.push_str(&s);
        } else {
            out.push_str(&s);
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(STEP);
                }
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(STEP);
            }
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(STEP);
                }
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(STEP);
            }
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serializes `value` into a `Value` tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserializes a `Value` tree into `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| Error::new("truncated surrogate"))?;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| Error::new("bad surrogate"))?,
                                        16,
                                    )
                                    .map_err(|_| Error::new("bad surrogate"))?;
                                    self.pos += 6;
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(Error::new("lone surrogate"));
                                }
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c).ok_or_else(|| Error::new("invalid codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                // Multi-byte UTF-8: copy the raw bytes through.
                b if b < 0x80 => out.push(b as char),
                b => {
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::new("truncated utf-8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| Error::new("bad utf-8"))?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::F64(0.5), Value::Null])),
            ("c".into(), Value::Str("hi \"there\"\n".into())),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[0.5,null],"c":"hi \"there\"\n"}"#);
        let back: Value = from_str(&s).unwrap();
        let s2 = to_string(&back).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 6553.6, 1e-300, -2.5e10, 1.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{s}");
        }
    }

    #[test]
    fn integers_keep_signedness() {
        let neg: i64 = from_str("-12").unwrap();
        assert_eq!(neg, -12);
        let pos: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(pos, u64::MAX);
    }

    #[test]
    fn pretty_printing_shape() {
        let v = Value::Map(vec![(
            "xs".into(),
            Value::Seq(vec![Value::U64(1), Value::U64(2)]),
        )]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
    }
}
