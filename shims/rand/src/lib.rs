//! Offline shim for the `rand` 0.8 API surface this workspace uses.
//!
//! The sampling algorithms are the ones rand 0.8 actually ships —
//! PCG32-based [`SeedableRng::seed_from_u64`], widening-multiply
//! rejection for integer ranges, 53-bit multiply for `f64` — so any RNG
//! stream a test was tuned against is reproduced bit for bit.

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed exactly like rand_core 0.6: a
    /// PCG32 sequence, 4 little-endian bytes per chunk.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // Advance the state first, in case the input has low Hamming
            // weight (rand_core does the same).
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard (full-range / unit-interval) distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_from_u32 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u32() as $ty
            }
        }
    )*};
}
macro_rules! standard_from_u64 {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_from_u32!(u8, u16, u32, i8, i16, i32);
standard_from_u64!(u64, i64, usize, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // rand 0.8 Standard for f64: 53 significant bits in [0, 1).
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let scale = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * scale
    }
}

/// Types sampleable uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

// Widening multiply helpers mirroring rand 0.8's `WideningMultiply`.
macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wide:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let range = high.wrapping_sub(low) as $unsigned as $u_large;
                let zone = if (<$unsigned>::MAX as u64) <= (u16::MAX as u64) {
                    // Small types: reject a modulo-sized tail of the space.
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = Standard.sample(rng);
                    let m = (v as $wide) * (range as $wide);
                    let hi = (m >> <$u_large>::BITS) as $u_large;
                    let lo = m as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let range = (high.wrapping_sub(low) as $unsigned as $u_large).wrapping_add(1);
                if range == 0 {
                    // The full type range: every value is acceptable.
                    return Standard.sample(rng);
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $u_large = Standard.sample(rng);
                    let m = (v as $wide) * (range as $wide);
                    let hi = (m >> <$u_large>::BITS) as $u_large;
                    let lo = m as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u8, u8, u32, u64);
uniform_int_impl!(u16, u16, u32, u64);
uniform_int_impl!(u32, u32, u32, u64);
uniform_int_impl!(u64, u64, u64, u128);
uniform_int_impl!(usize, usize, usize, u128);
uniform_int_impl!(i8, u8, u32, u64);
uniform_int_impl!(i16, u16, u32, u64);
uniform_int_impl!(i32, u32, u32, u64);
uniform_int_impl!(i64, u64, u64, u128);

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        // rand 0.8 UniformFloat::sample_single: value1_2 * scale + offset.
        let scale = high - low;
        let offset = low - scale;
        let fraction = rng.next_u64() >> 12;
        let value1_2 = f64::from_bits((1023u64 << 52) | fraction);
        value1_2 * scale + offset
    }
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        Self::sample_single(low, high, rng)
    }
}

/// Range expressions acceptable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from the given range.
    fn gen_range<T, U>(&mut self, range: U) -> T
    where
        T: SampleUniform,
        U: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        if p >= 1.0 {
            return true;
        }
        // rand 0.8 Bernoulli: compare 64 random bits against p * 2^64.
        let p_int = (p * (2.0f64).powi(64)) as u64;
        self.next_u64() < p_int
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sub-module mirror so `rand::distributions::*` paths keep working.
pub mod distributions {
    pub use super::{Distribution, Standard};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let a = rng.gen_range(0u64..17);
            assert!(a < 17);
            let b = rng.gen_range(5u16..6);
            assert_eq!(b, 5);
            let c = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&c));
            let d = rng.gen_range(0u8..=255);
            let _ = d;
        }
    }
}
