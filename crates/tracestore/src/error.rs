//! Typed errors for every way a trace file or corpus directory can be
//! bad. Corrupt or truncated input must surface as an [`StoreError`] —
//! never a panic — so a store full of partially written runs stays
//! navigable.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Any failure while writing, reading or validating stored traces.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure, annotated with the path involved.
    Io {
        /// What the operation was trying to do.
        context: String,
        /// The OS error.
        source: io::Error,
    },
    /// The file does not start with the `STRC` magic — not a trace file.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The file ended in the middle of a header, chunk or record.
    Truncated {
        /// Where in the file structure the data ran out.
        context: &'static str,
    },
    /// A chunk's payload does not match its stored checksum.
    ChecksumMismatch {
        /// 0-based index of the offending chunk.
        chunk: u64,
    },
    /// The byte stream is structurally invalid (bad tag, varint overflow,
    /// out-of-range index, trailing garbage, …).
    Corrupt(String),
    /// The end chunk's item counts or stream digest disagree with the
    /// records actually read.
    DigestMismatch {
        /// What the end chunk promised.
        expected: String,
        /// What the reader reconstructed.
        actual: String,
    },
    /// A decoded trace violates the recorder protocol
    /// (`segments != events + 1`).
    Protocol {
        /// Lifecycle events decoded.
        events: usize,
        /// Count segments decoded.
        segments: usize,
    },
    /// A run manifest is missing, unparsable or inconsistent.
    Manifest {
        /// Manifest path.
        path: PathBuf,
        /// What is wrong with it.
        message: String,
    },
}

impl StoreError {
    /// Wraps an I/O error with the path and operation that hit it.
    pub fn io(context: impl Into<String>, source: io::Error) -> StoreError {
        StoreError::Io {
            context: context.into(),
            source,
        }
    }

    /// Whether this error means the stored data itself is damaged —
    /// truncation, bit rot, protocol violations, a missing or unparsable
    /// manifest — as opposed to an environmental failure (I/O errors,
    /// permissions) or version skew, which retrying or upgrading could
    /// fix. Quarantine-and-continue mining moves exactly this class of
    /// runs aside.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StoreError::BadMagic
                | StoreError::Truncated { .. }
                | StoreError::ChecksumMismatch { .. }
                | StoreError::Corrupt(_)
                | StoreError::DigestMismatch { .. }
                | StoreError::Protocol { .. }
                | StoreError::Manifest { .. }
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "{context}: {source}"),
            StoreError::BadMagic => {
                f.write_str("not a trace file (missing STRC magic); was it written by `sentomist`?")
            }
            StoreError::UnsupportedVersion(v) => write!(
                f,
                "trace format version {v} is newer than this binary understands \
                 (max {})",
                crate::format::FORMAT_VERSION
            ),
            StoreError::Truncated { context } => {
                write!(f, "trace file is truncated ({context})")
            }
            StoreError::ChecksumMismatch { chunk } => {
                write!(f, "chunk {chunk} failed its checksum — the file is corrupt")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt trace file: {msg}"),
            StoreError::DigestMismatch { expected, actual } => write!(
                f,
                "stream digest mismatch: end chunk promises {expected}, decoded {actual}"
            ),
            StoreError::Protocol { events, segments } => write!(
                f,
                "decoded trace violates the sink protocol: {events} events but \
                 {segments} segments (want events + 1)"
            ),
            StoreError::Manifest { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_essentials() {
        let e = StoreError::io("writing /tmp/x", io::Error::other("boom"));
        assert!(e.to_string().contains("/tmp/x"));
        assert!(StoreError::BadMagic.to_string().contains("STRC"));
        assert!(StoreError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(StoreError::Truncated { context: "header" }
            .to_string()
            .contains("header"));
        assert!(StoreError::ChecksumMismatch { chunk: 3 }
            .to_string()
            .contains('3'));
        let p = StoreError::Protocol {
            events: 4,
            segments: 4,
        };
        assert!(p.to_string().contains("events + 1"));
    }
}
