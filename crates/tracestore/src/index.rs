//! The merged, generation-stamped corpus index.
//!
//! A multi-writer campaign leaves runs in per-shard directories
//! (`shards/<writer-id>/runs/`). The index is the single document that
//! unifies them: one entry per run across the whole store, sorted by
//! run id, with **no physical location recorded** — entries carry only
//! logical identity (seed, mode, digests), so the index built from N
//! interleaved shard writers is byte-identical to the one built after a
//! sequential ingestion, and survives `trace merge` compaction
//! unchanged. Physical location is resolved at read time by
//! [`TraceStore::locate_run`] (primary `runs/` wins, then shards in
//! sorted order).
//!
//! Each [`CorpusIndex::merge`] pass bumps the generation counter and
//! republishes `index.json` atomically (WAL-bracketed temp-then-rename,
//! like every other manifest).

use crate::error::StoreError;
use crate::store::{TraceStore, MANIFEST_VERSION};
use crate::sync::WriteClass;
use crate::wal::WalRecord;
use serde::{Deserialize, Serialize};

/// File name of the merged corpus index at the store root.
pub const INDEX_FILE: &str = "index.json";

/// One run's entry in the merged index — logical identity only, no
/// shard path, so merged and sequential ingestion index identically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// Run directory name (`seed-<20 digits>`).
    pub run_id: String,
    /// The seed the run was produced under.
    pub seed: u64,
    /// Producer mode.
    pub mode: String,
    /// Program digest, 16 hex digits.
    pub program_digest: String,
    /// Per-node trace digests, in node order.
    pub trace_digests: Vec<String>,
}

/// The merged corpus index: every run across `runs/` and all shards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusIndex {
    /// Manifest schema version (shared with run manifests).
    pub format_version: u32,
    /// Merge generation: 1 for the first merge, +1 each republication.
    pub generation: u64,
    /// One entry per run, ascending by run id.
    pub entries: Vec<IndexEntry>,
}

impl CorpusIndex {
    /// Loads the published index, or `None` when no merge has run yet.
    ///
    /// # Errors
    ///
    /// [`StoreError::Manifest`] when present but unparsable (fsck
    /// treats that as a stale index, not fatal corruption).
    pub fn load(store: &TraceStore) -> Result<Option<CorpusIndex>, StoreError> {
        let path = store.root().join(INDEX_FILE);
        let data = match std::fs::read_to_string(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io(format!("reading {}", path.display()), e)),
        };
        serde_json::from_str(&data)
            .map(Some)
            .map_err(|e| StoreError::Manifest {
                path,
                message: format!("parsing corpus index: {e}"),
            })
    }

    /// Builds the index over the store's merged run view (primary
    /// `runs/` plus every shard), stamps the next generation, and
    /// publishes it atomically. Returns the published index.
    ///
    /// Runs whose manifest cannot be read are skipped — merging must
    /// work on a store that still has crash damage; `fsck` is the pass
    /// that deals with the damage itself.
    ///
    /// # Errors
    ///
    /// Listing or publication failures.
    pub fn merge(store: &TraceStore) -> Result<CorpusIndex, StoreError> {
        let generation = match CorpusIndex::load(store) {
            Ok(Some(prev)) => prev.generation + 1,
            // First merge, or an unreadable previous index: restart the
            // counter rather than fail the merge.
            _ => 1,
        };
        let mut entries = Vec::new();
        for run_id in store.run_ids()? {
            let Ok(manifest) = store.manifest(&run_id) else {
                continue;
            };
            entries.push(IndexEntry {
                run_id: manifest.run_id,
                seed: manifest.seed,
                mode: manifest.mode,
                program_digest: manifest.program_digest,
                trace_digests: manifest
                    .nodes
                    .iter()
                    .map(|n| n.trace_digest.clone())
                    .collect(),
            });
        }
        entries.sort_by(|a, b| a.run_id.cmp(&b.run_id));
        let index = CorpusIndex {
            format_version: MANIFEST_VERSION,
            generation,
            entries,
        };
        let json = serde_json::to_string_pretty(&index).map_err(|e| StoreError::Manifest {
            path: store.root().join(INDEX_FILE),
            message: format!("serializing corpus index: {e}"),
        })?;
        store.publish(INDEX_FILE, json.as_bytes(), WriteClass::Index)?;
        Ok(index)
    }

    /// Canonical byte serialization of the index **content** (entries
    /// only, not the generation stamp) — the thing the interleaving
    /// proptest compares byte for byte between merged and sequential
    /// ingestion.
    ///
    /// # Errors
    ///
    /// Serialization failure (practically unreachable).
    pub fn content_bytes(&self) -> Result<Vec<u8>, StoreError> {
        serde_json::to_string_pretty(&self.entries)
            .map(String::into_bytes)
            .map_err(|e| StoreError::Manifest {
                path: INDEX_FILE.into(),
                message: format!("serializing index entries: {e}"),
            })
    }

    /// FNV-1a digest over every entry's `(seed, trace digests)`, in
    /// index order — the corpus identity the crash harness compares
    /// between an uninterrupted run and a recover-then-re-ingest run.
    pub fn corpus_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for entry in &self.entries {
            fold(&entry.seed.to_le_bytes());
            fold(entry.program_digest.as_bytes());
            for digest in &entry.trace_digests {
                fold(digest.as_bytes());
            }
        }
        h
    }
}

/// A cheap identity snapshot of a store's merged corpus: the index
/// generation stamp plus the content digest. Read-through caches key
/// their validation on this pair — `trace merge` bumps the generation
/// (invalidating even when the content is unchanged), and any repair or
/// ingestion that alters the entries moves the digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CorpusFingerprint {
    /// The merge generation of the index the snapshot was taken from.
    pub generation: u64,
    /// [`CorpusIndex::corpus_digest`] of the same index.
    pub digest: u64,
}

impl CorpusIndex {
    /// The index's [`CorpusFingerprint`].
    pub fn fingerprint(&self) -> CorpusFingerprint {
        CorpusFingerprint {
            generation: self.generation,
            digest: self.corpus_digest(),
        }
    }
}

impl TraceStore {
    /// Loads the published corpus index (if any) and returns its
    /// [`CorpusFingerprint`] — the validation token concurrent readers
    /// (the mining service's result cache) check before serving a cached
    /// result. `None` means the store has never been merged and is not
    /// safely cacheable.
    ///
    /// # Errors
    ///
    /// [`StoreError`] reading or parsing the index.
    pub fn fingerprint(&self) -> Result<Option<CorpusFingerprint>, StoreError> {
        Ok(CorpusIndex::load(self)?.map(|index| index.fingerprint()))
    }

    /// Atomically publishes `bytes` at the store-relative path `rel`:
    /// WAL `begin` → temp write + fsync → rename → directory fsync →
    /// WAL `commit`. A crash at any point leaves the target whole (old
    /// or new) and the damage sweepable by [`TraceStore::fsck`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] (including injected crashes).
    pub fn publish(&self, rel: &str, bytes: &[u8], class: WriteClass) -> Result<(), StoreError> {
        let target = self.root().join(rel);
        let tmp = self.root().join(format!("{rel}{}", crate::wal::TMP_SUFFIX));
        self.append_wal(&WalRecord::begin(rel))?;
        self.shim().write_file(&tmp, bytes, class)?;
        self.shim().rename(&tmp, &target, class)?;
        if let Some(parent) = target.parent() {
            self.shim().sync_dir(parent)?;
        }
        self.append_wal(&WalRecord::commit(rel))
    }

    /// Compacts every shard into the primary `runs/` directory and
    /// republishes the index. Shard runs are moved by rename; a run id
    /// already present in `runs/` wins (matching read-time resolution)
    /// and the shard duplicate is dropped. Emptied shard directories
    /// are removed. Returns the ids of runs that were moved.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any move, plus merge publication failures.
    pub fn compact_shards(&self) -> Result<Vec<String>, StoreError> {
        let mut moved = Vec::new();
        for shard in self.shard_ids()? {
            let shard_runs = self.shard_dir(&shard).join("runs");
            let entries = match std::fs::read_dir(&shard_runs) {
                Ok(entries) => entries,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => {
                    return Err(StoreError::io(
                        format!("listing {}", shard_runs.display()),
                        e,
                    ))
                }
            };
            for entry in entries {
                let entry = entry
                    .map_err(|e| StoreError::io(format!("listing {}", shard_runs.display()), e))?;
                if !entry.path().is_dir() {
                    continue;
                }
                let run_id = entry.file_name().to_string_lossy().into_owned();
                let dst = self.run_dir(&run_id);
                if dst.exists() {
                    // Primary wins; the shard copy is redundant.
                    std::fs::remove_dir_all(entry.path())
                        .map_err(|e| StoreError::io(format!("dropping duplicate {}", run_id), e))?;
                    continue;
                }
                std::fs::rename(entry.path(), &dst).map_err(|e| {
                    StoreError::io(
                        format!("moving {} into {}", entry.path().display(), dst.display()),
                        e,
                    )
                })?;
                moved.push(run_id);
            }
            // Every run the shard published has moved (or was dropped as
            // a duplicate), so its WAL is settled; remove it, then the
            // emptied skeleton. A non-empty leftover (foreign files) is
            // left in place rather than destroyed.
            self.shard(&shard)?.clear_wal()?;
            let _ = std::fs::remove_dir(&shard_runs);
            let _ = std::fs::remove_dir(self.shard_dir(&shard));
        }
        let _ = std::fs::remove_dir(self.root().join("shards"));
        self.shim().sync_dir(&self.root().join("runs"))?;
        CorpusIndex::merge(self)?;
        moved.sort_unstable();
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentomist_trace::{Trace, TraceEvent};
    use std::path::PathBuf;
    use tinyvm::LifecycleItem;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sentomist-index-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn trace_with(cycles: u64) -> Trace {
        Trace {
            events: vec![TraceEvent {
                cycle: cycles,
                item: LifecycleItem::Int(1),
            }],
            segments: vec![vec![1, 0], vec![0, 4]],
            program_len: 2,
        }
    }

    #[test]
    fn merge_indexes_primary_and_shards_sorted() {
        let root = tmpdir("merge");
        let store = TraceStore::create(&root).unwrap();
        store.save_run(5, "test", 0xa, &[trace_with(1)]).unwrap();
        let w0 = store.shard("writer-00").unwrap();
        let w1 = store.shard("writer-01").unwrap();
        w1.save_run(2, "test", 0xa, &[trace_with(2)]).unwrap();
        w0.save_run(9, "test", 0xa, &[trace_with(3)]).unwrap();
        let index = CorpusIndex::merge(&store).unwrap();
        assert_eq!(index.generation, 1);
        let seeds: Vec<u64> = index.entries.iter().map(|e| e.seed).collect();
        assert_eq!(seeds, vec![2, 5, 9]);
        // Reload round-trips; next merge bumps the generation.
        assert_eq!(CorpusIndex::load(&store).unwrap().unwrap(), index);
        assert_eq!(CorpusIndex::merge(&store).unwrap().generation, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn merged_index_is_location_independent() {
        // Same runs via shards vs sequentially: identical content bytes.
        let root_a = tmpdir("loc-a");
        let a = TraceStore::create(&root_a).unwrap();
        a.shard("w0")
            .unwrap()
            .save_run(1, "t", 0, &[trace_with(1)])
            .unwrap();
        a.shard("w1")
            .unwrap()
            .save_run(2, "t", 0, &[trace_with(2)])
            .unwrap();
        let root_b = tmpdir("loc-b");
        let b = TraceStore::create(&root_b).unwrap();
        b.save_run(1, "t", 0, &[trace_with(1)]).unwrap();
        b.save_run(2, "t", 0, &[trace_with(2)]).unwrap();
        let ia = CorpusIndex::merge(&a).unwrap();
        let ib = CorpusIndex::merge(&b).unwrap();
        assert_eq!(ia.content_bytes().unwrap(), ib.content_bytes().unwrap());
        assert_eq!(ia.corpus_digest(), ib.corpus_digest());
        let _ = std::fs::remove_dir_all(&root_a);
        let _ = std::fs::remove_dir_all(&root_b);
    }

    #[test]
    fn compaction_moves_shard_runs_and_preserves_the_index_content() {
        let root = tmpdir("compact");
        let store = TraceStore::create(&root).unwrap();
        store.save_run(1, "t", 0, &[trace_with(1)]).unwrap();
        let shard = store.shard("w0").unwrap();
        shard.save_run(2, "t", 0, &[trace_with(2)]).unwrap();
        // Duplicate in both places: primary wins.
        shard.save_run(1, "t", 0, &[trace_with(1)]).unwrap();
        let before = CorpusIndex::merge(&store).unwrap();
        let moved = store.compact_shards().unwrap();
        assert_eq!(moved, vec![crate::store::run_id_for_seed(2)]);
        assert!(!root.join("shards").exists());
        let after = CorpusIndex::load(&store).unwrap().unwrap();
        assert_eq!(
            before.content_bytes().unwrap(),
            after.content_bytes().unwrap()
        );
        assert_eq!(after.generation, before.generation + 1);
        // Everything now loads from primary runs/.
        assert_eq!(store.manifests().unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }
}
