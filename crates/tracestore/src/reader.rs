//! Chunked trace reader: streams records out of an `.stc` file without
//! materializing the whole trace, verifying checksums chunk by chunk and
//! the stream digest at the end.

use crate::error::StoreError;
use crate::format::{
    self, get_record, Record, CHUNK_END, CHUNK_RECORDS, FORMAT_VERSION, MAGIC, MAX_CHUNK,
    MAX_PROGRAM_LEN,
};
use sentomist_trace::{EventInterval, OnlineExtractor, Trace, TraceEvent};
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// Streaming reader over one `.stc` trace file.
///
/// Iterate with [`TraceReader::next_record`] (or the [`Iterator`] impl)
/// to visit records in arrival order with O(chunk) memory; or call
/// [`read_trace`] to densify a whole file back into a [`Trace`]. Every
/// structural problem — truncation, bit rot, version skew — surfaces as a
/// typed [`StoreError`], never a panic.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    chunk: Vec<u8>,
    pos: usize,
    chunk_index: u64,
    program_len: u32,
    prev_cycle: u64,
    events: u64,
    segments: u64,
    digest: u64,
    done: bool,
}

impl TraceReader<BufReader<File>> {
    /// Opens the trace file at `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be opened, plus any header
    /// validation error.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path)
            .map_err(|e| StoreError::io(format!("opening trace file {}", path.display()), e))?;
        TraceReader::new(BufReader::new(file))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps `input`, reading and validating the format header.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`],
    /// [`StoreError::Truncated`] or [`StoreError::Io`].
    pub fn new(mut input: R) -> Result<Self, StoreError> {
        let mut header = [0u8; 12];
        read_exact(&mut input, &mut header, "file header")?;
        if header[..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        // v1 defines no flags; any set bit is from a future writer (or rot).
        let flags = u16::from_le_bytes([header[6], header[7]]);
        if flags != 0 {
            return Err(StoreError::Corrupt(format!(
                "unknown header flags {flags:#06x}"
            )));
        }
        let program_len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if program_len as usize > MAX_PROGRAM_LEN {
            return Err(StoreError::Corrupt(format!(
                "implausible program length {program_len}"
            )));
        }
        Ok(TraceReader {
            input,
            chunk: Vec::new(),
            pos: 0,
            chunk_index: 0,
            program_len,
            prev_cycle: 0,
            events: 0,
            segments: 0,
            digest: format::digest_seed(program_len),
            done: false,
        })
    }

    /// The program length declared in the header (the width of every
    /// segment).
    pub fn program_len(&self) -> usize {
        self.program_len as usize
    }

    /// Lifecycle events yielded so far.
    pub fn events_read(&self) -> u64 {
        self.events
    }

    /// Count segments yielded so far.
    pub fn segments_read(&self) -> u64 {
        self.segments
    }

    /// Loads the next chunk; returns `false` once the end chunk has been
    /// consumed and verified.
    fn next_chunk(&mut self) -> Result<bool, StoreError> {
        loop {
            let mut kind = [0u8; 1];
            match self.input.read(&mut kind) {
                Ok(0) => {
                    return Err(StoreError::Truncated {
                        context: "missing end chunk",
                    })
                }
                Ok(_) => {}
                Err(e) => return Err(StoreError::io("reading chunk kind", e)),
            }
            let mut len_bytes = [0u8; 4];
            read_exact(&mut self.input, &mut len_bytes, "chunk length")?;
            let len = u32::from_le_bytes(len_bytes) as usize;
            if len > MAX_CHUNK {
                return Err(StoreError::Corrupt(format!(
                    "chunk {} declares an implausible {len}-byte payload",
                    self.chunk_index
                )));
            }
            let mut payload = vec![0u8; len];
            read_exact(&mut self.input, &mut payload, "chunk payload")?;
            let mut sum = [0u8; 4];
            read_exact(&mut self.input, &mut sum, "chunk checksum")?;
            if format::fnv32(&payload) != u32::from_le_bytes(sum) {
                return Err(StoreError::ChecksumMismatch {
                    chunk: self.chunk_index,
                });
            }
            self.chunk_index += 1;
            match kind[0] {
                CHUNK_RECORDS => {
                    if payload.is_empty() {
                        continue; // legal but pointless; skip
                    }
                    self.chunk = payload;
                    self.pos = 0;
                    return Ok(true);
                }
                CHUNK_END => {
                    self.verify_end(&payload)?;
                    // Anything after the end chunk is foreign matter.
                    let mut probe = [0u8; 1];
                    match self.input.read(&mut probe) {
                        Ok(0) => {}
                        Ok(_) => {
                            return Err(StoreError::Corrupt(
                                "trailing data after the end chunk".into(),
                            ))
                        }
                        Err(e) => return Err(StoreError::io("probing for trailing data", e)),
                    }
                    self.done = true;
                    return Ok(false);
                }
                other => {
                    return Err(StoreError::Corrupt(format!("unknown chunk kind {other}")));
                }
            }
        }
    }

    fn verify_end(&self, payload: &[u8]) -> Result<(), StoreError> {
        let mut pos = 0;
        let events = format::get_varint(payload, &mut pos)?;
        let segments = format::get_varint(payload, &mut pos)?;
        let digest_bytes: [u8; 8] = payload
            .get(pos..pos + 8)
            .and_then(|s| s.try_into().ok())
            .ok_or(StoreError::Truncated {
                context: "end-chunk digest",
            })?;
        if pos + 8 != payload.len() {
            return Err(StoreError::Corrupt("oversized end chunk".into()));
        }
        let digest = u64::from_le_bytes(digest_bytes);
        if events != self.events || segments != self.segments {
            return Err(StoreError::DigestMismatch {
                expected: format!("{events} events + {segments} segments"),
                actual: format!("{} events + {} segments", self.events, self.segments),
            });
        }
        if digest != self.digest {
            return Err(StoreError::DigestMismatch {
                expected: format!("{digest:016x}"),
                actual: format!("{:016x}", self.digest),
            });
        }
        Ok(())
    }

    /// Yields the next record, or `None` after the verified end chunk.
    ///
    /// # Errors
    ///
    /// Every structural defect of the file, as a typed [`StoreError`].
    pub fn next_record(&mut self) -> Result<Option<Record>, StoreError> {
        if self.done {
            return Ok(None);
        }
        if self.pos >= self.chunk.len() && !self.next_chunk()? {
            return Ok(None);
        }
        let tag = self.chunk[self.pos];
        self.pos += 1;
        let record = get_record(
            tag,
            &self.chunk,
            &mut self.pos,
            self.prev_cycle,
            self.program_len as usize,
        )?;
        match &record {
            Record::Event(ev) => {
                self.digest = format::digest_event(self.digest, ev.cycle, ev.item);
                self.prev_cycle = ev.cycle;
                self.events += 1;
            }
            Record::Segment(counts) => {
                self.digest = format::digest_segment(self.digest, counts);
                self.segments += 1;
            }
        }
        Ok(Some(record))
    }

    /// Replays the file's lifecycle events into an [`OnlineExtractor`],
    /// collecting completed [`EventInterval`]s — interval mining straight
    /// off disk with O(chunk + open instances) memory, no full [`Trace`]
    /// materialization.
    ///
    /// # Errors
    ///
    /// Any structural error of the underlying file.
    pub fn replay_online(mut self) -> Result<Vec<EventInterval>, StoreError> {
        let mut extractor = OnlineExtractor::new();
        let mut intervals = Vec::new();
        let mut index = 0usize;
        while let Some(record) = self.next_record()? {
            if let Record::Event(ev) = record {
                intervals.extend(extractor.feed(index, ev.cycle, ev.item));
                index += 1;
            }
        }
        Ok(intervals)
    }
}

/// What [`TraceReader::salvage`] recovered from a damaged trace file:
/// the longest checksummed, decodable prefix, trimmed back to the
/// recorder protocol (`segments == events + 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Salvage {
    /// The recovered (protocol-valid) trace. When not even the first
    /// count segment survived, this is the canonical empty trace.
    pub trace: Trace,
    /// Chunks that passed their checksum before recovery stopped.
    pub recovered_chunks: u64,
    /// Lifecycle events decoded (before the protocol trim).
    pub recovered_events: u64,
    /// Count segments decoded (before the protocol trim).
    pub recovered_segments: u64,
    /// Trailing events dropped to restore `segments == events + 1`.
    pub dropped_events: u64,
    /// Bytes left unread past the defect (0 for pure truncation).
    pub lost_bytes: u64,
    /// `true` when the end chunk verified — the file was whole and
    /// nothing was lost.
    pub complete: bool,
    /// The defect that stopped recovery, rendered as text; `None` when
    /// [`Salvage::complete`].
    pub error: Option<String>,
}

impl<R: Read> TraceReader<R> {
    /// Recovers what it can from a damaged trace file instead of
    /// rejecting it: records are decoded until the first structural
    /// defect (truncation, checksum failure, bit rot), then the decoded
    /// prefix is trimmed to the recorder protocol — the `(seg ev)* seg`
    /// stream order means at most one trailing event must be dropped for
    /// a clean cut, more only under in-chunk corruption. Every recovered
    /// chunk passed its checksum, so the salvaged prefix is as
    /// trustworthy as an intact file's content.
    ///
    /// On an undamaged file this is just [`read_trace`] with bookkeeping:
    /// [`Salvage::complete`] is `true` and nothing is dropped.
    pub fn salvage(mut self) -> Salvage {
        let program_len = self.program_len();
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut segments: Vec<Vec<u32>> = Vec::new();
        let error = loop {
            match self.next_record() {
                Ok(Some(Record::Event(ev))) => events.push(ev),
                Ok(Some(Record::Segment(seg))) => segments.push(seg),
                Ok(None) => break None,
                Err(e) => break Some(e.to_string()),
            }
        };
        let recovered_events = events.len() as u64;
        let recovered_segments = segments.len() as u64;
        // Trim to protocol. Segments can only trail events by design;
        // cap both directions anyway so corrupt interleavings still
        // yield a valid trace.
        segments.truncate(events.len() + 1);
        while !events.is_empty() && segments.len() < events.len() + 1 {
            events.pop();
        }
        let trace = if segments.is_empty() {
            Trace {
                events: Vec::new(),
                segments: vec![vec![0; program_len]],
                program_len,
            }
        } else {
            Trace {
                events,
                segments,
                program_len,
            }
        };
        let mut rest = Vec::new();
        let lost_bytes = match std::io::Read::read_to_end(&mut self.input, &mut rest) {
            Ok(n) => n as u64,
            Err(_) => 0,
        };
        Salvage {
            dropped_events: recovered_events - trace.events.len() as u64,
            recovered_chunks: self.chunk_index,
            recovered_events,
            recovered_segments,
            lost_bytes,
            complete: error.is_none(),
            error,
            trace,
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Record, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

fn read_exact<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), StoreError> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => return Err(StoreError::Truncated { context }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(StoreError::io(format!("reading {context}"), e)),
        }
    }
    Ok(())
}

/// Densifies a whole encoded trace back into a [`Trace`].
///
/// # Errors
///
/// Any structural error, plus [`StoreError::Protocol`] when the decoded
/// stream does not satisfy `segments == events + 1`.
pub fn read_trace<R: Read>(input: R) -> Result<Trace, StoreError> {
    let mut reader = TraceReader::new(input)?;
    let program_len = reader.program_len();
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut segments: Vec<Vec<u32>> = Vec::new();
    while let Some(record) = reader.next_record()? {
        match record {
            Record::Event(ev) => events.push(ev),
            Record::Segment(seg) => segments.push(seg),
        }
    }
    if segments.len() != events.len() + 1 {
        return Err(StoreError::Protocol {
            events: events.len(),
            segments: segments.len(),
        });
    }
    Ok(Trace {
        events,
        segments,
        program_len,
    })
}

/// [`read_trace`] from a file path.
///
/// # Errors
///
/// As [`read_trace`], plus open failures.
pub fn read_trace_file(path: &Path) -> Result<Trace, StoreError> {
    let file = File::open(path)
        .map_err(|e| StoreError::io(format!("opening trace file {}", path.display()), e))?;
    read_trace(BufReader::new(file))
}

/// [`TraceReader::salvage`] from a file path.
///
/// # Errors
///
/// Open and header failures only — once the header validates there is
/// always *a* salvage result, however empty.
pub fn salvage_trace_file(path: &Path) -> Result<Salvage, StoreError> {
    Ok(TraceReader::open(path)?.salvage())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_trace;
    use tinyvm::{LifecycleItem, TaskId};

    fn sample_trace() -> Trace {
        let items = [
            LifecycleItem::Int(2),
            LifecycleItem::PostTask(TaskId(0)),
            LifecycleItem::Reti,
            LifecycleItem::RunTask(TaskId(0)),
            LifecycleItem::TaskEnd(TaskId(0)),
        ];
        Trace {
            events: items
                .iter()
                .enumerate()
                .map(|(i, &item)| TraceEvent {
                    cycle: 100 + 7 * i as u64,
                    item,
                })
                .collect(),
            segments: (0..6).map(|i| vec![i as u32, 0, 2 * i as u32, 0]).collect(),
            program_len: 4,
        }
    }

    fn encode(trace: &Trace) -> Vec<u8> {
        let mut out = Vec::new();
        write_trace(&mut out, trace).unwrap();
        out
    }

    #[test]
    fn round_trips_a_trace() {
        let trace = sample_trace();
        let decoded = read_trace(&encode(&trace)[..]).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(decoded.digest(), trace.digest());
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace {
            events: vec![],
            segments: vec![vec![0, 0]],
            program_len: 2,
        };
        assert_eq!(read_trace(&encode(&trace)[..]).unwrap(), trace);
    }

    #[test]
    fn streaming_interval_replay_matches_batch() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        let reader = TraceReader::new(&bytes[..]).unwrap();
        let mut streamed = reader.replay_online().unwrap();
        streamed.sort_by_key(|iv| iv.start_index);
        let batch = sentomist_trace::extract(&trace).unwrap().intervals;
        assert_eq!(streamed, batch);
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let bytes = encode(&sample_trace());
        for cut in 0..bytes.len() {
            let result = read_trace(&bytes[..cut]);
            assert!(
                result.is_err(),
                "prefix of {cut}/{} bytes decoded successfully",
                bytes.len()
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = encode(&sample_trace());
        bytes[0] = b'X';
        assert!(matches!(read_trace(&bytes[..]), Err(StoreError::BadMagic)));
        let mut bytes = encode(&sample_trace());
        bytes[4] = 0xEE;
        assert!(matches!(
            read_trace(&bytes[..]),
            Err(StoreError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&sample_trace());
        bytes.push(0);
        assert!(matches!(
            read_trace(&bytes[..]),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let bytes = encode(&sample_trace());
        // Flip one bit inside the first records chunk's payload.
        let mut corrupted = bytes.clone();
        corrupted[12 + 5 + 2] ^= 0x10;
        assert!(matches!(
            read_trace(&corrupted[..]),
            Err(StoreError::ChecksumMismatch { chunk: 0 })
        ));
    }

    #[test]
    fn salvage_of_an_intact_file_is_complete_and_lossless() {
        let trace = sample_trace();
        let salvage = TraceReader::new(&encode(&trace)[..]).unwrap().salvage();
        assert!(salvage.complete);
        assert_eq!(salvage.error, None);
        assert_eq!(salvage.trace, trace);
        assert_eq!(salvage.dropped_events, 0);
        assert_eq!(salvage.lost_bytes, 0);
        assert_eq!(salvage.recovered_events, trace.events.len() as u64);
    }

    #[test]
    fn salvage_recovers_a_protocol_valid_prefix_from_any_truncation() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        for cut in 12..bytes.len() {
            let Ok(reader) = TraceReader::new(&bytes[..cut]) else {
                continue; // header itself unreadable: nothing to salvage
            };
            let salvage = reader.salvage();
            assert!(!salvage.complete, "cut at {cut} still verified");
            assert!(salvage.error.is_some());
            let t = &salvage.trace;
            assert_eq!(
                t.segments.len(),
                t.events.len() + 1,
                "cut at {cut} broke the protocol"
            );
            assert_eq!(t.program_len, trace.program_len);
            // The recovered prefix is a true prefix of the original.
            assert_eq!(t.events[..], trace.events[..t.events.len()]);
            assert_eq!(t.segments[..], trace.segments[..t.segments.len()]);
            assert!(salvage.dropped_events <= 1, "clean cut drops at most one");
        }
    }

    #[test]
    fn salvage_stops_at_a_checksum_failure_and_counts_lost_bytes() {
        let trace = sample_trace();
        let mut bytes = encode(&trace);
        // Flip a bit inside the first records chunk's payload.
        bytes[12 + 5 + 2] ^= 0x10;
        let salvage = TraceReader::new(&bytes[..]).unwrap().salvage();
        assert!(!salvage.complete);
        assert!(salvage.error.unwrap().contains("checksum"));
        assert_eq!(salvage.recovered_chunks, 0);
        // Nothing decodable before the bad chunk: canonical empty trace.
        assert!(salvage.trace.events.is_empty());
        assert_eq!(salvage.trace.segments, vec![vec![0; 4]]);
        assert!(salvage.lost_bytes > 0);
    }

    #[test]
    fn protocol_violation_is_typed() {
        // events == segments (hand-built): encodes fine, read_trace rejects.
        let trace = Trace {
            events: sample_trace().events,
            segments: vec![vec![0, 0, 0, 0]; 5],
            program_len: 4,
        };
        assert!(matches!(
            read_trace(&encode(&trace)[..]),
            Err(StoreError::Protocol { .. })
        ));
    }
}
