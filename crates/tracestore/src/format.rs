//! The `.stc` binary trace format, version 1.
//!
//! Layout:
//!
//! ```text
//! header   := "STRC" u16:version u16:flags u32:program_len
//! chunk    := u8:kind u32:payload_len payload u32:fnv32(payload)
//! kind     := 1 (records) | 0xFF (end)
//! records  := record*
//! record   := event | segment
//! event    := u8:tag(1..=5) varint:zigzag(cycle - prev_cycle) [varint:payload]
//! segment  := u8:6 varint:nonzero_count (varint:index_delta varint:count)*
//! end      := varint:event_count varint:segment_count u64le:stream_digest
//! ```
//!
//! All multi-byte fixed-width integers are little-endian. Cycle stamps
//! are delta-encoded against the previous event (zigzag, so a hand-built
//! non-monotonic trace still round-trips). Count segments are sparse:
//! only non-zero instruction counters are stored, addressed by the gap
//! from the previous non-zero index (`index_delta = index - prev_index`,
//! with `prev_index` starting at -1, so every delta is ≥ 1). The payload
//! of `Int` is the IRQ line; of `PostTask`/`RunTask`/`TaskEnd` the task
//! id; `Reti` carries none.
//!
//! Versioning policy: any change to this byte layout must bump
//! [`FORMAT_VERSION`] and add a migration note to `DESIGN.md`; readers
//! reject newer versions with a typed error instead of guessing.

use crate::error::StoreError;
use sentomist_trace::TraceEvent;
use tinyvm::{LifecycleItem, TaskId};

/// File magic: the first four bytes of every `.stc` file.
pub const MAGIC: [u8; 4] = *b"STRC";

/// Current (and only) format version.
pub const FORMAT_VERSION: u16 = 1;

/// Chunk kind: a run of encoded records.
pub const CHUNK_RECORDS: u8 = 1;

/// Chunk kind: the end chunk (item counts + stream digest).
pub const CHUNK_END: u8 = 0xFF;

/// Writers start a fresh chunk once the current payload exceeds this.
pub(crate) const CHUNK_TARGET: usize = 64 * 1024;

/// Readers reject declared payload lengths beyond this bound (a corrupt
/// length field must not trigger a huge allocation).
pub(crate) const MAX_CHUNK: usize = 64 * 1024 * 1024;

/// Largest program length either side of the format will accept. Real
/// tinyvm programs are a few hundred instructions; a header whose
/// `program_len` claims more than a million is bit rot, and honouring it
/// would make every densified segment a multi-megabyte allocation.
pub const MAX_PROGRAM_LEN: usize = 1 << 20;

pub(crate) const TAG_INT: u8 = 1;
pub(crate) const TAG_RETI: u8 = 2;
pub(crate) const TAG_POST: u8 = 3;
pub(crate) const TAG_RUN: u8 = 4;
pub(crate) const TAG_TASK_END: u8 = 5;
pub(crate) const TAG_SEGMENT: u8 = 6;

/// Bytes one event costs in the naive fixed-width encoding the format is
/// benchmarked against: u64 cycle + u8 tag + u16 payload.
pub const NAIVE_EVENT_BYTES: u64 = 11;

/// Bytes one segment entry costs in the naive fixed-width encoding (u32).
pub const NAIVE_COUNT_BYTES: u64 = 4;

// ---------------------------------------------------------------------
// Hashes
// ---------------------------------------------------------------------

/// FNV-1a over a byte slice, 32-bit — the per-chunk checksum.
pub fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
    }
    h
}

/// One FNV-1a (64-bit) mixing step — the stream digest is a fold of
/// these over the record stream.
#[inline]
pub(crate) fn mix64(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(0x0000_0100_0000_01B3)
}

/// Initial stream-digest state for a program of the given length.
pub(crate) fn digest_seed(program_len: u32) -> u64 {
    mix64(0xcbf2_9ce4_8422_2325, u64::from(program_len))
}

/// Folds one event into the stream digest.
pub(crate) fn digest_event(h: u64, cycle: u64, item: LifecycleItem) -> u64 {
    let (tag, payload) = item_code(item);
    mix64(mix64(mix64(h, 1), cycle), (u64::from(tag) << 32) | payload)
}

/// Folds one segment into the stream digest (length + every count).
pub(crate) fn digest_segment(h: u64, counts: &[u32]) -> u64 {
    let mut h = mix64(mix64(h, 2), counts.len() as u64);
    for &c in counts {
        h = mix64(h, u64::from(c));
    }
    h
}

// ---------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------

/// Appends an LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `bytes` at `*pos`, advancing it.
///
/// # Errors
///
/// [`StoreError::Corrupt`] when the varint runs past the buffer or past
/// 64 bits.
pub fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(StoreError::Corrupt("varint runs past the chunk".into()));
        };
        *pos += 1;
        let low = u64::from(byte & 0x7F);
        if shift >= 64 || (shift == 63 && low > 1) {
            return Err(StoreError::Corrupt("varint wider than 64 bits".into()));
        }
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed delta to an unsigned varint payload.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

fn item_code(item: LifecycleItem) -> (u8, u64) {
    match item {
        LifecycleItem::Int(n) => (TAG_INT, u64::from(n)),
        LifecycleItem::Reti => (TAG_RETI, 0),
        LifecycleItem::PostTask(t) => (TAG_POST, u64::from(t.0)),
        LifecycleItem::RunTask(t) => (TAG_RUN, u64::from(t.0)),
        LifecycleItem::TaskEnd(t) => (TAG_TASK_END, u64::from(t.0)),
    }
}

/// Encodes one lifecycle event against the previous event's cycle.
pub fn put_event(buf: &mut Vec<u8>, prev_cycle: u64, cycle: u64, item: LifecycleItem) {
    let (tag, payload) = item_code(item);
    buf.push(tag);
    put_varint(buf, zigzag(cycle.wrapping_sub(prev_cycle) as i64));
    if tag != TAG_RETI {
        put_varint(buf, payload);
    }
}

/// Encodes one count segment sparsely (non-zero entries only).
pub fn put_segment(buf: &mut Vec<u8>, counts: &[u32]) {
    buf.push(TAG_SEGMENT);
    let nonzero = counts.iter().filter(|&&c| c != 0).count() as u64;
    put_varint(buf, nonzero);
    let mut prev: i64 = -1;
    for (i, &c) in counts.iter().enumerate() {
        if c != 0 {
            put_varint(buf, (i as i64 - prev) as u64);
            put_varint(buf, u64::from(c));
            prev = i as i64;
        }
    }
}

/// One decoded record: either a lifecycle event or a count segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A lifecycle event with its absolute cycle stamp.
    Event(TraceEvent),
    /// A count segment, densified back to `program_len` entries.
    Segment(Vec<u32>),
}

/// Decodes the record starting at `*pos` (whose tag byte is already
/// consumed and passed as `tag`).
///
/// # Errors
///
/// [`StoreError::Corrupt`] on unknown tags, varint problems, payloads out
/// of range, or segment indices beyond `program_len`.
pub fn get_record(
    tag: u8,
    bytes: &[u8],
    pos: &mut usize,
    prev_cycle: u64,
    program_len: usize,
) -> Result<Record, StoreError> {
    match tag {
        TAG_INT | TAG_RETI | TAG_POST | TAG_RUN | TAG_TASK_END => {
            let delta = unzigzag(get_varint(bytes, pos)?);
            let cycle = prev_cycle.wrapping_add(delta as u64);
            let item = match tag {
                TAG_RETI => LifecycleItem::Reti,
                TAG_INT => {
                    let n = get_varint(bytes, pos)?;
                    let n = u8::try_from(n)
                        .map_err(|_| StoreError::Corrupt(format!("irq line {n} out of range")))?;
                    LifecycleItem::Int(n)
                }
                _ => {
                    let t = get_varint(bytes, pos)?;
                    let t = u16::try_from(t)
                        .map_err(|_| StoreError::Corrupt(format!("task id {t} out of range")))?;
                    match tag {
                        TAG_POST => LifecycleItem::PostTask(TaskId(t)),
                        TAG_RUN => LifecycleItem::RunTask(TaskId(t)),
                        _ => LifecycleItem::TaskEnd(TaskId(t)),
                    }
                }
            };
            Ok(Record::Event(TraceEvent { cycle, item }))
        }
        TAG_SEGMENT => {
            let nonzero = get_varint(bytes, pos)?;
            if nonzero > program_len as u64 {
                return Err(StoreError::Corrupt(format!(
                    "segment claims {nonzero} non-zero counters in a {program_len}-instruction \
                     program"
                )));
            }
            let mut counts = vec![0u32; program_len];
            let mut index: i64 = -1;
            for _ in 0..nonzero {
                let delta = get_varint(bytes, pos)?;
                if delta == 0 {
                    return Err(StoreError::Corrupt("zero index delta in segment".into()));
                }
                index =
                    index
                        .checked_add(i64::try_from(delta).map_err(|_| {
                            StoreError::Corrupt("segment index delta overflows".into())
                        })?)
                        .ok_or_else(|| StoreError::Corrupt("segment index overflows".into()))?;
                let slot = counts.get_mut(index as usize).ok_or_else(|| {
                    StoreError::Corrupt(format!(
                        "segment counter index {index} beyond program length {program_len}"
                    ))
                })?;
                let c = get_varint(bytes, pos)?;
                *slot = u32::try_from(c)
                    .map_err(|_| StoreError::Corrupt(format!("counter value {c} exceeds u32")))?;
            }
            Ok(Record::Segment(counts))
        }
        other => Err(StoreError::Corrupt(format!("unknown record tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert!(get_varint(&buf[..buf.len() - 1], &mut pos).is_err());
        let wide = [0x80u8; 11];
        let mut pos = 0;
        assert!(get_varint(&wide, &mut pos).is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn events_round_trip_with_deltas() {
        let items = [
            LifecycleItem::Int(3),
            LifecycleItem::PostTask(TaskId(7)),
            LifecycleItem::Reti,
            LifecycleItem::RunTask(TaskId(7)),
            LifecycleItem::TaskEnd(TaskId(7)),
        ];
        let cycles = [10u64, 10, 900, 5_000_000_000, 5_000_000_001];
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for (&c, &item) in cycles.iter().zip(&items) {
            put_event(&mut buf, prev, c, item);
            prev = c;
        }
        let mut pos = 0;
        let mut prev = 0u64;
        for (&c, &item) in cycles.iter().zip(&items) {
            let tag = buf[pos];
            pos += 1;
            let rec = get_record(tag, &buf, &mut pos, prev, 0).unwrap();
            assert_eq!(rec, Record::Event(TraceEvent { cycle: c, item }));
            prev = c;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn sparse_segment_round_trips() {
        let counts = vec![0, 0, 5, 0, 0, 0, 1, u32::MAX, 0];
        let mut buf = Vec::new();
        put_segment(&mut buf, &counts);
        // 2 bytes header+count, then far fewer than 4 bytes per entry.
        assert!(buf.len() < counts.len() * 4);
        let mut pos = 1; // skip tag
        let rec = get_record(TAG_SEGMENT, &buf, &mut pos, 0, counts.len()).unwrap();
        assert_eq!(rec, Record::Segment(counts));
    }

    #[test]
    fn segment_rejects_out_of_range_index() {
        let mut buf = Vec::new();
        put_segment(&mut buf, &[0, 0, 9]);
        let mut pos = 1;
        // Densify into a *shorter* program: the stored index 2 is invalid.
        assert!(matches!(
            get_record(TAG_SEGMENT, &buf, &mut pos, 0, 2),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_tag_is_typed() {
        let buf = [0u8; 4];
        let mut pos = 0;
        assert!(matches!(
            get_record(42, &buf, &mut pos, 0, 0),
            Err(StoreError::Corrupt(_))
        ));
    }
}
