//! Zero-copy trace views: decode an `.stc` file from borrowed byte
//! slices instead of per-chunk owned buffers.
//!
//! [`TraceReader`](crate::TraceReader) streams from any `Read`, which
//! forces it to copy every chunk payload into an owned `Vec<u8>` before
//! decoding. The re-mine path doesn't need that generality: the file is
//! already on disk, so [`TraceImage`] loads it once into a single
//! buffer and [`TraceView`] decodes **in place** — every chunk payload
//! is a borrowed `&[u8]` slice ([`ChunkRef`]) into the image, checked
//! against its checksum but never copied. (`#![forbid(unsafe_code)]`
//! rules out a real `mmap`; a single whole-file image with borrowed
//! views is the safe equivalent and keeps the same `&[u8]`-slice API a
//! future mmap could back.)
//!
//! On top of chunk slices, [`TraceView::replay_online`] goes one step
//! further than the streaming reader: count segments are digest-folded
//! **sparsely** — straight from their varint encoding, without
//! densifying each one into a `program_len`-wide allocation — because
//! interval mining only consumes lifecycle events. The fold replicates
//! [`digest_segment`](crate::format) exactly (length, then every
//! counter including zeros), so end-chunk verification still holds.

use crate::error::StoreError;
use crate::format::{
    self, get_record, Record, CHUNK_END, CHUNK_RECORDS, FORMAT_VERSION, MAGIC, MAX_CHUNK,
    MAX_PROGRAM_LEN, TAG_SEGMENT,
};
use sentomist_trace::{EventInterval, OnlineExtractor, Trace, TraceEvent};
use std::path::Path;

/// A whole `.stc` file loaded into one owned buffer — the thing a
/// [`TraceView`] borrows from.
#[derive(Debug, Clone)]
pub struct TraceImage {
    bytes: Vec<u8>,
}

impl TraceImage {
    /// Loads the file at `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be read.
    pub fn open(path: &Path) -> Result<TraceImage, StoreError> {
        let bytes = std::fs::read(path)
            .map_err(|e| StoreError::io(format!("reading trace file {}", path.display()), e))?;
        Ok(TraceImage { bytes })
    }

    /// Wraps already-loaded bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> TraceImage {
        TraceImage { bytes }
    }

    /// The raw file bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// A validated zero-copy view over this image.
    ///
    /// # Errors
    ///
    /// Header validation errors, as [`TraceReader::new`](crate::TraceReader::new).
    pub fn view(&self) -> Result<TraceView<'_>, StoreError> {
        TraceView::new(&self.bytes)
    }
}

/// One chunk of an `.stc` file as a borrowed slice: checksum-verified,
/// never copied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef<'a> {
    /// Chunk kind ([`CHUNK_RECORDS`] or [`CHUNK_END`]).
    pub kind: u8,
    /// The chunk payload, borrowed from the underlying image.
    pub payload: &'a [u8],
}

/// A zero-copy decoding view over an in-memory `.stc` file.
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    bytes: &'a [u8],
    program_len: u32,
}

impl<'a> TraceView<'a> {
    /// Validates the header and wraps `bytes`.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`],
    /// [`StoreError::Truncated`] or [`StoreError::Corrupt`].
    pub fn new(bytes: &'a [u8]) -> Result<TraceView<'a>, StoreError> {
        let header = bytes.get(..12).ok_or(StoreError::Truncated {
            context: "file header",
        })?;
        if header[..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let flags = u16::from_le_bytes([header[6], header[7]]);
        if flags != 0 {
            return Err(StoreError::Corrupt(format!(
                "unknown header flags {flags:#06x}"
            )));
        }
        let program_len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if program_len as usize > MAX_PROGRAM_LEN {
            return Err(StoreError::Corrupt(format!(
                "implausible program length {program_len}"
            )));
        }
        Ok(TraceView { bytes, program_len })
    }

    /// The program length declared in the header.
    pub fn program_len(&self) -> usize {
        self.program_len as usize
    }

    /// Iterates the file's chunks as borrowed [`ChunkRef`]s, verifying
    /// each checksum. The iterator yields the end chunk last; trailing
    /// bytes after it are an error.
    pub fn chunks(&self) -> ChunkIter<'a> {
        ChunkIter {
            bytes: self.bytes,
            pos: 12,
            index: 0,
            done: false,
        }
    }

    /// Densifies the whole view back into a [`Trace`], verifying chunk
    /// checksums, the end-chunk digest, and the recorder protocol —
    /// byte-for-byte equivalent to [`read_trace`](crate::read_trace),
    /// but decoding from borrowed slices with no per-chunk copies.
    ///
    /// # Errors
    ///
    /// Any structural error of the file.
    pub fn to_trace(&self) -> Result<Trace, StoreError> {
        let program_len = self.program_len();
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut segments: Vec<Vec<u32>> = Vec::new();
        let mut digest = format::digest_seed(self.program_len);
        let mut prev_cycle = 0u64;
        for chunk in self.chunks() {
            let chunk = chunk?;
            match chunk.kind {
                CHUNK_RECORDS => {
                    let payload = chunk.payload;
                    let mut pos = 0;
                    while pos < payload.len() {
                        let tag = payload[pos];
                        pos += 1;
                        match get_record(tag, payload, &mut pos, prev_cycle, program_len)? {
                            Record::Event(ev) => {
                                digest = format::digest_event(digest, ev.cycle, ev.item);
                                prev_cycle = ev.cycle;
                                events.push(ev);
                            }
                            Record::Segment(counts) => {
                                digest = format::digest_segment(digest, &counts);
                                segments.push(counts);
                            }
                        }
                    }
                }
                _ => {
                    verify_end(
                        chunk.payload,
                        events.len() as u64,
                        segments.len() as u64,
                        digest,
                    )?;
                }
            }
        }
        if segments.len() != events.len() + 1 {
            return Err(StoreError::Protocol {
                events: events.len(),
                segments: segments.len(),
            });
        }
        Ok(Trace {
            events,
            segments,
            program_len,
        })
    }

    /// Replays lifecycle events into an [`OnlineExtractor`] straight
    /// off the borrowed slices — the zero-copy re-mine path. Count
    /// segments are digest-folded sparsely from their varint encoding
    /// (no `program_len`-wide densification per segment), and the
    /// end-chunk digest is still fully verified.
    ///
    /// # Errors
    ///
    /// Any structural error of the file.
    pub fn replay_online(&self) -> Result<Vec<EventInterval>, StoreError> {
        let program_len = self.program_len();
        let mut extractor = OnlineExtractor::new();
        let mut intervals = Vec::new();
        let mut digest = format::digest_seed(self.program_len);
        let mut prev_cycle = 0u64;
        let mut events = 0u64;
        let mut segments = 0u64;
        for chunk in self.chunks() {
            let chunk = chunk?;
            match chunk.kind {
                CHUNK_RECORDS => {
                    let payload = chunk.payload;
                    let mut pos = 0;
                    while pos < payload.len() {
                        let tag = payload[pos];
                        pos += 1;
                        if tag == TAG_SEGMENT {
                            digest = fold_sparse_segment(payload, &mut pos, digest, program_len)?;
                            segments += 1;
                        } else {
                            match get_record(tag, payload, &mut pos, prev_cycle, program_len)? {
                                Record::Event(ev) => {
                                    digest = format::digest_event(digest, ev.cycle, ev.item);
                                    prev_cycle = ev.cycle;
                                    intervals.extend(extractor.feed(
                                        events as usize,
                                        ev.cycle,
                                        ev.item,
                                    ));
                                    events += 1;
                                }
                                Record::Segment(_) => unreachable!("tag filtered above"),
                            }
                        }
                    }
                }
                _ => verify_end(chunk.payload, events, segments, digest)?,
            }
        }
        Ok(intervals)
    }
}

/// Folds one sparsely-encoded segment into the stream digest without
/// densifying it: replicates [`format::digest_segment`] — a fold of the
/// segment length followed by every counter, zeros included — by
/// walking the stored `(index_delta, count)` pairs and folding the
/// implied zero gaps.
fn fold_sparse_segment(
    payload: &[u8],
    pos: &mut usize,
    digest: u64,
    program_len: usize,
) -> Result<u64, StoreError> {
    let nonzero = format::get_varint(payload, pos)?;
    if nonzero > program_len as u64 {
        return Err(StoreError::Corrupt(format!(
            "segment claims {nonzero} non-zero counters in a {program_len}-instruction program"
        )));
    }
    let mut h = format::mix64(format::mix64(digest, 2), program_len as u64);
    let mut index: i64 = -1;
    for _ in 0..nonzero {
        let delta = format::get_varint(payload, pos)?;
        if delta == 0 {
            return Err(StoreError::Corrupt("zero index delta in segment".into()));
        }
        let next = index
            .checked_add(
                i64::try_from(delta)
                    .map_err(|_| StoreError::Corrupt("segment index delta overflows".into()))?,
            )
            .ok_or_else(|| StoreError::Corrupt("segment index overflows".into()))?;
        if next as u64 >= program_len as u64 {
            return Err(StoreError::Corrupt(format!(
                "segment counter index {next} beyond program length {program_len}"
            )));
        }
        let count = format::get_varint(payload, pos)?;
        let count = u32::try_from(count)
            .map_err(|_| StoreError::Corrupt(format!("counter value {count} exceeds u32")))?;
        // Zero-valued slots between the previous stored index and this
        // one still participate in the digest.
        for _ in (index + 1)..next {
            h = format::mix64(h, 0);
        }
        h = format::mix64(h, u64::from(count));
        index = next;
    }
    for _ in (index + 1)..program_len as i64 {
        h = format::mix64(h, 0);
    }
    Ok(h)
}

fn verify_end(payload: &[u8], events: u64, segments: u64, digest: u64) -> Result<(), StoreError> {
    let mut pos = 0;
    let want_events = format::get_varint(payload, &mut pos)?;
    let want_segments = format::get_varint(payload, &mut pos)?;
    let digest_bytes: [u8; 8] = payload
        .get(pos..pos + 8)
        .and_then(|s| s.try_into().ok())
        .ok_or(StoreError::Truncated {
            context: "end-chunk digest",
        })?;
    if pos + 8 != payload.len() {
        return Err(StoreError::Corrupt("oversized end chunk".into()));
    }
    let want_digest = u64::from_le_bytes(digest_bytes);
    if want_events != events || want_segments != segments {
        return Err(StoreError::DigestMismatch {
            expected: format!("{want_events} events + {want_segments} segments"),
            actual: format!("{events} events + {segments} segments"),
        });
    }
    if want_digest != digest {
        return Err(StoreError::DigestMismatch {
            expected: format!("{want_digest:016x}"),
            actual: format!("{digest:016x}"),
        });
    }
    Ok(())
}

/// Iterator over a view's chunks. Yields checksum-verified borrowed
/// [`ChunkRef`]s; stops after the end chunk (rejecting trailing bytes)
/// or at the first structural defect.
#[derive(Debug, Clone)]
pub struct ChunkIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    index: u64,
    done: bool,
}

impl<'a> Iterator for ChunkIter<'a> {
    type Item = Result<ChunkRef<'a>, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.pos >= self.bytes.len() {
            self.done = true;
            return Some(Err(StoreError::Truncated {
                context: "missing end chunk",
            }));
        }
        let kind = self.bytes[self.pos];
        let frame = &self.bytes[self.pos + 1..];
        let Some(len_bytes) = frame.get(..4) else {
            self.done = true;
            return Some(Err(StoreError::Truncated {
                context: "chunk length",
            }));
        };
        let len =
            u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        if len > MAX_CHUNK {
            self.done = true;
            return Some(Err(StoreError::Corrupt(format!(
                "chunk {} declares an implausible {len}-byte payload",
                self.index
            ))));
        }
        let Some(payload) = frame.get(4..4 + len) else {
            self.done = true;
            return Some(Err(StoreError::Truncated {
                context: "chunk payload",
            }));
        };
        let Some(sum) = frame.get(4 + len..4 + len + 4) else {
            self.done = true;
            return Some(Err(StoreError::Truncated {
                context: "chunk checksum",
            }));
        };
        if format::fnv32(payload) != u32::from_le_bytes([sum[0], sum[1], sum[2], sum[3]]) {
            self.done = true;
            return Some(Err(StoreError::ChecksumMismatch { chunk: self.index }));
        }
        self.pos += 1 + 4 + len + 4;
        self.index += 1;
        match kind {
            CHUNK_RECORDS => {
                if payload.is_empty() {
                    return self.next(); // legal but pointless; skip
                }
                Some(Ok(ChunkRef { kind, payload }))
            }
            CHUNK_END => {
                self.done = true;
                if self.pos != self.bytes.len() {
                    return Some(Err(StoreError::Corrupt(
                        "trailing data after the end chunk".into(),
                    )));
                }
                Some(Ok(ChunkRef { kind, payload }))
            }
            other => Some(Err(StoreError::Corrupt(format!(
                "unknown chunk kind {other}"
            )))),
        }
    }
}

/// [`TraceView::to_trace`] from a file path: one read, zero per-chunk
/// copies — the re-mine replacement for
/// [`read_trace_file`](crate::read_trace_file).
///
/// # Errors
///
/// Read and structural errors, as their streaming counterparts.
pub fn read_trace_image(path: &Path) -> Result<Trace, StoreError> {
    TraceImage::open(path)?.view()?.to_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::{read_trace, TraceReader};
    use crate::writer::write_trace;
    use tinyvm::{LifecycleItem, TaskId};

    fn sample_trace() -> Trace {
        let items = [
            LifecycleItem::Int(2),
            LifecycleItem::PostTask(TaskId(0)),
            LifecycleItem::Reti,
            LifecycleItem::RunTask(TaskId(0)),
            LifecycleItem::TaskEnd(TaskId(0)),
        ];
        Trace {
            events: items
                .iter()
                .enumerate()
                .map(|(i, &item)| TraceEvent {
                    cycle: 100 + 7 * i as u64,
                    item,
                })
                .collect(),
            segments: (0..6).map(|i| vec![i as u32, 0, 2 * i as u32, 0]).collect(),
            program_len: 4,
        }
    }

    fn encode(trace: &Trace) -> Vec<u8> {
        let mut out = Vec::new();
        write_trace(&mut out, trace).unwrap();
        out
    }

    #[test]
    fn view_decodes_identically_to_the_streaming_reader() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        let image = TraceImage::from_bytes(bytes.clone());
        let decoded = image.view().unwrap().to_trace().unwrap();
        assert_eq!(decoded, read_trace(&bytes[..]).unwrap());
        assert_eq!(decoded, trace);
    }

    #[test]
    fn empty_trace_views_fine() {
        let trace = Trace {
            events: vec![],
            segments: vec![vec![0, 0]],
            program_len: 2,
        };
        let image = TraceImage::from_bytes(encode(&trace));
        assert_eq!(image.view().unwrap().to_trace().unwrap(), trace);
        assert_eq!(image.view().unwrap().replay_online().unwrap(), vec![]);
    }

    #[test]
    fn chunk_payloads_borrow_from_the_image() {
        let bytes = encode(&sample_trace());
        let image = TraceImage::from_bytes(bytes);
        let view = image.view().unwrap();
        let range = image.bytes().as_ptr_range();
        for chunk in view.chunks() {
            let chunk = chunk.unwrap();
            // The payload slice points into the image buffer itself.
            assert!(range.contains(&chunk.payload.as_ptr()) || chunk.payload.is_empty());
        }
    }

    #[test]
    fn replay_online_matches_the_streaming_reader() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        let image = TraceImage::from_bytes(bytes.clone());
        let mut zero_copy = image.view().unwrap().replay_online().unwrap();
        zero_copy.sort_by_key(|iv| iv.start_index);
        let mut streamed = TraceReader::new(&bytes[..])
            .unwrap()
            .replay_online()
            .unwrap();
        streamed.sort_by_key(|iv| iv.start_index);
        assert_eq!(zero_copy, streamed);
    }

    #[test]
    fn sparse_digest_fold_matches_the_dense_fold() {
        // Dense and sparse folds over assorted segments must agree.
        for counts in [
            vec![0u32, 0, 0, 0],
            vec![1, 0, 0, 9],
            vec![0, 7, 0, 0],
            vec![5, 5, 5, 5],
            vec![u32::MAX, 0, 1, 0],
        ] {
            let mut buf = Vec::new();
            format::put_segment(&mut buf, &counts);
            let mut pos = 1; // skip tag
            let sparse = fold_sparse_segment(&buf, &mut pos, 0x1234, counts.len()).unwrap();
            let dense = format::digest_segment(0x1234, &counts);
            assert_eq!(sparse, dense, "counts {counts:?}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let bytes = encode(&sample_trace());
        for cut in 0..bytes.len() {
            let result = TraceView::new(&bytes[..cut]).and_then(|v| v.to_trace());
            assert!(result.is_err(), "prefix of {cut} bytes decoded");
            let result = TraceView::new(&bytes[..cut]).and_then(|v| v.replay_online().map(|_| ()));
            assert!(result.is_err(), "prefix of {cut} bytes replayed");
        }
    }

    #[test]
    fn corruption_and_trailing_garbage_are_typed() {
        let bytes = encode(&sample_trace());
        let mut corrupted = bytes.clone();
        corrupted[12 + 5 + 2] ^= 0x10;
        assert!(matches!(
            TraceImage::from_bytes(corrupted).view().unwrap().to_trace(),
            Err(StoreError::ChecksumMismatch { chunk: 0 })
        ));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            TraceImage::from_bytes(trailing).view().unwrap().to_trace(),
            Err(StoreError::Corrupt(_))
        ));
        let mut bad_magic = bytes;
        bad_magic[0] = b'X';
        assert!(matches!(
            TraceView::new(&bad_magic),
            Err(StoreError::BadMagic)
        ));
    }
}
