//! Write-ahead log of manifest operations, and the recovery pass that
//! replays it after a crash.
//!
//! Every atomic publication (run manifest, campaign manifest, corpus
//! index) is bracketed by WAL records:
//!
//! ```text
//! {"op":"begin","target":"runs/seed-.../manifest.json","tmp":"....tmp"}
//!     → write tmp, fsync
//!     → rename tmp over target (atomic)
//!     → fsync the containing directory
//! {"op":"commit","target":"runs/seed-.../manifest.json"}
//! ```
//!
//! Because the rename is atomic, the target is *always* either the old
//! document or the new one — never a torn mix. The WAL therefore does
//! not need undo/redo content; it only records intent, so
//! [`TraceStore::fsck`] knows which publications were in flight when the
//! process died and can sweep their temp files. The log is append-only
//! JSON lines; a torn final line (the crash landing inside the WAL
//! append itself) is dropped on read, exactly like the campaign journal.

use crate::error::StoreError;
use crate::store::{seed_for_run_id, TraceStore};
use crate::sync::WriteClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File name of the write-ahead log at the store root.
pub const WAL_FILE: &str = "wal.jsonl";

/// Suffix of in-flight publication files (swept by recovery).
pub const TMP_SUFFIX: &str = ".tmp";

/// One write-ahead log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalRecord {
    /// `begin` or `commit`.
    pub op: String,
    /// Store-relative path of the file being published.
    pub target: String,
}

impl WalRecord {
    /// A `begin` record for `target`.
    pub fn begin(target: &str) -> WalRecord {
        WalRecord {
            op: "begin".to_string(),
            target: target.to_string(),
        }
    }

    /// A `commit` record for `target`.
    pub fn commit(target: &str) -> WalRecord {
        WalRecord {
            op: "commit".to_string(),
            target: target.to_string(),
        }
    }
}

/// What a [`TraceStore::fsck`] pass found (and, with `repair`, fixed).
///
/// An all-empty report means the store is clean. Every field is a list
/// of store-relative paths (or run ids), so reports are stable across
/// machines and can be asserted in tests.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Publications that began but never committed (the crash window).
    pub pending: Vec<String>,
    /// Orphan `.tmp` files found (removed when repairing).
    pub torn_tmp: Vec<String>,
    /// Run directories whose manifest is missing or unparsable
    /// (quarantined when repairing).
    pub torn_runs: Vec<String>,
    /// Runs whose trace files are missing or the wrong size
    /// (quarantined when repairing).
    pub damaged_runs: Vec<String>,
    /// `true` when `index.json` exists but no longer matches the run
    /// set (rebuilt when repairing).
    pub stale_index: bool,
    /// `true` when this pass ran with repair enabled.
    pub repaired: bool,
}

impl RecoveryReport {
    /// `true` when nothing was wrong.
    pub fn is_clean(&self) -> bool {
        self.pending.is_empty()
            && self.torn_tmp.is_empty()
            && self.torn_runs.is_empty()
            && self.damaged_runs.is_empty()
            && !self.stale_index
    }
}

impl TraceStore {
    /// Path of the write-ahead log (which may not exist yet).
    pub fn wal_path(&self) -> PathBuf {
        self.root().join(WAL_FILE)
    }

    /// Appends one record to the write-ahead log.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] (including an injected crash).
    pub fn append_wal(&self, record: &WalRecord) -> Result<(), StoreError> {
        let line = serde_json::to_string(record).map_err(|e| StoreError::Manifest {
            path: self.wal_path(),
            message: format!("serializing WAL record: {e}"),
        })?;
        let mut bytes = line.into_bytes();
        bytes.push(b'\n');
        self.shim()
            .append_file(&self.wal_path(), &bytes, WriteClass::Journal)
    }

    /// The WAL's complete records, oldest first. A torn trailing line —
    /// the crash landing inside the WAL append itself — is dropped, and
    /// so are unparsable lines: the WAL only records intent, so a lost
    /// record at worst leaves a sweepable `.tmp` file behind.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on anything other than a missing log.
    pub fn wal_records(&self) -> Result<Vec<WalRecord>, StoreError> {
        let path = self.wal_path();
        let data = match std::fs::read(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::io(format!("reading {}", path.display()), e)),
        };
        let text = String::from_utf8_lossy(&data);
        let sealed = match text.rfind('\n') {
            Some(last) => &text[..last],
            None => "",
        };
        Ok(sealed
            .lines()
            .filter_map(|line| serde_json::from_str::<WalRecord>(line).ok())
            .collect())
    }

    /// Targets with a `begin` but no matching `commit` — the
    /// publications that were in flight when the process died.
    ///
    /// # Errors
    ///
    /// As [`TraceStore::wal_records`].
    pub fn wal_pending(&self) -> Result<Vec<String>, StoreError> {
        let mut open: BTreeMap<String, u64> = BTreeMap::new();
        for record in self.wal_records()? {
            match record.op.as_str() {
                "begin" => *open.entry(record.target).or_insert(0) += 1,
                "commit" => {
                    if let Some(n) = open.get_mut(&record.target) {
                        *n = n.saturating_sub(1);
                        if *n == 0 {
                            open.remove(&record.target);
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(open.into_keys().collect())
    }

    /// Removes the write-ahead log (all publications settled). Missing
    /// log is fine.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn clear_wal(&self) -> Result<(), StoreError> {
        let path = self.wal_path();
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::io(format!("removing {}", path.display()), e)),
        }
    }

    /// Checks the store for crash damage; with `repair`, fixes what it
    /// finds. The recovery state machine, in order:
    ///
    /// 1. **WAL scan** — publications with a `begin` but no `commit`
    ///    were in flight at the crash. The rename is atomic, so their
    ///    targets are whole (old or new); only the `.tmp` staging files
    ///    can be torn, and those are swept.
    /// 2. **Tmp sweep** — every `*.tmp` under the store (root, run
    ///    directories, shards) is an unfinished publication; removed.
    /// 3. **Run audit** — a run directory without a parsable manifest,
    ///    or whose trace files are missing or the wrong size, was torn
    ///    mid-ingest; quarantined (the seed is re-runnable, the corpus
    ///    must stay mineable).
    /// 4. **Index check** — an `index.json` whose run set no longer
    ///    matches the store is stale; rebuilt via
    ///    [`crate::CorpusIndex::merge`].
    /// 5. With `repair`, the WAL is cleared — everything it recorded
    ///    has been settled.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the store cannot be scanned or a repair
    /// step fails.
    pub fn fsck(&self, repair: bool) -> Result<RecoveryReport, StoreError> {
        let mut report = RecoveryReport {
            pending: self.wal_pending()?,
            repaired: repair,
            ..RecoveryReport::default()
        };
        // Shard sub-stores keep their own WALs; fold their pending
        // publications into the report (and settle them on repair).
        for shard in self.shard_ids()? {
            let sub = self.shard(&shard)?;
            for target in sub.wal_pending()? {
                report.pending.push(format!("shards/{shard}/{target}"));
            }
            if repair {
                sub.clear_wal()?;
            }
        }

        // Tmp sweep: store root, every run directory, every shard.
        let mut dirs = vec![self.root().to_path_buf(), self.root().join("runs")];
        for shard in self.shard_ids()? {
            let shard_root = self.shard_dir(&shard);
            dirs.push(shard_root.join("runs"));
            dirs.push(shard_root);
        }
        for id in self.run_ids()? {
            if let Some(dir) = self.locate_run(&id)? {
                dirs.push(dir);
            }
        }
        for dir in dirs {
            sweep_tmp(self, &dir, repair, &mut report.torn_tmp)?;
        }

        // Run audit, across the merged view.
        for id in self.run_ids()? {
            match self.manifest(&id) {
                Err(_) => {
                    report.torn_runs.push(id.clone());
                    if repair {
                        self.quarantine_run(&id, "torn manifest (crash during commit)")?;
                    }
                }
                Ok(manifest) => {
                    let Some(dir) = self.locate_run(&id)? else {
                        continue;
                    };
                    let damaged = manifest.nodes.iter().any(|node| {
                        std::fs::metadata(dir.join(&node.file))
                            .map(|m| m.len() != node.encoded_bytes)
                            .unwrap_or(true)
                    });
                    if damaged {
                        report.damaged_runs.push(id.clone());
                        if repair {
                            self.quarantine_run(&id, "trace file missing or torn")?;
                        }
                    }
                }
            }
        }

        // Index staleness: present but out of sync with the run set.
        if let Some(index) = crate::index::CorpusIndex::load(self)? {
            let live: Vec<String> = self.run_ids()?;
            let indexed: Vec<String> = index.entries.iter().map(|e| e.run_id.clone()).collect();
            if live != indexed {
                report.stale_index = true;
                if repair {
                    crate::index::CorpusIndex::merge(self)?;
                }
            }
        }

        if repair {
            self.clear_wal()?;
        }
        Ok(report)
    }

    /// The crash-recovery entry point: [`TraceStore::fsck`] with repair
    /// enabled. After `recover()` the store is clean — every torn
    /// publication swept, every torn run quarantined, the index fresh —
    /// and re-running the quarantined seeds restores the full corpus.
    ///
    /// # Errors
    ///
    /// As [`TraceStore::fsck`].
    pub fn recover(&self) -> Result<RecoveryReport, StoreError> {
        self.fsck(true)
    }

    /// Seeds of runs currently in quarantine (re-runnable work), sorted.
    ///
    /// # Errors
    ///
    /// As [`TraceStore::quarantined`].
    pub fn quarantined_seeds(&self) -> Result<Vec<u64>, StoreError> {
        let mut seeds: Vec<u64> = self
            .quarantined()?
            .iter()
            .filter_map(|note| seed_for_run_id(&note.run_id))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        Ok(seeds)
    }
}

fn sweep_tmp(
    store: &TraceStore,
    dir: &Path,
    repair: bool,
    torn: &mut Vec<String>,
) -> Result<(), StoreError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(StoreError::io(format!("listing {}", dir.display()), e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(format!("listing {}", dir.display()), e))?;
        let path = entry.path();
        let is_tmp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(TMP_SUFFIX));
        if path.is_file() && is_tmp {
            let rel = path
                .strip_prefix(store.root())
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            torn.push(rel);
            if repair {
                std::fs::remove_file(&path)
                    .map_err(|e| StoreError::io(format!("removing {}", path.display()), e))?;
            }
        }
    }
    torn.sort_unstable();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::run_id_for_seed;
    use sentomist_trace::{Trace, TraceEvent};
    use tinyvm::LifecycleItem;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sentomist-wal-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn trace_with(cycles: u64) -> Trace {
        Trace {
            events: vec![TraceEvent {
                cycle: cycles,
                item: LifecycleItem::Int(1),
            }],
            segments: vec![vec![1, 0], vec![0, 4]],
            program_len: 2,
        }
    }

    #[test]
    fn wal_records_pending_and_commit_balance() {
        let root = tmpdir("pending");
        let store = TraceStore::create(&root).unwrap();
        store
            .append_wal(&WalRecord::begin("a/manifest.json"))
            .unwrap();
        store
            .append_wal(&WalRecord::begin("b/manifest.json"))
            .unwrap();
        store
            .append_wal(&WalRecord::commit("a/manifest.json"))
            .unwrap();
        assert_eq!(store.wal_pending().unwrap(), vec!["b/manifest.json"]);
        store
            .append_wal(&WalRecord::commit("b/manifest.json"))
            .unwrap();
        assert_eq!(store.wal_pending().unwrap(), Vec::<String>::new());
        store.clear_wal().unwrap();
        store.clear_wal().unwrap(); // idempotent
        assert_eq!(store.wal_records().unwrap(), vec![]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_wal_tail_is_dropped() {
        let root = tmpdir("torn");
        let store = TraceStore::create(&root).unwrap();
        store.append_wal(&WalRecord::begin("x")).unwrap();
        let mut bytes = std::fs::read(store.wal_path()).unwrap();
        bytes.extend_from_slice(br#"{"op":"comm"#);
        std::fs::write(store.wal_path(), &bytes).unwrap();
        assert_eq!(store.wal_records().unwrap().len(), 1);
        assert_eq!(store.wal_pending().unwrap(), vec!["x"]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fsck_on_a_clean_store_reports_clean() {
        let root = tmpdir("clean");
        let store = TraceStore::create(&root).unwrap();
        store.save_run(1, "test", 0, &[trace_with(5)]).unwrap();
        let report = store.fsck(false).unwrap();
        assert!(report.is_clean(), "{report:?}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fsck_sweeps_orphan_tmp_files() {
        let root = tmpdir("tmp");
        let store = TraceStore::create(&root).unwrap();
        let manifest = store.save_run(1, "test", 0, &[trace_with(5)]).unwrap();
        let orphan = store.locate_run(&manifest.run_id).unwrap().unwrap();
        std::fs::write(orphan.join("manifest.json.tmp"), b"{half").unwrap();
        let report = store.fsck(false).unwrap();
        assert_eq!(report.torn_tmp.len(), 1);
        assert!(!report.repaired);
        // Dry run leaves it in place; repair removes it.
        let report = store.recover().unwrap();
        assert_eq!(report.torn_tmp.len(), 1);
        assert!(report.repaired);
        assert!(store.fsck(false).unwrap().is_clean());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fsck_quarantines_torn_runs_and_reports_their_seeds() {
        let root = tmpdir("tornrun");
        let store = TraceStore::create(&root).unwrap();
        store.save_run(3, "test", 0, &[trace_with(5)]).unwrap();
        store.save_run(4, "test", 0, &[trace_with(6)]).unwrap();
        // Tear run 3's manifest and run 4's trace file.
        let dir3 = store.locate_run(&run_id_for_seed(3)).unwrap().unwrap();
        std::fs::write(dir3.join("manifest.json"), b"{\"format_ver").unwrap();
        let dir4 = store.locate_run(&run_id_for_seed(4)).unwrap().unwrap();
        let stc = std::fs::read(dir4.join("node-000.stc")).unwrap();
        std::fs::write(dir4.join("node-000.stc"), &stc[..stc.len() / 2]).unwrap();
        let report = store.recover().unwrap();
        assert_eq!(report.torn_runs, vec![run_id_for_seed(3)]);
        assert_eq!(report.damaged_runs, vec![run_id_for_seed(4)]);
        assert_eq!(store.quarantined_seeds().unwrap(), vec![3, 4]);
        assert_eq!(store.run_ids().unwrap(), Vec::<String>::new());
        assert!(store.fsck(false).unwrap().is_clean());
        let _ = std::fs::remove_dir_all(&root);
    }
}
