//! Durability discipline and deterministic crash injection for every
//! byte the store writes.
//!
//! All store-mediated writes flow through one [`IoShim`]:
//!
//! * a [`SyncPolicy`] decides whether files (and their containing
//!   directories, after a rename-publication) are fsynced — `Durable`
//!   for real corpora, `Fast` for throwaway test stores and benches
//!   where the codec, not the disk, is under measurement;
//! * every write is tagged with a [`WriteClass`] and counted, so a
//!   probe pass can learn exactly how many bytes a workload writes per
//!   class;
//! * an optional [`IoFault`] tears the write that crosses a
//!   seed-derived byte offset of its class — the prefix reaches disk,
//!   the rest does not — and every subsequent operation fails, exactly
//!   like a process killed mid-write. `core::chaos` arms these faults
//!   to drive the crash-point matrix.
//!
//! The shim is shared (`Arc` internals) so cloned [`TraceStore`]
//! handles — including per-shard sub-stores — observe one global byte
//! stream, the way one dying process would tear all of its writers at
//! the same instant.
//!
//! [`TraceStore`]: crate::TraceStore

use crate::error::StoreError;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How hard the store tries to make writes durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync every published file and, after a rename-publication, its
    /// containing directory — a crash cannot resurrect the old manifest
    /// or lose the new one.
    #[default]
    Durable,
    /// No fsync at all. For scratch stores in tests and benches; a real
    /// corpus written under `Fast` is only as durable as the page cache.
    Fast,
}

/// The kind of bytes a store write carries — the axis the crash-point
/// matrix tears along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteClass {
    /// Encoded `.stc` trace data (shard ingestion).
    Data,
    /// A run or campaign manifest publication.
    Manifest,
    /// The merged corpus index publication.
    Index,
    /// Write-ahead log and campaign journal appends.
    Journal,
}

impl WriteClass {
    /// All classes, in counter order.
    pub const ALL: [WriteClass; 4] = [
        WriteClass::Data,
        WriteClass::Manifest,
        WriteClass::Index,
        WriteClass::Journal,
    ];

    fn slot(self) -> usize {
        match self {
            WriteClass::Data => 0,
            WriteClass::Manifest => 1,
            WriteClass::Index => 2,
            WriteClass::Journal => 3,
        }
    }

    /// Stable lower-case name (used in fsck/chaos reports).
    pub fn slug(self) -> &'static str {
        match self {
            WriteClass::Data => "data",
            WriteClass::Manifest => "manifest",
            WriteClass::Index => "index",
            WriteClass::Journal => "journal",
        }
    }
}

/// A seeded crash point: the write whose bytes of `class` cross
/// `offset` (counted from shim creation) is torn at that offset, and
/// the shim plays dead from then on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFault {
    /// Which byte stream to tear.
    pub class: WriteClass,
    /// Global byte offset within that class at which the write tears.
    pub offset: u64,
}

#[derive(Debug, Default)]
struct ShimState {
    counters: [AtomicU64; 4],
    dead: AtomicBool,
}

/// The write path every [`TraceStore`](crate::TraceStore) operation
/// goes through: class-tagged, counted, fsync-disciplined, and
/// tearable.
#[derive(Debug, Clone)]
pub struct IoShim {
    policy: SyncPolicy,
    fault: Option<IoFault>,
    state: Arc<ShimState>,
}

impl Default for IoShim {
    fn default() -> Self {
        IoShim::new(SyncPolicy::default())
    }
}

impl IoShim {
    /// A shim with no fault armed.
    pub fn new(policy: SyncPolicy) -> IoShim {
        IoShim {
            policy,
            fault: None,
            state: Arc::new(ShimState::default()),
        }
    }

    /// A shim that tears at `fault` and then plays dead.
    pub fn with_fault(policy: SyncPolicy, fault: IoFault) -> IoShim {
        IoShim {
            policy,
            fault: Some(fault),
            state: Arc::new(ShimState::default()),
        }
    }

    /// The shim's durability policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Bytes written so far under `class` — the probe pass reads these
    /// to size a workload before deriving crash offsets from a seed.
    pub fn bytes_written(&self, class: WriteClass) -> u64 {
        self.state.counters[class.slot()].load(Ordering::SeqCst)
    }

    /// Whether an armed fault has fired (the simulated process is dead).
    pub fn crashed(&self) -> bool {
        self.state.dead.load(Ordering::SeqCst)
    }

    fn injected(&self, what: &str) -> StoreError {
        StoreError::io(
            format!("injected crash: {what}"),
            std::io::Error::other("process killed by crash harness"),
        )
    }

    /// Checks liveness; a dead shim fails every operation.
    fn check_alive(&self, what: &str) -> Result<(), StoreError> {
        if self.crashed() {
            return Err(self.injected(what));
        }
        Ok(())
    }

    /// Accounts `len` bytes of `class`; returns how many may actually
    /// reach disk (fewer than `len` exactly when the fault fires inside
    /// this write).
    fn admit(&self, class: WriteClass, len: u64) -> u64 {
        let before = self.state.counters[class.slot()].fetch_add(len, Ordering::SeqCst);
        match self.fault {
            Some(fault) if fault.class == class && before + len > fault.offset => {
                self.state.dead.store(true, Ordering::SeqCst);
                fault.offset.saturating_sub(before).min(len)
            }
            _ => len,
        }
    }

    /// Writes `bytes` to `path` (truncating), honouring the fault plan
    /// and fsyncing per policy. A fault firing mid-write leaves the
    /// torn prefix on disk — the page-cache image of a killed process.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on real I/O failure or an injected crash.
    pub fn write_file(
        &self,
        path: &Path,
        bytes: &[u8],
        class: WriteClass,
    ) -> Result<(), StoreError> {
        self.check_alive("write")?;
        let keep = self.admit(class, bytes.len() as u64) as usize;
        let torn = keep < bytes.len();
        let io = |e| StoreError::io(format!("writing {}", path.display()), e);
        let mut file = File::create(path).map_err(io)?;
        file.write_all(&bytes[..keep]).map_err(io)?;
        if torn {
            // The torn prefix is what the OS had accepted when the
            // process died; flush it so the recovery test sees it.
            let _ = file.sync_all();
            return Err(self.injected(&format!("write of {} torn at byte {keep}", path.display())));
        }
        self.sync_file(&file, path)
    }

    /// Appends `bytes` to `path` (creating it on first use), honouring
    /// the fault plan and fsyncing per policy.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on real I/O failure or an injected crash.
    pub fn append_file(
        &self,
        path: &Path,
        bytes: &[u8],
        class: WriteClass,
    ) -> Result<(), StoreError> {
        self.check_alive("append")?;
        let keep = self.admit(class, bytes.len() as u64) as usize;
        let torn = keep < bytes.len();
        let io = |e| StoreError::io(format!("appending to {}", path.display()), e);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io)?;
        file.write_all(&bytes[..keep]).map_err(io)?;
        if torn {
            let _ = file.sync_all();
            return Err(self.injected(&format!("append to {} torn at byte {keep}", path.display())));
        }
        self.sync_file(&file, path)
    }

    /// Renames `src` to `dst` — the atomic publication step. Consumes
    /// one accounting byte of `class`, so a seeded offset can also land
    /// *before* the rename (crash between temp write and publication).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on failure or an injected crash (in which
    /// case the rename did not happen).
    pub fn rename(&self, src: &Path, dst: &Path, class: WriteClass) -> Result<(), StoreError> {
        self.check_alive("rename")?;
        if self.admit(class, 1) == 0 {
            return Err(self.injected(&format!(
                "killed before renaming {} into place",
                dst.display()
            )));
        }
        std::fs::rename(src, dst).map_err(|e| {
            StoreError::io(
                format!("renaming {} to {}", src.display(), dst.display()),
                e,
            )
        })
    }

    /// fsyncs an open file per policy.
    fn sync_file(&self, file: &File, path: &Path) -> Result<(), StoreError> {
        if self.policy == SyncPolicy::Durable {
            file.sync_all()
                .map_err(|e| StoreError::io(format!("fsyncing {}", path.display()), e))?;
        }
        Ok(())
    }

    /// fsyncs a directory per policy, making a rename inside it
    /// durable — without this a crash after publication can resurrect
    /// the old manifest from the stale directory entry.
    ///
    /// Shim fallback: platforms where a directory cannot be opened as a
    /// file (e.g. Windows) make this a documented no-op — the rename is
    /// still atomic, only its durability ordering is weaker there.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the fsync itself fails (an unopenable
    /// directory is the no-op fallback, not an error).
    pub fn sync_dir(&self, dir: &Path) -> Result<(), StoreError> {
        if self.policy != SyncPolicy::Durable {
            return Ok(());
        }
        match File::open(dir) {
            Ok(file) => file
                .sync_all()
                .map_err(|e| StoreError::io(format!("fsyncing directory {}", dir.display()), e)),
            // No handle on this platform/filesystem: documented no-op.
            Err(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sentomist-sync-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn counts_bytes_per_class() {
        let dir = tmpdir("count");
        let shim = IoShim::new(SyncPolicy::Fast);
        shim.write_file(&dir.join("a"), b"12345", WriteClass::Data)
            .unwrap();
        shim.append_file(&dir.join("b"), b"xy", WriteClass::Journal)
            .unwrap();
        shim.append_file(&dir.join("b"), b"z", WriteClass::Journal)
            .unwrap();
        assert_eq!(shim.bytes_written(WriteClass::Data), 5);
        assert_eq!(shim.bytes_written(WriteClass::Journal), 3);
        assert_eq!(shim.bytes_written(WriteClass::Manifest), 0);
        assert!(!shim.crashed());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_tears_the_crossing_write_and_then_plays_dead() {
        let dir = tmpdir("tear");
        let fault = IoFault {
            class: WriteClass::Manifest,
            offset: 7,
        };
        let shim = IoShim::with_fault(SyncPolicy::Fast, fault);
        // 5 bytes of manifest: under the offset, fine.
        shim.write_file(&dir.join("m1"), b"aaaaa", WriteClass::Manifest)
            .unwrap();
        // Other classes never tear.
        shim.write_file(&dir.join("d"), b"ddddddddddd", WriteClass::Data)
            .unwrap();
        // This write crosses offset 7 at its 2nd byte: torn prefix.
        let err = shim
            .write_file(&dir.join("m2"), b"bbbbb", WriteClass::Manifest)
            .unwrap_err();
        assert!(err.to_string().contains("injected crash"), "{err}");
        assert_eq!(std::fs::read(dir.join("m2")).unwrap(), b"bb");
        assert!(shim.crashed());
        // Everything after the crash fails, any class, no effect.
        assert!(shim
            .write_file(&dir.join("d2"), b"x", WriteClass::Data)
            .is_err());
        assert!(!dir.join("d2").exists());
        assert!(shim
            .rename(&dir.join("m1"), &dir.join("m3"), WriteClass::Manifest)
            .is_err());
        assert!(dir.join("m1").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_at_offset_zero_kills_before_the_first_byte() {
        let dir = tmpdir("zero");
        let shim = IoShim::with_fault(
            SyncPolicy::Fast,
            IoFault {
                class: WriteClass::Data,
                offset: 0,
            },
        );
        assert!(shim
            .write_file(&dir.join("d"), b"abc", WriteClass::Data)
            .is_err());
        assert_eq!(std::fs::read(dir.join("d")).unwrap(), b"");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rename_consumes_one_accounting_byte() {
        let dir = tmpdir("rename");
        let shim = IoShim::with_fault(
            SyncPolicy::Fast,
            IoFault {
                class: WriteClass::Index,
                offset: 3,
            },
        );
        shim.write_file(&dir.join("i.tmp"), b"abc", WriteClass::Index)
            .unwrap();
        // The rename is the 4th index byte: crosses offset 3, killed
        // before the rename happens.
        assert!(shim
            .rename(&dir.join("i.tmp"), &dir.join("i"), WriteClass::Index)
            .is_err());
        assert!(dir.join("i.tmp").exists());
        assert!(!dir.join("i").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_policy_fsyncs_real_files_and_directories() {
        let dir = tmpdir("durable");
        let shim = IoShim::new(SyncPolicy::Durable);
        shim.write_file(&dir.join("f"), b"payload", WriteClass::Data)
            .unwrap();
        shim.sync_dir(&dir).unwrap();
        // Unopenable directory: the documented no-op fallback.
        shim.sync_dir(&dir.join("does-not-exist")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
