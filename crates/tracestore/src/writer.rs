//! Streaming trace writer: sinks lifecycle items and count segments into
//! the chunked `.stc` format as the VM emits them.

use crate::error::StoreError;
use crate::format::{
    self, put_event, put_segment, CHUNK_END, CHUNK_RECORDS, CHUNK_TARGET, FORMAT_VERSION, MAGIC,
    NAIVE_COUNT_BYTES, NAIVE_EVENT_BYTES,
};
use sentomist_trace::Trace;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use tinyvm::{LifecycleItem, TraceSink};

/// Sizes of one finished trace file, as reported by
/// [`TraceWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Lifecycle events written.
    pub events: u64,
    /// Count segments written.
    pub segments: u64,
    /// Bytes of the encoded file (header + chunks).
    pub encoded_bytes: u64,
    /// Bytes the same items would occupy in the naive fixed-width
    /// encoding (11 bytes/event, 4 bytes/counter slot).
    pub naive_bytes: u64,
    /// The stream digest sealed into the end chunk.
    pub stream_digest: u64,
}

impl StoreStats {
    /// `encoded / naive` — the headline compression figure (1.0 when the
    /// naive size is zero, e.g. an empty trace).
    pub fn ratio(&self) -> f64 {
        if self.naive_bytes == 0 {
            1.0
        } else {
            self.encoded_bytes as f64 / self.naive_bytes as f64
        }
    }
}

/// Chunked, checksummed, streaming writer for one node's trace.
///
/// Implements [`TraceSink`], so it can be attached directly to
/// [`tinyvm::node::Node::run`] (alone, or alongside an in-memory
/// [`sentomist_trace::Recorder`] via [`tinyvm::trace::Tee`]). The sink
/// trait cannot return errors, so an I/O failure mid-run makes the writer
/// go quiet and the error is reported by [`TraceWriter::finish`] — which
/// **must** be called; dropping the writer without finishing loses the
/// end chunk and readers will report the file truncated.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    buf: Vec<u8>,
    program_len: u32,
    prev_cycle: u64,
    events: u64,
    segments: u64,
    digest: u64,
    encoded_bytes: u64,
    naive_bytes: u64,
    deferred: Option<StoreError>,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be created or the header
    /// not written — e.g. an unwritable `--store` directory.
    pub fn create(path: &Path, program_len: usize) -> Result<Self, StoreError> {
        let file = File::create(path)
            .map_err(|e| StoreError::io(format!("creating trace file {}", path.display()), e))?;
        TraceWriter::new(BufWriter::new(file), program_len)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `out`, writing the format header immediately.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the header write fails.
    pub fn new(mut out: W, program_len: usize) -> Result<Self, StoreError> {
        if program_len > format::MAX_PROGRAM_LEN {
            return Err(StoreError::Corrupt(format!(
                "program length {program_len} exceeds the format bound {}",
                format::MAX_PROGRAM_LEN
            )));
        }
        let program_len = u32::try_from(program_len)
            .map_err(|_| StoreError::Corrupt("program length exceeds u32".into()))?;
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes()); // flags
        header.extend_from_slice(&program_len.to_le_bytes());
        out.write_all(&header)
            .map_err(|e| StoreError::io("writing trace header", e))?;
        Ok(TraceWriter {
            out,
            buf: Vec::with_capacity(CHUNK_TARGET + 256),
            program_len,
            prev_cycle: 0,
            events: 0,
            segments: 0,
            digest: format::digest_seed(program_len),
            encoded_bytes: 12,
            naive_bytes: 0,
            deferred: None,
        })
    }

    /// Appends one lifecycle event.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if flushing a full chunk fails.
    pub fn event(&mut self, cycle: u64, item: LifecycleItem) -> Result<(), StoreError> {
        put_event(&mut self.buf, self.prev_cycle, cycle, item);
        self.digest = format::digest_event(self.digest, cycle, item);
        self.prev_cycle = cycle;
        self.events += 1;
        self.naive_bytes += NAIVE_EVENT_BYTES;
        self.maybe_flush()
    }

    /// Appends one count segment (length must equal the program length).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on a wrong-width segment, [`StoreError::Io`]
    /// if flushing a full chunk fails.
    pub fn segment(&mut self, counts: &[u32]) -> Result<(), StoreError> {
        if counts.len() != self.program_len as usize {
            return Err(StoreError::Corrupt(format!(
                "segment has {} counters, program has {}",
                counts.len(),
                self.program_len
            )));
        }
        put_segment(&mut self.buf, counts);
        self.digest = format::digest_segment(self.digest, counts);
        self.segments += 1;
        self.naive_bytes += NAIVE_COUNT_BYTES * counts.len() as u64;
        self.maybe_flush()
    }

    fn maybe_flush(&mut self) -> Result<(), StoreError> {
        if self.buf.len() >= CHUNK_TARGET {
            self.flush_chunk(CHUNK_RECORDS)?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self, kind: u8) -> Result<(), StoreError> {
        if kind == CHUNK_RECORDS && self.buf.is_empty() {
            return Ok(());
        }
        let checksum = format::fnv32(&self.buf);
        let mut frame = Vec::with_capacity(self.buf.len() + 9);
        frame.push(kind);
        frame.extend_from_slice(&(self.buf.len() as u32).to_le_bytes());
        frame.extend_from_slice(&self.buf);
        frame.extend_from_slice(&checksum.to_le_bytes());
        self.out
            .write_all(&frame)
            .map_err(|e| StoreError::io("writing trace chunk", e))?;
        self.encoded_bytes += frame.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Seals the file: flushes pending records, writes the end chunk
    /// (item counts + stream digest) and flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Any error deferred from sink-driven writes, then any error from the
    /// final writes themselves.
    pub fn finish(mut self) -> Result<StoreStats, StoreError> {
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        self.flush_chunk(CHUNK_RECORDS)?;
        format::put_varint(&mut self.buf, self.events);
        format::put_varint(&mut self.buf, self.segments);
        self.buf.extend_from_slice(&self.digest.to_le_bytes());
        self.flush_chunk(CHUNK_END)?;
        self.out
            .flush()
            .map_err(|e| StoreError::io("flushing trace file", e))?;
        Ok(StoreStats {
            events: self.events,
            segments: self.segments,
            encoded_bytes: self.encoded_bytes,
            naive_bytes: self.naive_bytes,
            stream_digest: self.digest,
        })
    }

    /// The first error swallowed by the infallible [`TraceSink`] facade,
    /// if any (also returned by [`TraceWriter::finish`]).
    pub fn deferred_error(&self) -> Option<&StoreError> {
        self.deferred.as_ref()
    }
}

/// The [`TraceSink`] facade: errors are deferred to
/// [`TraceWriter::finish`] because the sink trait is infallible. After
/// the first failure the writer stops consuming.
impl<W: Write> TraceSink for TraceWriter<W> {
    fn lifecycle(&mut self, cycle: u64, item: LifecycleItem) {
        if self.deferred.is_none() {
            if let Err(e) = self.event(cycle, item) {
                self.deferred = Some(e);
            }
        }
    }

    fn segment(&mut self, counts: &[u32]) {
        if self.deferred.is_none() {
            if let Err(e) = TraceWriter::segment(self, counts) {
                self.deferred = Some(e);
            }
        }
    }
}

/// Encodes a complete in-memory [`Trace`] in recorder protocol order
/// (`(seg ev)* seg`).
///
/// # Errors
///
/// Propagates writer errors; traces whose segment widths disagree with
/// `trace.program_len` are rejected as [`StoreError::Corrupt`].
pub fn write_trace<W: Write>(out: W, trace: &Trace) -> Result<StoreStats, StoreError> {
    let mut w = TraceWriter::new(out, trace.program_len)?;
    for (i, seg) in trace.segments.iter().enumerate() {
        w.segment(seg)?;
        if let Some(ev) = trace.events.get(i) {
            w.event(ev.cycle, ev.item)?;
        }
    }
    // Hand-built traces may carry more events than segments; keep them.
    for ev in trace.events.iter().skip(trace.segments.len()) {
        w.event(ev.cycle, ev.item)?;
    }
    w.finish()
}

/// [`write_trace`] into a freshly created file.
///
/// # Errors
///
/// As [`write_trace`], plus file-creation failures.
pub fn write_trace_file(path: &Path, trace: &Trace) -> Result<StoreStats, StoreError> {
    let file = File::create(path)
        .map_err(|e| StoreError::io(format!("creating trace file {}", path.display()), e))?;
    write_trace(BufWriter::new(file), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentomist_trace::TraceEvent;

    fn tiny_trace() -> Trace {
        Trace {
            events: vec![
                TraceEvent {
                    cycle: 5,
                    item: LifecycleItem::Int(0),
                },
                TraceEvent {
                    cycle: 9,
                    item: LifecycleItem::Reti,
                },
            ],
            segments: vec![vec![1, 0, 0], vec![0, 2, 0], vec![0, 0, 3]],
            program_len: 3,
        }
    }

    #[test]
    fn writes_header_chunks_and_end() {
        let mut out = Vec::new();
        let stats = write_trace(&mut out, &tiny_trace()).unwrap();
        assert_eq!(&out[..4], b"STRC");
        assert_eq!(stats.events, 2);
        assert_eq!(stats.segments, 3);
        assert_eq!(stats.encoded_bytes, out.len() as u64);
        assert_eq!(stats.naive_bytes, 2 * 11 + 3 * 3 * 4);
        // End chunk: kind byte, 4-byte length, payload (2 varints + 8-byte
        // digest), 4-byte checksum.
        let end_payload = 1 + 1 + 8;
        assert_eq!(out[out.len() - end_payload - 9], CHUNK_END);
    }

    #[test]
    fn rejects_wrong_width_segment() {
        let mut w = TraceWriter::new(Vec::new(), 4).unwrap();
        assert!(matches!(w.segment(&[1, 2]), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn sink_facade_defers_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Header write fails immediately with a typed error.
        assert!(matches!(
            TraceWriter::new(Broken, 1),
            Err(StoreError::Io { .. })
        ));
    }
}
