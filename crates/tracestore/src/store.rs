//! The corpus directory: a versioned on-disk collection of runs, each a
//! JSON manifest plus one `.stc` trace file per node.
//!
//! ```text
//! <store>/                     (layout v2)
//!   campaign.json              (optional: how the corpus was produced)
//!   index.json                 (optional: merged, generation-stamped index)
//!   wal.jsonl                  (write-ahead log of in-flight publications)
//!   runs/
//!     seed-00000000000000001000/
//!       manifest.json
//!       node-000.stc
//!       node-001.stc
//!   shards/                    (optional: per-writer sub-stores)
//!     writer-00/
//!       runs/seed-.../...
//! ```
//!
//! Run directories are named `seed-<20-digit decimal>`, so lexicographic
//! order equals numeric seed order and `ls` output is stable. Reads see
//! the **merged** view: [`TraceStore::run_ids`] unions primary `runs/`
//! with every shard, and [`TraceStore::locate_run`] resolves a run id to
//! its physical directory (primary wins, then shards in sorted order).
//! Manifests and the index are published crash-atomically — WAL `begin`,
//! temp-file write + fsync, rename, directory fsync, WAL `commit` — so a
//! killed writer never leaves a torn manifest, only sweepable `.tmp`
//! files (see [`TraceStore::fsck`]). v1 stores (no shards, no WAL, no
//! index, manifests written in place) read back unchanged.

use crate::error::StoreError;
use crate::reader::TraceReader;
use crate::sync::{IoShim, SyncPolicy, WriteClass};
use crate::view::read_trace_image;
use crate::writer::{write_trace, StoreStats};
use sentomist_trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

/// Version of the manifest schema (independent of the `.stc` byte
/// format's [`crate::format::FORMAT_VERSION`]). v2 introduced the
/// crash-atomic commit protocol, shards and the merged index; v1
/// manifests are still read.
pub const MANIFEST_VERSION: u32 = 2;

/// Per-node entry of a [`RunManifest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTraceMeta {
    /// Node id within the run (or run index for multi-run cases).
    pub node: u16,
    /// Trace file name, relative to the run directory.
    pub file: String,
    /// Lifecycle events in the trace.
    pub events: u64,
    /// Count segments in the trace.
    pub segments: u64,
    /// Encoded file size in bytes.
    pub encoded_bytes: u64,
    /// [`Trace::digest`] of the decoded trace, as 16 hex digits — the
    /// same token campaign outcomes carry.
    pub trace_digest: String,
}

/// One run's manifest: everything needed to re-mine it without
/// re-emulating.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest schema version.
    pub format_version: u32,
    /// Run directory name.
    pub run_id: String,
    /// The seed the run was produced under (the replay key).
    pub seed: u64,
    /// Producer mode (`trigger`, `case1`, `case2`, `case3`, `record`).
    pub mode: String,
    /// FNV-1a digest of the program(s) the run executed, 16 hex digits.
    pub program_digest: String,
    /// Per-node traces, in node order.
    pub nodes: Vec<NodeTraceMeta>,
}

/// A stored per-run failure (mirrors `campaign::RunError` without the
/// dependency).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredRunError {
    /// Seed of the failed run.
    pub seed: u64,
    /// The error rendered as text.
    pub message: String,
    /// Failure-kind slug (`error`, `panic`, `timeout`); empty in
    /// manifests written before failure typing (treated as `error`).
    #[serde(default)]
    pub kind: String,
    /// Attempts spent before giving up; 0 in pre-typing manifests
    /// (treated as 1).
    #[serde(default)]
    pub attempts: u32,
}

/// Campaign-level manifest: the job parameters a `trace mine` needs to
/// reproduce the live campaign document byte for byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Manifest schema version.
    pub format_version: u32,
    /// Campaign mode (`trigger` or `case1`..`case3`).
    pub mode: String,
    /// Mode parameters as `key=value` strings (e.g. `period=20`),
    /// exactly the flag values the campaign resolved.
    pub params: Vec<String>,
    /// Number of seeds swept.
    pub seeds: u64,
    /// First seed.
    pub base_seed: u64,
    /// Runs that failed during the live campaign (they have no run
    /// directory).
    pub errors: Vec<StoredRunError>,
}

impl CampaignManifest {
    /// Looks up a `key=value` parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        let prefix = format!("{key}=");
        self.params.iter().find_map(|p| p.strip_prefix(&prefix))
    }
}

/// The run-id directory name for a seed.
pub fn run_id_for_seed(seed: u64) -> String {
    format!("seed-{seed:020}")
}

/// Inverse of [`run_id_for_seed`]: the seed encoded in a run-id
/// directory name, or `None` for foreign names. Lets quarantine report a
/// seed even when the run's manifest is unreadable.
pub fn seed_for_run_id(run_id: &str) -> Option<u64> {
    run_id.strip_prefix("seed-")?.parse().ok()
}

/// File name of the campaign journal (one JSON object per line, appended
/// as seeds complete).
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Reason note written into a quarantined run's directory (and returned
/// by [`TraceStore::quarantined`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineNote {
    /// The quarantined run's directory name.
    pub run_id: String,
    /// Why it was condemned.
    pub reason: String,
}

/// A corpus directory of stored runs.
#[derive(Debug, Clone)]
pub struct TraceStore {
    root: PathBuf,
    shim: IoShim,
}

impl TraceStore {
    /// Creates the store directory (and `runs/`) if needed and opens it,
    /// with the default durable [`IoShim`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created — e.g. an
    /// unwritable `--store` location; the message names the path.
    pub fn create(root: impl Into<PathBuf>) -> Result<TraceStore, StoreError> {
        TraceStore::create_with(root, IoShim::default())
    }

    /// [`TraceStore::create`] with an explicit [`IoShim`] — how the
    /// chaos harness injects crash faults and benches drop fsyncs.
    ///
    /// # Errors
    ///
    /// As [`TraceStore::create`].
    pub fn create_with(root: impl Into<PathBuf>, shim: IoShim) -> Result<TraceStore, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(root.join("runs")).map_err(|e| {
            StoreError::io(format!("creating trace store at {}", root.display()), e)
        })?;
        Ok(TraceStore { root, shim })
    }

    /// Opens an existing store with the default durable [`IoShim`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when `root` is not an existing directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<TraceStore, StoreError> {
        TraceStore::open_with(root, IoShim::default())
    }

    /// [`TraceStore::open`] with an explicit [`IoShim`].
    ///
    /// # Errors
    ///
    /// As [`TraceStore::open`].
    pub fn open_with(root: impl Into<PathBuf>, shim: IoShim) -> Result<TraceStore, StoreError> {
        let root = root.into();
        if !root.join("runs").is_dir() {
            return Err(StoreError::io(
                format!(
                    "opening trace store at {} (no runs/ directory — not a store?)",
                    root.display()
                ),
                std::io::Error::new(std::io::ErrorKind::NotFound, "no such store"),
            ));
        }
        Ok(TraceStore { root, shim })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's I/O shim (shared with every shard sub-store).
    pub fn shim(&self) -> &IoShim {
        &self.shim
    }

    /// The shim's durability policy.
    pub fn policy(&self) -> SyncPolicy {
        self.shim.policy()
    }

    /// Directory of a run in the **primary** `runs/` tree (where new
    /// runs of this store handle are written). For reading, prefer
    /// [`TraceStore::locate_run`], which also finds shard runs.
    pub fn run_dir(&self, run_id: &str) -> PathBuf {
        self.root.join("runs").join(run_id)
    }

    /// Directory of a shard sub-store.
    pub fn shard_dir(&self, shard_id: &str) -> PathBuf {
        self.root.join("shards").join(shard_id)
    }

    /// Opens (creating if needed) the per-writer shard sub-store
    /// `shards/<shard_id>/`. The shard is a full [`TraceStore`] rooted
    /// in its own directory — writers ingest runs into it without ever
    /// contending on the parent's manifests — and it **shares the
    /// parent's [`IoShim`]**, so one simulated process death tears all
    /// writers at the same instant.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`]; ids containing path separators are rejected.
    pub fn shard(&self, shard_id: &str) -> Result<TraceStore, StoreError> {
        if shard_id.is_empty() || shard_id.contains('/') || shard_id.contains('\\') {
            return Err(StoreError::io(
                format!("opening shard {shard_id:?}"),
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "shard ids must be plain directory names",
                ),
            ));
        }
        TraceStore::create_with(self.shard_dir(shard_id), self.shim.clone())
    }

    /// Ids of existing shards, sorted (empty when the store has none).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when `shards/` exists but cannot be listed.
    pub fn shard_ids(&self) -> Result<Vec<String>, StoreError> {
        let dir = self.root.join("shards");
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::io(format!("listing {}", dir.display()), e)),
        };
        let mut ids = Vec::new();
        for entry in entries {
            let entry =
                entry.map_err(|e| StoreError::io(format!("listing {}", dir.display()), e))?;
            if entry.path().is_dir() {
                ids.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Resolves a run id to its physical directory across the merged
    /// view: primary `runs/` wins, then shards in sorted id order.
    /// `None` when no directory holds the run.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the shard listing fails.
    pub fn locate_run(&self, run_id: &str) -> Result<Option<PathBuf>, StoreError> {
        let primary = self.run_dir(run_id);
        if primary.is_dir() {
            return Ok(Some(primary));
        }
        for shard in self.shard_ids()? {
            let dir = self.shard_dir(&shard).join("runs").join(run_id);
            if dir.is_dir() {
                return Ok(Some(dir));
            }
        }
        Ok(None)
    }

    /// Persists one run: every trace as a `.stc` file plus the manifest.
    /// Existing data for the same run id is overwritten.
    ///
    /// # Errors
    ///
    /// Any I/O or encoding failure, with path context.
    pub fn save_run(
        &self,
        seed: u64,
        mode: &str,
        program_digest: u64,
        traces: &[Trace],
    ) -> Result<RunManifest, StoreError> {
        let run_id = run_id_for_seed(seed);
        let dir = self.run_dir(&run_id);
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("creating run directory {}", dir.display()), e))?;
        let mut nodes = Vec::with_capacity(traces.len());
        for (i, trace) in traces.iter().enumerate() {
            let file = format!("node-{i:03}.stc");
            // Encode in memory, then land the bytes through the shim so
            // trace data participates in crash injection and fsync policy.
            let mut bytes = Vec::new();
            let stats: StoreStats = write_trace(&mut bytes, trace)?;
            self.shim
                .write_file(&dir.join(&file), &bytes, WriteClass::Data)?;
            nodes.push(NodeTraceMeta {
                node: i as u16,
                file,
                events: stats.events,
                segments: stats.segments,
                encoded_bytes: stats.encoded_bytes,
                trace_digest: format!("{:016x}", trace.digest()),
            });
        }
        let manifest = RunManifest {
            format_version: MANIFEST_VERSION,
            run_id,
            seed,
            mode: mode.to_string(),
            program_digest: format!("{program_digest:016x}"),
            nodes,
        };
        self.write_manifest(&manifest)?;
        Ok(manifest)
    }

    /// Writes (or rewrites) a run's `manifest.json`, crash-atomically:
    /// WAL `begin` → temp write + fsync → rename over the target →
    /// directory fsync → WAL `commit`. The rename is atomic, so a crash
    /// anywhere in the protocol leaves the manifest whole — either the
    /// previous version or the new one, never a torn mix. The run
    /// directory must already exist — used by streaming producers that
    /// wrote their `.stc` files directly.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Manifest`].
    pub fn write_manifest(&self, manifest: &RunManifest) -> Result<(), StoreError> {
        let rel = format!("runs/{}/manifest.json", manifest.run_id);
        let json = serde_json::to_string_pretty(manifest).map_err(|e| StoreError::Manifest {
            path: self.root.join(&rel),
            message: format!("serializing manifest: {e}"),
        })?;
        self.publish(&rel, json.as_bytes(), WriteClass::Manifest)
    }

    /// All run ids across the merged view — primary `runs/` unioned
    /// with every shard — sorted ascending (== ascending seed order).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when `runs/` or a shard cannot be listed.
    pub fn run_ids(&self) -> Result<Vec<String>, StoreError> {
        let mut ids = BTreeSet::new();
        let mut dirs = vec![self.root.join("runs")];
        for shard in self.shard_ids()? {
            dirs.push(self.shard_dir(&shard).join("runs"));
        }
        for dir in dirs {
            let entries = match std::fs::read_dir(&dir) {
                Ok(entries) => entries,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => {
                    return Err(StoreError::io(
                        format!("listing store runs in {}", dir.display()),
                        e,
                    ))
                }
            };
            for entry in entries {
                let entry =
                    entry.map_err(|e| StoreError::io(format!("listing {}", dir.display()), e))?;
                if entry.path().is_dir() {
                    ids.insert(entry.file_name().to_string_lossy().into_owned());
                }
            }
        }
        Ok(ids.into_iter().collect())
    }

    /// Loads one run's manifest (resolving shard runs transparently).
    ///
    /// # Errors
    ///
    /// [`StoreError::Manifest`] when missing or unparsable.
    pub fn manifest(&self, run_id: &str) -> Result<RunManifest, StoreError> {
        let dir = self
            .locate_run(run_id)?
            .unwrap_or_else(|| self.run_dir(run_id));
        let path = dir.join("manifest.json");
        let data = std::fs::read_to_string(&path).map_err(|e| StoreError::Manifest {
            path: path.clone(),
            message: format!("reading manifest: {e}"),
        })?;
        let manifest: RunManifest =
            serde_json::from_str(&data).map_err(|e| StoreError::Manifest {
                path: path.clone(),
                message: format!("parsing manifest: {e}"),
            })?;
        if manifest.format_version > MANIFEST_VERSION {
            return Err(StoreError::Manifest {
                path,
                message: format!(
                    "manifest version {} is newer than this binary understands",
                    manifest.format_version
                ),
            });
        }
        Ok(manifest)
    }

    /// All manifests, ascending by run id.
    ///
    /// # Errors
    ///
    /// First listing or manifest error.
    pub fn manifests(&self) -> Result<Vec<RunManifest>, StoreError> {
        self.run_ids()?.iter().map(|id| self.manifest(id)).collect()
    }

    /// Decodes every trace of a run, verifying each against its manifest
    /// digest. Served by the zero-copy [`crate::TraceView`] path: one
    /// whole-file read per node, records decoded from borrowed chunk
    /// slices with no per-chunk copies.
    ///
    /// # Errors
    ///
    /// Decode errors, plus [`StoreError::DigestMismatch`] when a decoded
    /// trace does not hash to the digest its manifest recorded.
    pub fn load_traces(&self, manifest: &RunManifest) -> Result<Vec<Trace>, StoreError> {
        let dir = self
            .locate_run(&manifest.run_id)?
            .unwrap_or_else(|| self.run_dir(&manifest.run_id));
        let mut traces = Vec::with_capacity(manifest.nodes.len());
        for node in &manifest.nodes {
            let trace = read_trace_image(&dir.join(&node.file))?;
            let digest = format!("{:016x}", trace.digest());
            if digest != node.trace_digest {
                return Err(StoreError::DigestMismatch {
                    expected: node.trace_digest.clone(),
                    actual: digest,
                });
            }
            traces.push(trace);
        }
        Ok(traces)
    }

    /// Opens a streaming reader on one node's trace file.
    ///
    /// # Errors
    ///
    /// Open/header errors.
    pub fn open_node(
        &self,
        manifest: &RunManifest,
        node: usize,
    ) -> Result<TraceReader<BufReader<File>>, StoreError> {
        let meta = manifest
            .nodes
            .get(node)
            .ok_or_else(|| StoreError::Manifest {
                path: self.run_dir(&manifest.run_id).join("manifest.json"),
                message: format!("run has no node {node}"),
            })?;
        let dir = self
            .locate_run(&manifest.run_id)?
            .unwrap_or_else(|| self.run_dir(&manifest.run_id));
        TraceReader::open(&dir.join(&meta.file))
    }

    /// Persists the campaign manifest (`campaign.json`),
    /// crash-atomically like [`TraceStore::write_manifest`].
    ///
    /// # Errors
    ///
    /// I/O or serialization failures.
    pub fn save_campaign(&self, manifest: &CampaignManifest) -> Result<(), StoreError> {
        let json = serde_json::to_string_pretty(manifest).map_err(|e| StoreError::Manifest {
            path: self.root.join("campaign.json"),
            message: format!("serializing campaign manifest: {e}"),
        })?;
        self.publish("campaign.json", json.as_bytes(), WriteClass::Manifest)
    }

    /// Path of the campaign journal (which may not exist yet).
    pub fn journal_path(&self) -> PathBuf {
        self.root.join(JOURNAL_FILE)
    }

    /// Appends one line to the campaign journal, creating it on first
    /// use. The journal is the campaign's checkpoint: one self-contained
    /// JSON object per completed seed, so a killed campaign resumes from
    /// whatever made it to disk.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn append_journal(&self, line: &str) -> Result<(), StoreError> {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        self.shim
            .append_file(&self.journal_path(), &bytes, WriteClass::Journal)
    }

    /// The journal's complete lines (empty when no journal exists). A
    /// trailing line without a newline — the torn write of a killed
    /// campaign — is dropped, not an error: resume re-runs that seed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on anything other than a missing journal.
    pub fn journal_lines(&self) -> Result<Vec<String>, StoreError> {
        let path = self.journal_path();
        let data = match std::fs::read(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::io(format!("reading {}", path.display()), e)),
        };
        let text = String::from_utf8_lossy(&data);
        let sealed = match text.rfind('\n') {
            Some(last) => &text[..last],
            None => "", // a single torn line: nothing is sealed
        };
        Ok(sealed
            .lines()
            .filter(|line| !line.trim().is_empty())
            .map(str::to_string)
            .collect())
    }

    /// Removes the journal (a completed campaign's checkpoint is garbage
    /// once `campaign.json` holds the final result). Missing journal is
    /// fine.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn clear_journal(&self) -> Result<(), StoreError> {
        let path = self.journal_path();
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::io(format!("removing {}", path.display()), e)),
        }
    }

    /// The campaign-artifact directory (which may not exist yet):
    /// rendered documents that summarize the corpus — `BUG_REPORT.md`,
    /// `bug_report.json` — live beside the runs they were mined from.
    pub fn artifacts_dir(&self) -> PathBuf {
        self.root.join("artifacts")
    }

    /// Saves a named campaign artifact under `artifacts/`, creating the
    /// directory on first use and overwriting a previous version.
    /// Returns the artifact's path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`]; a name containing a path separator is
    /// rejected (artifacts are flat files, not trees).
    pub fn save_artifact(&self, name: &str, contents: &str) -> Result<PathBuf, StoreError> {
        if name.contains('/') || name.contains('\\') || name.is_empty() {
            return Err(StoreError::io(
                format!("saving artifact {name:?}"),
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "artifact names must be plain file names",
                ),
            ));
        }
        let dir = self.artifacts_dir();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("creating {}", dir.display()), e))?;
        let path = dir.join(name);
        std::fs::write(&path, contents)
            .map_err(|e| StoreError::io(format!("writing {}", path.display()), e))?;
        Ok(path)
    }

    /// Loads a named artifact, or `None` when it was never saved.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on anything other than a missing file.
    pub fn load_artifact(&self, name: &str) -> Result<Option<String>, StoreError> {
        let path = self.artifacts_dir().join(name);
        match std::fs::read_to_string(&path) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::io(format!("reading {}", path.display()), e)),
        }
    }

    /// The quarantine directory (which may not exist yet).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// Moves a run out of `runs/` into `quarantine/<run_id>/`, recording
    /// `reason` in a `quarantine.json` note beside the damaged files.
    /// Re-quarantining the same run id replaces the previous occupant.
    /// Returns the run's new location.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the move or the note write fails.
    pub fn quarantine_run(&self, run_id: &str, reason: &str) -> Result<PathBuf, StoreError> {
        let src = self
            .locate_run(run_id)?
            .unwrap_or_else(|| self.run_dir(run_id));
        let dir = self.quarantine_dir();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::io(format!("creating {}", dir.display()), e))?;
        let dst = dir.join(run_id);
        if dst.exists() {
            std::fs::remove_dir_all(&dst)
                .map_err(|e| StoreError::io(format!("replacing {}", dst.display()), e))?;
        }
        std::fs::rename(&src, &dst).map_err(|e| {
            StoreError::io(
                format!("quarantining {} to {}", src.display(), dst.display()),
                e,
            )
        })?;
        let note = QuarantineNote {
            run_id: run_id.to_string(),
            reason: reason.to_string(),
        };
        let note_path = dst.join("quarantine.json");
        let json = serde_json::to_string_pretty(&note).map_err(|e| StoreError::Manifest {
            path: note_path.clone(),
            message: format!("serializing quarantine note: {e}"),
        })?;
        std::fs::write(&note_path, json)
            .map_err(|e| StoreError::io(format!("writing {}", note_path.display()), e))?;
        Ok(dst)
    }

    /// Every quarantined run with its recorded reason, ascending by run
    /// id. Runs whose note is missing or unreadable are still listed,
    /// with a placeholder reason — quarantine must stay navigable even
    /// when the quarantine itself took damage.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the quarantine directory cannot be listed
    /// (a missing directory is simply empty).
    pub fn quarantined(&self) -> Result<Vec<QuarantineNote>, StoreError> {
        let dir = self.quarantine_dir();
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::io(format!("listing {}", dir.display()), e)),
        };
        let mut notes = Vec::new();
        for entry in entries {
            let entry =
                entry.map_err(|e| StoreError::io(format!("listing {}", dir.display()), e))?;
            if !entry.path().is_dir() {
                continue;
            }
            let run_id = entry.file_name().to_string_lossy().into_owned();
            let note = std::fs::read_to_string(entry.path().join("quarantine.json"))
                .ok()
                .and_then(|data| serde_json::from_str::<QuarantineNote>(&data).ok())
                .unwrap_or_else(|| QuarantineNote {
                    run_id: run_id.clone(),
                    reason: "(no reason recorded)".to_string(),
                });
            notes.push(note);
        }
        notes.sort_by(|a, b| a.run_id.cmp(&b.run_id));
        Ok(notes)
    }

    /// Loads the campaign manifest, or `None` for stores of standalone
    /// recordings.
    ///
    /// # Errors
    ///
    /// Parse failures (a present-but-broken `campaign.json` is an error,
    /// not `None`).
    pub fn campaign(&self) -> Result<Option<CampaignManifest>, StoreError> {
        let path = self.root.join("campaign.json");
        let data = match std::fs::read_to_string(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io(format!("reading {}", path.display()), e)),
        };
        serde_json::from_str(&data)
            .map(Some)
            .map_err(|e| StoreError::Manifest {
                path,
                message: format!("parsing campaign manifest: {e}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentomist_trace::TraceEvent;
    use tinyvm::LifecycleItem;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sentomist-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn trace_with(cycles: u64) -> Trace {
        Trace {
            events: vec![
                TraceEvent {
                    cycle: cycles,
                    item: LifecycleItem::Int(1),
                },
                TraceEvent {
                    cycle: cycles + 3,
                    item: LifecycleItem::Reti,
                },
            ],
            segments: vec![vec![1, 0], vec![0, 4], vec![2, 2]],
            program_len: 2,
        }
    }

    #[test]
    fn save_list_load_round_trip() {
        let root = tmpdir("roundtrip");
        let store = TraceStore::create(&root).unwrap();
        let t1 = trace_with(10);
        let t2 = trace_with(99);
        store
            .save_run(7, "trigger", 0xabc, &[t1.clone(), t2.clone()])
            .unwrap();
        store
            .save_run(3, "trigger", 0xabc, std::slice::from_ref(&t1))
            .unwrap();
        let ids = store.run_ids().unwrap();
        assert_eq!(ids.len(), 2);
        assert!(ids[0].ends_with("3") && ids[1].ends_with("7"));
        let manifests = store.manifests().unwrap();
        assert_eq!(manifests[0].seed, 3);
        assert_eq!(manifests[1].seed, 7);
        assert_eq!(manifests[1].nodes.len(), 2);
        let traces = store.load_traces(&manifests[1]).unwrap();
        assert_eq!(traces, vec![t1, t2]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn open_rejects_a_non_store() {
        let root = tmpdir("nonstore");
        std::fs::create_dir_all(&root).unwrap();
        let err = TraceStore::open(&root).unwrap_err();
        assert!(err.to_string().contains("not a store"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tampered_trace_fails_digest_verification() {
        let root = tmpdir("tamper");
        let store = TraceStore::create(&root).unwrap();
        let manifest = store.save_run(1, "trigger", 0, &[trace_with(5)]).unwrap();
        // Re-encode a different trace under the same file name.
        let path = store
            .run_dir(&manifest.run_id)
            .join(&manifest.nodes[0].file);
        crate::writer::write_trace_file(&path, &trace_with(6)).unwrap();
        assert!(matches!(
            store.load_traces(&manifest),
            Err(StoreError::DigestMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn campaign_manifest_round_trips() {
        let root = tmpdir("campaign");
        let store = TraceStore::create(&root).unwrap();
        assert!(store.campaign().unwrap().is_none());
        let m = CampaignManifest {
            format_version: MANIFEST_VERSION,
            mode: "trigger".into(),
            params: vec!["period=20".into(), "seconds=2".into(), "nu=0.05".into()],
            seeds: 16,
            base_seed: 1000,
            errors: vec![StoredRunError {
                seed: 1003,
                message: "vm fault".into(),
                kind: "error".into(),
                attempts: 1,
            }],
        };
        store.save_campaign(&m).unwrap();
        let loaded = store.campaign().unwrap().unwrap();
        assert_eq!(loaded, m);
        assert_eq!(loaded.param("period"), Some("20"));
        assert_eq!(loaded.param("missing"), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stored_errors_without_failure_typing_still_parse() {
        // A manifest written before kind/attempts existed.
        let old = r#"{"seed": 9, "message": "vm fault"}"#;
        let e: StoredRunError = serde_json::from_str(old).unwrap();
        assert_eq!(e.seed, 9);
        assert_eq!(e.kind, "");
        assert_eq!(e.attempts, 0);
    }

    #[test]
    fn run_id_seed_round_trip() {
        assert_eq!(seed_for_run_id(&run_id_for_seed(42)), Some(42));
        assert_eq!(seed_for_run_id("seed-00000000000000001000"), Some(1000));
        assert_eq!(seed_for_run_id("not-a-run"), None);
        assert_eq!(seed_for_run_id("seed-xyz"), None);
    }

    #[test]
    fn journal_appends_and_drops_the_torn_tail() {
        let root = tmpdir("journal");
        let store = TraceStore::create(&root).unwrap();
        assert_eq!(store.journal_lines().unwrap(), Vec::<String>::new());
        store.append_journal(r#"{"seed":1}"#).unwrap();
        store.append_journal(r#"{"seed":2}"#).unwrap();
        assert_eq!(
            store.journal_lines().unwrap(),
            vec![r#"{"seed":1}"#.to_string(), r#"{"seed":2}"#.to_string()]
        );
        // Simulate a campaign killed mid-append: a torn trailing line.
        let mut bytes = std::fs::read(store.journal_path()).unwrap();
        bytes.extend_from_slice(br#"{"seed":3,"outco"#);
        std::fs::write(store.journal_path(), &bytes).unwrap();
        assert_eq!(store.journal_lines().unwrap().len(), 2);
        store.clear_journal().unwrap();
        store.clear_journal().unwrap(); // idempotent
        assert_eq!(store.journal_lines().unwrap(), Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn artifacts_save_load_and_reject_paths() {
        let root = tmpdir("artifacts");
        let store = TraceStore::create(&root).unwrap();
        assert_eq!(store.load_artifact("BUG_REPORT.md").unwrap(), None);
        let path = store
            .save_artifact("BUG_REPORT.md", "# Bug Report\n")
            .unwrap();
        assert!(path.starts_with(store.artifacts_dir()));
        assert_eq!(
            store.load_artifact("BUG_REPORT.md").unwrap().as_deref(),
            Some("# Bug Report\n")
        );
        // Overwrite wins.
        store.save_artifact("BUG_REPORT.md", "v2").unwrap();
        assert_eq!(
            store.load_artifact("BUG_REPORT.md").unwrap().as_deref(),
            Some("v2")
        );
        assert!(store.save_artifact("a/b.md", "nope").is_err());
        assert!(store.save_artifact("", "nope").is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn quarantine_moves_runs_and_lists_reasons() {
        let root = tmpdir("quarantine");
        let store = TraceStore::create(&root).unwrap();
        store.save_run(5, "test", 0, &[trace_with(1)]).unwrap();
        store.save_run(6, "test", 0, &[trace_with(2)]).unwrap();
        assert_eq!(store.quarantined().unwrap(), vec![]);
        let id = run_id_for_seed(5);
        let dst = store
            .quarantine_run(&id, "chunk 0 failed its checksum")
            .unwrap();
        assert!(dst.starts_with(store.quarantine_dir()));
        assert!(!store.run_dir(&id).exists());
        assert_eq!(store.run_ids().unwrap(), vec![run_id_for_seed(6)]);
        let notes = store.quarantined().unwrap();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].run_id, id);
        assert!(notes[0].reason.contains("checksum"));
        // Re-quarantining the same id replaces the occupant.
        store.save_run(5, "test", 0, &[trace_with(3)]).unwrap();
        store.quarantine_run(&id, "again").unwrap();
        assert_eq!(store.quarantined().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
