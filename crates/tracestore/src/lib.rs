//! # sentomist-tracestore — a persistent corpus of lifecycle traces
//!
//! The paper notes a single testing run's lifecycle log already reaches
//! tens of megabytes; a campaign multiplies that by hundreds of seeds.
//! This crate makes those traces durable, addressable artifacts instead
//! of process-lifetime vectors, so detectors can be re-tuned and
//! campaigns re-ranked **without paying the emulation cost again**:
//!
//! * [`format`] — the versioned `.stc` byte layout: delta + varint
//!   encoded cycle stamps and item payloads, sparse count segments,
//!   per-chunk checksums, a sealed end chunk with a stream digest;
//! * [`TraceWriter`] — a streaming [`tinyvm::TraceSink`] that encodes
//!   items as the VM emits them, with O(chunk) memory;
//! * [`TraceReader`] — a chunk-at-a-time reader that can replay straight
//!   into the online interval extractor
//!   ([`TraceReader::replay_online`]) or densify a whole [`Trace`]
//!   ([`read_trace`]); corrupt or truncated input yields a typed
//!   [`StoreError`], never a panic;
//! * [`TraceStore`] — the corpus directory: one JSON manifest per run
//!   (seed, mode, program digest, per-node trace digests) plus an
//!   optional campaign manifest, enabling `sentomist trace mine` to
//!   reproduce a live campaign document bit for bit.
//!
//! ```
//! use sentomist_tracestore::{read_trace, write_trace};
//! use sentomist_trace::{Trace, TraceEvent};
//! use tinyvm::LifecycleItem;
//!
//! # fn main() -> Result<(), sentomist_tracestore::StoreError> {
//! let trace = Trace {
//!     events: vec![
//!         TraceEvent { cycle: 4, item: LifecycleItem::Int(0) },
//!         TraceEvent { cycle: 9, item: LifecycleItem::Reti },
//!     ],
//!     segments: vec![vec![3, 0], vec![0, 5], vec![1, 0]],
//!     program_len: 2,
//! };
//! let mut bytes = Vec::new();
//! write_trace(&mut bytes, &trace)?;
//! assert_eq!(read_trace(&bytes[..])?, trace);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod format;
pub mod index;
pub mod reader;
pub mod store;
pub mod sync;
pub mod view;
pub mod wal;
pub mod writer;

pub use error::StoreError;
pub use format::{Record, FORMAT_VERSION};
pub use index::{CorpusFingerprint, CorpusIndex, IndexEntry, INDEX_FILE};
pub use reader::{read_trace, read_trace_file, salvage_trace_file, Salvage, TraceReader};
pub use store::{
    run_id_for_seed, seed_for_run_id, CampaignManifest, NodeTraceMeta, QuarantineNote, RunManifest,
    StoredRunError, TraceStore, JOURNAL_FILE, MANIFEST_VERSION,
};
pub use sync::{IoFault, IoShim, SyncPolicy, WriteClass};
pub use view::{read_trace_image, ChunkRef, TraceImage, TraceView};
pub use wal::{RecoveryReport, WalRecord, TMP_SUFFIX, WAL_FILE};
pub use writer::{write_trace, write_trace_file, StoreStats, TraceWriter};

// Re-exported so doctests and downstream callers can name the trace type
// without a separate dependency line.
pub use sentomist_trace::Trace;
