//! Pins store layout v1 read-back compatibility.
//!
//! `fixtures/store_v1/` is a committed corpus exactly as a
//! `MANIFEST_VERSION = 1` store wrote it: a flat `runs/` tree with
//! per-run manifests, a campaign manifest, and none of the v2
//! machinery (no `wal.jsonl`, no `index.json`, no `shards/`). The
//! tests assert that today's store still opens it, that every trace
//! decodes (through the zero-copy image path) to the pinned digests,
//! that `fsck` finds nothing to repair, and that merging an index over
//! it yields the pinned corpus digest. If any of these fail, v2 broke
//! v1 read-back — that is a compatibility break, never a fixture edit.
//!
//! Regenerate (only alongside a deliberate layout break) with:
//!
//! ```text
//! GOLDEN_CAPTURE=1 cargo test -p sentomist-tracestore --test store_v1_compat
//! ```

use sentomist_trace::{Trace, TraceEvent};
use sentomist_tracestore::{CorpusIndex, TraceStore};
use std::path::PathBuf;
use tinyvm::LifecycleItem;

/// `(seed, Trace::digest)` for every run in the fixture, ascending.
const GOLDEN_TRACE_DIGESTS: [(u64, u64); 3] = [
    (41, 0x443e_99d5_8dae_7568),
    (42, 0x8dc3_17a2_6b91_ceda),
    (43, 0x9304_9014_9aa6_a107),
];

/// [`CorpusIndex::corpus_digest`] of the index merged over the fixture.
const GOLDEN_CORPUS_DIGEST: u64 = 0x1aa1_d852_9c65_460e;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("store_v1")
}

/// The canonical fixture traces: one per seed, pure functions of it.
fn fixture_trace(seed: u64) -> Trace {
    let n = 1 + (seed % 3) as usize;
    let mut cycle = 0u64;
    let events = (0..n)
        .map(|i| {
            cycle += 100 + seed * 3 + i as u64;
            let item = if i % 2 == 0 {
                LifecycleItem::Int((seed % 8) as u8)
            } else {
                LifecycleItem::Reti
            };
            TraceEvent { cycle, item }
        })
        .collect();
    let segments = (0..=n)
        .map(|i| {
            (0..8)
                .map(|p| ((seed << p) as u32 ^ i as u32) % 13)
                .collect()
        })
        .collect();
    Trace {
        events,
        segments,
        program_len: 8,
    }
}

/// Capture mode: write the fixture as a v1 store would have — build it
/// with today's writer, then strip the v2 artifacts and rewrite the
/// manifest version fields to 1.
fn capture() {
    let root = fixture_path();
    std::fs::remove_dir_all(&root).ok();
    let store = TraceStore::create(&root).unwrap();
    for (seed, _) in GOLDEN_TRACE_DIGESTS {
        store
            .save_run(seed, "trigger", 0xbead, &[fixture_trace(seed)])
            .unwrap();
    }
    store
        .save_campaign(&sentomist_tracestore::CampaignManifest {
            format_version: 1,
            mode: "trigger".into(),
            params: vec!["period=20".into(), "seconds=2".into()],
            seeds: 3,
            base_seed: 41,
            errors: vec![],
        })
        .unwrap();
    // A v1 store has no write-ahead log or index.
    std::fs::remove_file(root.join("wal.jsonl")).ok();
    std::fs::remove_file(root.join("index.json")).ok();
    // Run manifests carried format_version 1.
    for (seed, _) in GOLDEN_TRACE_DIGESTS {
        let path = root.join(format!("runs/seed-{seed:020}/manifest.json"));
        let json = std::fs::read_to_string(&path).unwrap();
        let downgraded = json.replacen("\"format_version\": 2", "\"format_version\": 1", 1);
        assert_ne!(json, downgraded, "version field not found in {path:?}");
        std::fs::write(&path, downgraded).unwrap();
    }

    let reopened = TraceStore::open(&root).unwrap();
    let digest = CorpusIndex::merge(&reopened).unwrap().corpus_digest();
    std::fs::remove_file(root.join("index.json")).ok();
    std::fs::remove_file(root.join("wal.jsonl")).ok();
    let digests: Vec<String> = GOLDEN_TRACE_DIGESTS
        .iter()
        .map(|(s, _)| format!("({s}, {:#018x})", fixture_trace(*s).digest()))
        .collect();
    panic!(
        "captured fixtures/store_v1; pin GOLDEN_TRACE_DIGESTS=[{}], \
         GOLDEN_CORPUS_DIGEST={digest:#018x} and re-run without GOLDEN_CAPTURE",
        digests.join(", "),
    );
}

#[test]
fn v1_store_reads_back_to_the_pinned_digests() {
    if std::env::var_os("GOLDEN_CAPTURE").is_some() {
        capture();
    }
    let store = TraceStore::open(fixture_path()).expect("committed fixture store_v1");
    let run_ids = store.run_ids().unwrap();
    assert_eq!(run_ids.len(), GOLDEN_TRACE_DIGESTS.len());
    for (run_id, (seed, digest)) in run_ids.iter().zip(GOLDEN_TRACE_DIGESTS) {
        let manifest = store.manifest(run_id).unwrap();
        assert_eq!(manifest.format_version, 1, "fixture drifted to v2");
        assert_eq!(manifest.seed, seed);
        let traces = store.load_traces(&manifest).unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(
            traces[0].digest(),
            digest,
            "run {run_id}: decoded digest drifted"
        );
        assert_eq!(traces[0], fixture_trace(seed));
    }
}

#[test]
fn v1_store_is_clean_under_fsck() {
    if std::env::var_os("GOLDEN_CAPTURE").is_some() {
        return; // capture runs in the digest test
    }
    let store = TraceStore::open(fixture_path()).unwrap();
    let report = store.fsck(false).unwrap();
    assert!(
        report.is_clean(),
        "a pristine v1 store must not look crash-damaged: {report:?}"
    );
}

/// Merging an index over a v1 store must work (that is the upgrade
/// path) and reproduce the pinned corpus digest. The merge writes into
/// a scratch copy so the committed fixture stays byte-frozen.
#[test]
fn v1_store_merges_to_the_pinned_corpus_digest() {
    if std::env::var_os("GOLDEN_CAPTURE").is_some() {
        return; // capture runs in the digest test
    }
    let scratch = std::env::temp_dir().join(format!("stc-v1-compat-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    copy_tree(&fixture_path(), &scratch);
    let store = TraceStore::open(&scratch).unwrap();
    let index = CorpusIndex::merge(&store).unwrap();
    assert_eq!(index.generation, 1);
    assert_eq!(
        index.corpus_digest(),
        GOLDEN_CORPUS_DIGEST,
        "corpus digest over the v1 fixture drifted"
    );
    std::fs::remove_dir_all(&scratch).ok();
}

fn copy_tree(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}
