//! Property test for multi-writer ingestion: however the seeds are
//! interleaved across writer shards, the merged index must be
//! byte-for-byte identical to the index of a sequential single-writer
//! store holding the same runs. Index entries are location-independent
//! by construction; this test pins that property against arbitrary
//! writer counts and seed→writer assignments.

use proptest::prelude::*;
use sentomist_trace::{Trace, TraceEvent};
use sentomist_tracestore::{CorpusIndex, TraceStore};
use tinyvm::LifecycleItem;

/// A deterministic, protocol-valid trace derived from the seed alone —
/// the same function both stores ingest, so any index difference can
/// only come from topology.
fn trace_for(seed: u64) -> Trace {
    let program_len = 4 + (seed % 5) as usize;
    let n = 1 + (seed % 6) as usize;
    let mut cycle = 0u64;
    let events = (0..n)
        .map(|i| {
            cycle += 7 + (seed.wrapping_mul(0x9e37).wrapping_add(i as u64) % 900);
            let item = if i % 2 == 0 {
                LifecycleItem::Int((seed % 8) as u8)
            } else {
                LifecycleItem::Reti
            };
            TraceEvent { cycle, item }
        })
        .collect();
    let segments = (0..=n)
        .map(|i| {
            (0..program_len)
                .map(|p| (((seed >> (p % 8)) as u32) ^ (i as u32 * 13)) % 97)
                .collect()
        })
        .collect();
    Trace {
        events,
        segments,
        program_len,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_index_is_byte_identical_to_sequential(
        seeds in prop::collection::vec(0u64..10_000, 1..12),
        writers in 1usize..5,
        lanes in prop::collection::vec(0usize..4, 12),
    ) {
        // Distinct seeds: duplicates would overwrite the same run id in
        // both stores and still agree, but they dilute the property.
        let mut seeds: Vec<u64> = seeds;
        seeds.sort_unstable();
        seeds.dedup();

        // Sequential reference: one writer, flat runs/ tree.
        let seq_dir = tempdir("seq");
        let seq = TraceStore::create(&seq_dir).unwrap();
        for &seed in &seeds {
            seq.save_run(seed, "prop", 0xfeed, &[trace_for(seed)]).unwrap();
        }
        let seq_index = CorpusIndex::merge(&seq).unwrap();

        // Sharded: each seed lands in an arbitrary writer's shard.
        let sh_dir = tempdir("sh");
        let sharded = TraceStore::create(&sh_dir).unwrap();
        for (i, &seed) in seeds.iter().enumerate() {
            let lane = lanes[i % lanes.len()] % writers;
            let shard = sharded.shard(&format!("writer-{lane:02}")).unwrap();
            shard.save_run(seed, "prop", 0xfeed, &[trace_for(seed)]).unwrap();
        }
        let sh_index = CorpusIndex::merge(&sharded).unwrap();

        prop_assert_eq!(
            seq_index.content_bytes().unwrap(),
            sh_index.content_bytes().unwrap(),
            "merged index content must not depend on writer topology"
        );
        prop_assert_eq!(seq_index.corpus_digest(), sh_index.corpus_digest());

        // Compacting the shards must not change the corpus either.
        sharded.compact_shards().unwrap();
        let compacted = CorpusIndex::merge(&sharded).unwrap();
        prop_assert_eq!(
            seq_index.content_bytes().unwrap(),
            compacted.content_bytes().unwrap()
        );

        std::fs::remove_dir_all(&seq_dir).ok();
        std::fs::remove_dir_all(&sh_dir).ok();
    }
}

/// Fresh scratch directory under the target-adjacent temp root; proptest
/// shrinking re-enters the test body, so the name folds in a counter.
fn tempdir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("stc-shards-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
