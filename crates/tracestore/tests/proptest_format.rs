//! Property tests for the `.stc` trace format: arbitrary traces must
//! round-trip losslessly, and *no* corruption of a valid file — truncation
//! at any byte, a single flipped bit anywhere — may decode silently or
//! panic. Every such mutation must surface as a typed [`StoreError`].

use proptest::prelude::*;
use sentomist_trace::{Trace, TraceEvent};
use sentomist_tracestore::{read_trace, write_trace, StoreError};
use tinyvm::{LifecycleItem, TaskId};

fn item_strategy() -> impl Strategy<Value = LifecycleItem> {
    prop_oneof![
        (0u8..8).prop_map(LifecycleItem::Int),
        Just(LifecycleItem::Reti),
        (0u16..5).prop_map(|t| LifecycleItem::PostTask(TaskId(t))),
        (0u16..5).prop_map(|t| LifecycleItem::RunTask(TaskId(t))),
        (0u16..5).prop_map(|t| LifecycleItem::TaskEnd(TaskId(t))),
    ]
}

/// A protocol-valid trace (`segments == events + 1`) with monotone cycle
/// stamps, sparse counter segments, and occasional extreme values (zero
/// deltas, huge deltas, `u32::MAX` counters).
fn trace_strategy() -> impl Strategy<Value = Trace> {
    (1usize..24).prop_flat_map(|program_len| {
        let gaps = prop::collection::vec(
            (
                prop_oneof![Just(0u64), 1u64..500, 1_000_000u64..5_000_000_000,],
                item_strategy(),
            ),
            0..20,
        );
        gaps.prop_flat_map(move |gaps| {
            let count = prop_oneof![Just(0u32), 1u32..100, Just(u32::MAX),];
            let segment = prop::collection::vec(count, program_len..=program_len);
            prop::collection::vec(segment, gaps.len() + 1..=gaps.len() + 1).prop_map(
                move |segments| {
                    let mut cycle = 0u64;
                    let events = gaps
                        .iter()
                        .map(|&(gap, item)| {
                            cycle += gap;
                            TraceEvent { cycle, item }
                        })
                        .collect();
                    Trace {
                        events,
                        segments,
                        program_len,
                    }
                },
            )
        })
    })
}

fn encode(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::new();
    write_trace(&mut out, trace).expect("encoding a valid trace");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_traces_round_trip(trace in trace_strategy()) {
        let bytes = encode(&trace);
        let decoded = read_trace(&bytes[..]).expect("decoding what we just wrote");
        prop_assert_eq!(&decoded, &trace);
        prop_assert_eq!(decoded.digest(), trace.digest());
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error(trace in trace_strategy()) {
        let bytes = encode(&trace);
        for cut in 0..bytes.len() {
            match read_trace(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => {
                    return Err(TestCaseError::fail(format!(
                        "prefix of {cut}/{} bytes decoded as a full trace",
                        bytes.len()
                    )));
                }
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_a_typed_error(
        trace in trace_strategy(),
        flips in prop::collection::vec((0usize..1 << 16, 0u8..8), 32..=32),
    ) {
        let bytes = encode(&trace);
        for (pos, bit) in flips {
            let pos = pos % bytes.len();
            let mut mutated = bytes.clone();
            mutated[pos] ^= 1 << bit;
            match read_trace(&mutated[..]) {
                Err(_) => {}
                Ok(decoded) => {
                    // The flip must not pass undetected: a "successful"
                    // decode that still equals the original can only mean
                    // the flip was a no-op, which the codec never allows.
                    return Err(TestCaseError::fail(format!(
                        "bit {bit} of byte {pos}/{} flipped, yet the file \
                         decoded {} events / {} segments without an error",
                        bytes.len(),
                        decoded.events.len(),
                        decoded.segments.len()
                    )));
                }
            }
        }
    }

    #[test]
    fn flipping_any_header_byte_is_rejected(trace in trace_strategy()) {
        let bytes = encode(&trace);
        // The 12 header bytes are the only ones outside a checksummed
        // payload or the chunk framing; exhaust all 96 flips every case.
        for pos in 0..12 {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[pos] ^= 1 << bit;
                prop_assert!(
                    read_trace(&mutated[..]).is_err(),
                    "header byte {} bit {} flipped undetected",
                    pos,
                    bit
                );
            }
        }
    }
}

#[test]
fn known_corruptions_map_to_their_error_variants() {
    let trace = Trace {
        events: vec![TraceEvent {
            cycle: 40,
            item: LifecycleItem::Int(1),
        }],
        segments: vec![vec![3, 0], vec![0, 9]],
        program_len: 2,
    };
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &trace).unwrap();

    let mut magic = bytes.clone();
    magic[1] ^= 0x01;
    assert!(matches!(read_trace(&magic[..]), Err(StoreError::BadMagic)));

    let mut version = bytes.clone();
    version[4] = 0x7F;
    assert!(matches!(
        read_trace(&version[..]),
        Err(StoreError::UnsupportedVersion(0x7F))
    ));

    let mut flags = bytes.clone();
    flags[6] = 0x02;
    assert!(matches!(
        read_trace(&flags[..]),
        Err(StoreError::Corrupt(_))
    ));

    let mut plen = bytes.clone();
    plen[11] = 0x80; // program_len 2 -> 2 + 2^31: implausible
    assert!(matches!(read_trace(&plen[..]), Err(StoreError::Corrupt(_))));

    let mut payload = bytes.clone();
    payload[12 + 5] ^= 0x40; // first byte of the first chunk payload
    assert!(matches!(
        read_trace(&payload[..]),
        Err(StoreError::ChecksumMismatch { chunk: 0 })
    ));

    bytes.truncate(bytes.len() - 1);
    assert!(matches!(
        read_trace(&bytes[..]),
        Err(StoreError::Truncated { .. })
    ));
}
