//! Pins format v1 down to the byte.
//!
//! `fixtures/golden_v1.stc` is a committed artifact: the canonical trace
//! below, encoded once and frozen. The tests assert that today's writer
//! still produces exactly those bytes, that the reader decodes them back
//! to the canonical trace, and that the decoded [`Trace::digest`] matches
//! the pinned value. If any of these fail, the byte layout changed — that
//! is a format break and requires a `FORMAT_VERSION` bump plus a new
//! `golden_v2.stc`, never a silent edit of this file.
//!
//! Regenerate (only alongside a version bump) with:
//!
//! ```text
//! GOLDEN_CAPTURE=1 cargo test -p sentomist-tracestore --test golden_v1
//! ```

use sentomist_trace::{Trace, TraceEvent};
use sentomist_tracestore::{read_trace, write_trace};
use std::path::PathBuf;
use tinyvm::{LifecycleItem, TaskId};

/// FNV-1a/64 of the whole fixture file.
const GOLDEN_FILE_FNV64: u64 = 0x0515_51ea_683e_2bfd;

/// `Trace::digest()` of the decoded fixture.
const GOLDEN_TRACE_DIGEST: u64 = 0x4fb7_7a7c_ac88_f161;

/// Exact size of the fixture file in bytes.
const GOLDEN_FILE_LEN: usize = 100;

/// The canonical golden trace: every event tag, a zero delta, a large
/// delta, sparse segments with leading/trailing zeros and a `u32::MAX`
/// counter — one of everything the v1 codec encodes specially.
fn golden_trace() -> Trace {
    let items = [
        LifecycleItem::Int(2),
        LifecycleItem::PostTask(TaskId(3)),
        LifecycleItem::Reti,
        LifecycleItem::RunTask(TaskId(3)),
        LifecycleItem::Int(0),
        LifecycleItem::Reti,
        LifecycleItem::TaskEnd(TaskId(3)),
    ];
    let cycles = [
        100u64,
        100,
        250,
        260,
        5_000_000_000,
        5_000_000_090,
        5_000_000_091,
    ];
    let events = cycles
        .iter()
        .zip(&items)
        .map(|(&cycle, &item)| TraceEvent { cycle, item })
        .collect();
    let mut segments: Vec<Vec<u32>> = Vec::new();
    for i in 0..8u32 {
        let mut seg = vec![0u32; 16];
        seg[(i as usize * 3) % 16] = i + 1;
        seg[15] = if i == 4 { u32::MAX } else { 0 };
        segments.push(seg);
    }
    segments[0] = vec![0; 16]; // an all-zero segment encodes as just a count
    Trace {
        events,
        segments,
        program_len: 16,
    }
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_v1.stc")
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[test]
fn golden_fixture_is_byte_stable() {
    let trace = golden_trace();
    let mut encoded = Vec::new();
    write_trace(&mut encoded, &trace).unwrap();

    if std::env::var_os("GOLDEN_CAPTURE").is_some() {
        std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
        std::fs::write(fixture_path(), &encoded).unwrap();
        panic!(
            "captured {} bytes; pin GOLDEN_FILE_LEN={}, GOLDEN_FILE_FNV64={:#018x}, \
             GOLDEN_TRACE_DIGEST={:#018x} and re-run without GOLDEN_CAPTURE",
            encoded.len(),
            encoded.len(),
            fnv64(&encoded),
            trace.digest(),
        );
    }

    let fixture = std::fs::read(fixture_path()).expect("committed fixture golden_v1.stc");
    assert_eq!(fixture.len(), GOLDEN_FILE_LEN, "fixture size drifted");
    assert_eq!(fnv64(&fixture), GOLDEN_FILE_FNV64, "fixture bytes drifted");
    assert_eq!(
        encoded, fixture,
        "the writer no longer reproduces format v1 byte-for-byte; \
         this is a format break — bump FORMAT_VERSION"
    );
}

#[test]
fn golden_fixture_decodes_to_the_pinned_trace() {
    let fixture = std::fs::read(fixture_path()).expect("committed fixture golden_v1.stc");
    let decoded = read_trace(&fixture[..]).unwrap();
    assert_eq!(decoded, golden_trace());
    assert_eq!(
        decoded.digest(),
        GOLDEN_TRACE_DIGEST,
        "decoded digest drifted"
    );
}

#[test]
fn golden_header_bytes_are_the_documented_layout() {
    let fixture = std::fs::read(fixture_path()).expect("committed fixture golden_v1.stc");
    assert_eq!(&fixture[..4], b"STRC");
    assert_eq!(u16::from_le_bytes([fixture[4], fixture[5]]), 1); // version
    assert_eq!(u16::from_le_bytes([fixture[6], fixture[7]]), 0); // flags
    let plen = u32::from_le_bytes([fixture[8], fixture[9], fixture[10], fixture[11]]);
    assert_eq!(plen, 16);
}
