//! Instruction counters (paper Definition 4): featurizing event-handling
//! intervals as per-instruction execution-count vectors.
//!
//! The counter of an interval counts **every** instruction executed during
//! the interval's wall-clock span — including instructions run by *other*
//! event-procedure instances that interleaved with it. That spillover is
//! the mechanism by which buggy interleavings become visible: in the
//! paper's motivating example, the `readDone` instructions appear twice in
//! the counter of an interval whose posted send task was delayed past the
//! next ADC interrupt.
//!
//! Counters are computed from the trace's count segments with a prefix-sum
//! table, making each interval query O(program length).

use crate::extract::EventInterval;
use crate::recorder::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A structural defect in a trace or counter query, reported instead of
/// a panic by the `try_*` constructors and queries.
///
/// Traces produced by [`crate::Recorder::into_trace`] always satisfy the
/// invariants, but traces deserialized from disk (the trace store) or
/// assembled by hand may not; the fallible APIs let callers surface
/// those as errors rather than aborting mid-mine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CounterError {
    /// The trace does not have exactly `events + 1` count segments.
    SegmentCount {
        /// Number of lifecycle events in the trace.
        events: usize,
        /// Number of count segments found.
        segments: usize,
    },
    /// A count segment's width differs from the program length.
    SegmentWidth {
        /// Index of the offending segment.
        index: usize,
        /// Expected width (`trace.program_len`).
        expected: usize,
        /// Actual width.
        got: usize,
    },
    /// An interval query with `start > end`.
    IntervalReversed {
        /// Start event index.
        start: usize,
        /// End event index.
        end: usize,
    },
    /// An event index beyond the trace's events.
    EventOutOfRange {
        /// The offending event index.
        index: usize,
        /// Number of prefix rows (segments) available.
        rows: usize,
    },
    /// A caller-provided output row of the wrong width.
    WidthMismatch {
        /// Expected width (the counter dimension).
        expected: usize,
        /// Actual width.
        got: usize,
    },
}

impl fmt::Display for CounterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterError::SegmentCount { events, segments } => write!(
                f,
                "malformed trace: {segments} count segment(s) for {events} event(s) \
                 (want events + 1)"
            ),
            CounterError::SegmentWidth {
                index,
                expected,
                got,
            } => write!(
                f,
                "malformed trace: segment {index} has width {got}, want {expected}"
            ),
            CounterError::IntervalReversed { start, end } => {
                write!(f, "interval reversed: start {start} > end {end}")
            }
            CounterError::EventOutOfRange { index, rows } => {
                write!(f, "event index {index} out of range ({rows} prefix rows)")
            }
            CounterError::WidthMismatch { expected, got } => write!(
                f,
                "output row width mismatch: expected {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for CounterError {}

/// Prefix-sum table over a trace's count segments.
///
/// With segments `s_0 ..= s_k` (where `s_j` holds the counts between
/// events `j-1` and `j`), the counter of an interval spanning events
/// `i ..= j` is `C[j] - C[i]` where `C[m] = s_0 + ... + s_m`.
///
/// The prefix sums live in one flat allocation strided by the program
/// length (`prefix[m * program_len + i]` = cumulative count of
/// instruction `i` through segment `m`): building the table costs a
/// single `O(segments × program_len)` pass with no per-segment clone,
/// and interval queries write straight into caller-provided row storage
/// (e.g. a feature-matrix row) with zero intermediate allocation.
#[derive(Debug, Clone)]
pub struct CounterTable {
    /// Flat strided prefix sums, `segments × program_len` row-major.
    prefix: Vec<u64>,
    program_len: usize,
    rows: usize,
}

impl CounterTable {
    /// Builds the table from a recorded trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace violates the `segments = events + 1` invariant
    /// or a segment width differs from the program length (impossible for
    /// traces produced by [`crate::Recorder::into_trace`]). Use
    /// [`CounterTable::try_new`] to get a typed error instead.
    pub fn new(trace: &Trace) -> CounterTable {
        CounterTable::try_new(trace).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CounterTable::new`]: validates the trace's structural
    /// invariants (`segments = events + 1`, every segment as wide as the
    /// program) before building.
    pub fn try_new(trace: &Trace) -> Result<CounterTable, CounterError> {
        if trace.segments.len() != trace.events.len() + 1 {
            return Err(CounterError::SegmentCount {
                events: trace.events.len(),
                segments: trace.segments.len(),
            });
        }
        let n = trace.program_len;
        for (index, seg) in trace.segments.iter().enumerate() {
            if seg.len() != n {
                return Err(CounterError::SegmentWidth {
                    index,
                    expected: n,
                    got: seg.len(),
                });
            }
        }
        let mut prefix = vec![0u64; trace.segments.len() * n];
        for (m, seg) in trace.segments.iter().enumerate() {
            let (done, rest) = prefix.split_at_mut(m * n);
            let row = &mut rest[..n];
            if m > 0 {
                row.copy_from_slice(&done[(m - 1) * n..]);
            }
            for (a, &c) in row.iter_mut().zip(seg.iter()) {
                *a += u64::from(c);
            }
        }
        Ok(CounterTable {
            prefix,
            program_len: n,
            rows: trace.segments.len(),
        })
    }

    /// Dimensionality of counters (the program's instruction count).
    pub fn dimension(&self) -> usize {
        self.program_len
    }

    #[inline]
    fn prefix_row(&self, m: usize) -> &[u64] {
        &self.prefix[m * self.program_len..(m + 1) * self.program_len]
    }

    /// Validates an interval query against the table.
    fn check_query(&self, start: usize, end: usize, width: usize) -> Result<(), CounterError> {
        if start > end {
            return Err(CounterError::IntervalReversed { start, end });
        }
        if end >= self.rows {
            return Err(CounterError::EventOutOfRange {
                index: end,
                rows: self.rows,
            });
        }
        if width != self.program_len {
            return Err(CounterError::WidthMismatch {
                expected: self.program_len,
                got: width,
            });
        }
        Ok(())
    }

    /// The instruction counter of `interval`.
    ///
    /// # Panics
    ///
    /// Panics if the interval's indices lie outside the trace; see
    /// [`CounterTable::try_counter`].
    pub fn counter(&self, interval: &EventInterval) -> Vec<u64> {
        self.counter_between(interval.start_index, interval.end_index)
    }

    /// Fallible [`CounterTable::counter`].
    pub fn try_counter(&self, interval: &EventInterval) -> Result<Vec<u64>, CounterError> {
        self.try_counter_between(interval.start_index, interval.end_index)
    }

    /// Counts of instructions executed between events `start` and `end`
    /// (exclusive of instructions before `start`'s event, inclusive of the
    /// segment ending at `end`).
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or `end` is out of range; see
    /// [`CounterTable::try_counter_between`].
    pub fn counter_between(&self, start: usize, end: usize) -> Vec<u64> {
        self.try_counter_between(start, end)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CounterTable::counter_between`].
    pub fn try_counter_between(&self, start: usize, end: usize) -> Result<Vec<u64>, CounterError> {
        let mut out = vec![0u64; self.program_len];
        self.try_counter_into(start, end, &mut out)?;
        Ok(out)
    }

    /// Writes the counter of events `start ..= end` into `out` — the
    /// allocation-free O(program_len) interval query.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`, `end` is out of range, or
    /// `out.len() != dimension()`; see [`CounterTable::try_counter_into`].
    pub fn counter_into(&self, start: usize, end: usize, out: &mut [u64]) {
        self.try_counter_into(start, end, out)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`CounterTable::counter_into`].
    pub fn try_counter_into(
        &self,
        start: usize,
        end: usize,
        out: &mut [u64],
    ) -> Result<(), CounterError> {
        self.check_query(start, end, out.len())?;
        let hi = self.prefix_row(end);
        let lo = self.prefix_row(start);
        for ((o, &h), &l) in out.iter_mut().zip(hi).zip(lo) {
            *o = h - l;
        }
        Ok(())
    }

    /// The counter as `f64` features (what the outlier detectors consume).
    ///
    /// # Panics
    ///
    /// Panics if the interval's indices lie outside the trace; see
    /// [`CounterTable::try_features`].
    pub fn features(&self, interval: &EventInterval) -> Vec<f64> {
        self.try_features(interval)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CounterTable::features`].
    pub fn try_features(&self, interval: &EventInterval) -> Result<Vec<f64>, CounterError> {
        let mut out = vec![0.0f64; self.program_len];
        self.try_features_into(interval, &mut out)?;
        Ok(out)
    }

    /// Writes the interval's features straight into a caller-provided row
    /// slice (e.g. a dense feature-matrix row), with no intermediate
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the interval's indices lie outside the trace or
    /// `row.len() != dimension()`; see [`CounterTable::try_features_into`].
    pub fn features_into(&self, interval: &EventInterval, row: &mut [f64]) {
        self.try_features_into(interval, row)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`CounterTable::features_into`].
    pub fn try_features_into(
        &self,
        interval: &EventInterval,
        row: &mut [f64],
    ) -> Result<(), CounterError> {
        let (start, end) = (interval.start_index, interval.end_index);
        self.check_query(start, end, row.len())?;
        let hi = self.prefix_row(end);
        let lo = self.prefix_row(start);
        for ((o, &h), &l) in row.iter_mut().zip(hi).zip(lo) {
            *o = (h - l) as f64;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceEvent;
    use tinyvm::{LifecycleItem, TaskId};

    fn mk_trace(segments: Vec<Vec<u32>>) -> Trace {
        let n_events = segments.len() - 1;
        let events = (0..n_events)
            .map(|i| TraceEvent {
                cycle: i as u64,
                item: if i % 2 == 0 {
                    LifecycleItem::Int(0)
                } else {
                    LifecycleItem::Reti
                },
            })
            .collect();
        let program_len = segments[0].len();
        Trace {
            events,
            segments,
            program_len,
        }
    }

    #[test]
    fn interval_counts_sum_inner_segments() {
        // Events 0..=3; segments s0..s4.
        let t = mk_trace(vec![
            vec![1, 0],
            vec![0, 2],
            vec![3, 0],
            vec![0, 4],
            vec![5, 5],
        ]);
        let tab = CounterTable::new(&t);
        // Interval spanning events 0..=3 sums segments 1..=3.
        assert_eq!(tab.counter_between(0, 3), vec![3, 6]);
        // Single-event interval (start == end) is empty.
        assert_eq!(tab.counter_between(2, 2), vec![0, 0]);
        // Adjacent events: just the one segment between them.
        assert_eq!(tab.counter_between(1, 2), vec![3, 0]);
    }

    #[test]
    fn counter_uses_interval_indices() {
        let t = mk_trace(vec![vec![0], vec![7], vec![0]]);
        let tab = CounterTable::new(&t);
        let iv = EventInterval {
            irq: 0,
            start_index: 0,
            end_index: 1,
            last_run_index: None,
            start_cycle: 0,
            end_cycle: 1,
            task_count: 0,
        };
        assert_eq!(tab.counter(&iv), vec![7]);
        assert_eq!(tab.features(&iv), vec![7.0]);
    }

    #[test]
    fn overlapping_intervals_share_counts() {
        // Two overlapping intervals both see the shared segment — this is
        // the "capture the overlap" property the paper relies on.
        let t = Trace {
            events: vec![
                TraceEvent {
                    cycle: 0,
                    item: LifecycleItem::Int(0),
                },
                TraceEvent {
                    cycle: 1,
                    item: LifecycleItem::PostTask(TaskId(0)),
                },
                TraceEvent {
                    cycle: 2,
                    item: LifecycleItem::Reti,
                },
                TraceEvent {
                    cycle: 3,
                    item: LifecycleItem::Int(0),
                },
                TraceEvent {
                    cycle: 4,
                    item: LifecycleItem::Reti,
                },
                TraceEvent {
                    cycle: 5,
                    item: LifecycleItem::RunTask(TaskId(0)),
                },
                TraceEvent {
                    cycle: 6,
                    item: LifecycleItem::TaskEnd(TaskId(0)),
                },
            ],
            segments: vec![
                vec![0],
                vec![1],
                vec![1],
                vec![0],
                vec![9], // the nested handler's body
                vec![0],
                vec![4],
                vec![0],
            ],
            program_len: 1,
        };
        let tab = CounterTable::new(&t);
        // Outer instance: events 0..=6.
        assert_eq!(tab.counter_between(0, 6), vec![15]);
        // Nested instance: events 3..=4; its 9 instructions are also part
        // of the outer interval's counter.
        assert_eq!(tab.counter_between(3, 4), vec![9]);
    }

    #[test]
    #[should_panic(expected = "interval reversed")]
    fn reversed_interval_panics() {
        let t = mk_trace(vec![vec![0], vec![0], vec![0]]);
        CounterTable::new(&t).counter_between(1, 0);
    }

    #[test]
    fn dimension_matches_program() {
        let t = mk_trace(vec![vec![0, 0, 0], vec![1, 2, 3]]);
        assert_eq!(CounterTable::new(&t).dimension(), 3);
    }

    #[test]
    fn counter_into_matches_allocating_query() {
        let t = mk_trace(vec![
            vec![1, 0],
            vec![0, 2],
            vec![3, 0],
            vec![0, 4],
            vec![5, 5],
        ]);
        let tab = CounterTable::new(&t);
        let mut row = vec![0u64; 2];
        tab.counter_into(0, 3, &mut row);
        assert_eq!(row, tab.counter_between(0, 3));
        assert_eq!(row, vec![3, 6]);
    }

    #[test]
    fn features_into_writes_caller_row() {
        let t = mk_trace(vec![vec![0], vec![7], vec![0]]);
        let tab = CounterTable::new(&t);
        let iv = EventInterval {
            irq: 0,
            start_index: 0,
            end_index: 1,
            last_run_index: None,
            start_cycle: 0,
            end_cycle: 1,
            task_count: 0,
        };
        let mut row = [0.0f64; 1];
        tab.features_into(&iv, &mut row);
        assert_eq!(row, [7.0]);
        assert_eq!(tab.features(&iv), vec![7.0]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_row_panics() {
        let t = mk_trace(vec![vec![0, 0], vec![1, 1]]);
        let mut row = vec![0u64; 3];
        CounterTable::new(&t).counter_into(0, 1, &mut row);
    }

    #[test]
    fn try_new_rejects_malformed_traces() {
        // Segment count off by one.
        let mut t = mk_trace(vec![vec![0], vec![1], vec![2]]);
        t.segments.pop();
        assert_eq!(
            CounterTable::try_new(&t).unwrap_err(),
            CounterError::SegmentCount {
                events: 2,
                segments: 2
            }
        );
        // Ragged segment (previously silently truncated by the zip).
        let mut t = mk_trace(vec![vec![0, 0], vec![1, 1]]);
        t.segments[1] = vec![1];
        assert_eq!(
            CounterTable::try_new(&t).unwrap_err(),
            CounterError::SegmentWidth {
                index: 1,
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn try_queries_return_typed_errors() {
        let t = mk_trace(vec![vec![0], vec![7], vec![0]]);
        let tab = CounterTable::try_new(&t).unwrap();
        assert_eq!(
            tab.try_counter_between(2, 1),
            Err(CounterError::IntervalReversed { start: 2, end: 1 })
        );
        assert_eq!(
            tab.try_counter_between(0, 9),
            Err(CounterError::EventOutOfRange { index: 9, rows: 3 })
        );
        let mut row = vec![0u64; 2];
        assert_eq!(
            tab.try_counter_into(0, 1, &mut row),
            Err(CounterError::WidthMismatch {
                expected: 1,
                got: 2
            })
        );
        assert_eq!(tab.try_counter_between(0, 1), Ok(vec![7]));
        assert_eq!(
            tab.try_features(&EventInterval {
                irq: 0,
                start_index: 0,
                end_index: 1,
                last_run_index: None,
                start_cycle: 0,
                end_cycle: 1,
                task_count: 0,
            }),
            Ok(vec![7.0])
        );
        // Errors render with the historical panic-message prefixes.
        assert!(CounterError::IntervalReversed { start: 2, end: 1 }
            .to_string()
            .contains("interval reversed"));
        assert!(CounterError::SegmentCount {
            events: 2,
            segments: 2
        }
        .to_string()
        .contains("malformed trace"));
    }

    impl CounterTable {
        fn eq_for_tests(&self, other: &CounterTable) -> bool {
            self.prefix == other.prefix && self.program_len == other.program_len
        }
    }

    #[test]
    fn new_and_try_new_agree() {
        let t = mk_trace(vec![vec![1, 0], vec![0, 2], vec![3, 0]]);
        assert!(CounterTable::new(&t).eq_for_tests(&CounterTable::try_new(&t).unwrap()));
    }
}
