//! # sentomist-trace — lifecycle anatomization for Sentomist
//!
//! This crate implements Section V-A/V-B of ["Sentomist: Unveiling
//! Transient Sensor Network Bugs via Symptom
//! Mining"](https://doi.org/10.1109/ICDCS.2010.75): turning the raw system
//! lifecycle sequence of an event-driven WSN node into *event-handling
//! intervals*, each featurized as an *instruction counter*.
//!
//! * [`Recorder`] captures a node's lifecycle stream and instruction-count
//!   segments (the Avrora-monitor role);
//! * [`grammar`] recognizes *int-reti strings* with a pushdown automaton
//!   (paper Definition 3);
//! * [`extract()`](extract::extract) runs the Figure-4 breadth-first algorithm over Criteria
//!   1–3 to delimit each event-procedure instance;
//! * [`CounterTable`] produces Definition-4 instruction counters per
//!   interval in O(program length) per query;
//! * [`OnlineExtractor`] tracks instances *incrementally* for
//!   memory-bounded live monitoring, emitting intervals as they complete
//!   (equivalent to the batch algorithm; cross-validated in tests).
//!
//! The extraction consumes only the lifecycle sequence — the VM's
//! ground-truth instance bookkeeping is used exclusively by tests that
//! validate the inference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod extract;
pub mod grammar;
pub mod online;
pub mod profile;
pub mod recorder;

pub use counter::{CounterError, CounterTable};
pub use extract::{extract, EventInterval, ExtractError, Extraction, TaskMatching};
pub use grammar::{matching_reti, GrammarError, PushdownRecognizer};
pub use online::{extract_online, OnlineExtractor};
pub use profile::{Profile, RoutineProfile};
pub use recorder::{ProtocolViolation, Recorder, Trace, TraceEvent};
