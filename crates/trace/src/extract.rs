//! Event-handling-interval extraction — the algorithm of the paper's
//! Figure 4, built on Criteria 1–3.
//!
//! * **Criterion 1**: the task posted via the *i*-th `postTask` is executed
//!   via the *i*-th `runTask` (the OS queue is FIFO).
//! * **Criterion 2**: within an int-reti string, all items outside nested
//!   int-reti substrings are `postTask`s of the string's own handler.
//! * **Criterion 3**: all depth-0 `postTask`s between two consecutive
//!   `runTask`s are posted by the task started at the first `runTask`.
//!
//! The extraction is a breadth-first search over the tasks each instance
//! transitively posts; it consumes only the lifecycle sequence — never the
//! VM's ground-truth ownership — exactly as Sentomist must when observing
//! a real system. `TaskEnd` items (a tracing extension absent from the
//! paper's 4-item alphabet) are used solely to close the wall-clock span of
//! an interval after the paper's algorithm has located its final `runTask`.

use crate::grammar::{self, GrammarError};
use crate::recorder::Trace;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use tinyvm::LifecycleItem;

/// One extracted event-handling interval (paper Definition 2): the lifetime
/// of an event-procedure instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventInterval {
    /// IRQ line of the instance's handler — the *event type*.
    pub irq: u8,
    /// Index of the opening `Int` event.
    pub start_index: usize,
    /// Index of the closing event: the handler's `reti` for task-less
    /// instances, else the `TaskEnd` of the instance's last task.
    pub end_index: usize,
    /// The paper's `loc` output — the final `runTask` index — when the
    /// instance posted tasks.
    pub last_run_index: Option<usize>,
    /// Cycle of the opening `Int`.
    pub start_cycle: u64,
    /// Cycle of the closing event.
    pub end_cycle: u64,
    /// Tasks transitively posted by the instance.
    pub task_count: u32,
}

/// Result of extracting every instance from a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extraction {
    /// Complete intervals, in `Int`-occurrence order.
    pub intervals: Vec<EventInterval>,
    /// Instances whose lifetime ran past the end of the trace (their
    /// handler or a posted task never finished within the recording).
    pub incomplete: usize,
}

impl Extraction {
    /// Intervals whose handler serviced `irq`, preserving order — the
    /// per-event-type sample groups Sentomist mines.
    pub fn for_irq(&self, irq: u8) -> Vec<EventInterval> {
        self.intervals
            .iter()
            .copied()
            .filter(|iv| iv.irq == irq)
            .collect()
    }
}

/// An ill-formed lifecycle sequence (impossible under the concurrency
/// model; indicates a corrupted trace or a non-FIFO scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtractError {
    /// The int-reti recognizer rejected the sequence.
    Grammar(GrammarError),
    /// Criterion 1 violated: ordinal-matched post and run carried
    /// different task ids.
    FifoViolation {
        /// Index of the `postTask` event.
        post_index: usize,
        /// Index of the ordinal-matched `runTask` event.
        run_index: usize,
    },
    /// The trace's count segments are structurally broken (wrong segment
    /// count or ragged widths), detected while featurizing intervals.
    Malformed(crate::counter::CounterError),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Grammar(g) => write!(f, "ill-formed lifecycle sequence: {g}"),
            ExtractError::FifoViolation {
                post_index,
                run_index,
            } => write!(
                f,
                "FIFO violation: post at {post_index} does not match run at {run_index}"
            ),
            ExtractError::Malformed(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ExtractError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExtractError::Grammar(g) => Some(g),
            ExtractError::FifoViolation { .. } => None,
            ExtractError::Malformed(e) => Some(e),
        }
    }
}

impl From<crate::counter::CounterError> for ExtractError {
    fn from(e: crate::counter::CounterError) -> Self {
        ExtractError::Malformed(e)
    }
}

impl From<GrammarError> for ExtractError {
    fn from(g: GrammarError) -> Self {
        ExtractError::Grammar(g)
    }
}

/// Precomputed Criterion-1 matching: the ordinal pairing of `postTask` and
/// `runTask` events.
#[derive(Debug, Clone, Default)]
pub struct TaskMatching {
    /// For each `postTask` event index, the matching `runTask` index (or
    /// `None` if the run lies beyond the end of the trace).
    run_of_post: std::collections::HashMap<usize, Option<usize>>,
}

impl TaskMatching {
    /// Builds the matching from a lifecycle item sequence.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractError::FifoViolation`] if an ordinal pair disagrees
    /// on the task id.
    pub fn build(items: &[LifecycleItem]) -> Result<TaskMatching, ExtractError> {
        let mut posts = Vec::new();
        let mut runs = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match item {
                LifecycleItem::PostTask(t) => posts.push((i, *t)),
                LifecycleItem::RunTask(t) => runs.push((i, *t)),
                _ => {}
            }
        }
        let mut run_of_post = std::collections::HashMap::with_capacity(posts.len());
        for (ordinal, &(post_index, post_task)) in posts.iter().enumerate() {
            match runs.get(ordinal) {
                Some(&(run_index, run_task)) => {
                    if post_task != run_task {
                        return Err(ExtractError::FifoViolation {
                            post_index,
                            run_index,
                        });
                    }
                    run_of_post.insert(post_index, Some(run_index));
                }
                None => {
                    run_of_post.insert(post_index, None);
                }
            }
        }
        Ok(TaskMatching { run_of_post })
    }

    /// The `runTask` index matching the `postTask` at `post_index`.
    /// `None` means the run falls beyond the trace; absent entries mean
    /// `post_index` is not a `postTask`.
    pub fn run_of(&self, post_index: usize) -> Option<Option<usize>> {
        self.run_of_post.get(&post_index).copied()
    }
}

/// Collects depth-0 `postTask` indices between `run_index` and the next
/// `runTask` (Criterion 3). Returns the posts and whether the scan reached
/// a terminating boundary (`runTask` or, for the very last task, any index;
/// the task-end index is returned separately when present).
fn posts_of_run(items: &[LifecycleItem], run_index: usize) -> Vec<usize> {
    let mut depth = 0usize;
    let mut posts = Vec::new();
    for (i, item) in items.iter().enumerate().skip(run_index + 1) {
        match item {
            LifecycleItem::Int(_) => depth += 1,
            LifecycleItem::Reti => depth = depth.saturating_sub(1),
            LifecycleItem::PostTask(_) if depth == 0 => posts.push(i),
            LifecycleItem::RunTask(_) => break,
            _ => {}
        }
    }
    posts
}

/// Finds the `TaskEnd` of the task started at `run_index`: the first
/// depth-0 `TaskEnd` before the next `runTask`. `None` if the trace was
/// truncated before the task finished.
fn task_end_of_run(items: &[LifecycleItem], run_index: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, item) in items.iter().enumerate().skip(run_index + 1) {
        match item {
            LifecycleItem::Int(_) => depth += 1,
            LifecycleItem::Reti => depth = depth.saturating_sub(1),
            LifecycleItem::TaskEnd(_) if depth == 0 => return Some(i),
            LifecycleItem::RunTask(_) => return None,
            _ => {}
        }
    }
    None
}

/// Outcome of tracing one instance.
enum InstanceOutcome {
    Complete {
        end_index: usize,
        last_run_index: Option<usize>,
        task_count: u32,
    },
    /// The instance's lifetime extends past the recorded trace.
    Truncated,
}

/// Figure-4 BFS for the instance whose `Int` sits at `start`.
fn trace_instance(
    items: &[LifecycleItem],
    matching: &TaskMatching,
    start: usize,
) -> Result<InstanceOutcome, ExtractError> {
    // S <- the int-reti string; loc <- index of its last reti.
    let reti_index = match grammar::matching_reti(items, start) {
        Ok(i) => i,
        Err(GrammarError::Unterminated { .. }) => return Ok(InstanceOutcome::Truncated),
        Err(e) => return Err(e.into()),
    };
    // P <- postTask items of S minus nested int-reti substrings.
    let mut pending = grammar::direct_posts(items, start)?;
    let mut task_count = 0u32;
    let mut last_run: Option<usize> = None;

    // Breadth-first over transitively posted tasks.
    while !pending.is_empty() {
        let mut next = Vec::new();
        for post_index in pending {
            task_count += 1;
            let run_index = match matching.run_of(post_index) {
                Some(Some(r)) => r,
                Some(None) => return Ok(InstanceOutcome::Truncated),
                None => unreachable!("pending indices are postTask items"),
            };
            last_run = Some(run_index);
            next.extend(posts_of_run(items, run_index));
        }
        pending = next;
    }

    let end_index = match last_run {
        Some(run_index) => match task_end_of_run(items, run_index) {
            Some(end) => end,
            None => return Ok(InstanceOutcome::Truncated),
        },
        None => reti_index,
    };
    Ok(InstanceOutcome::Complete {
        end_index,
        last_run_index: last_run,
        task_count,
    })
}

/// Extracts every event-handling interval from `trace`.
///
/// Every `Int` event — including those of handlers that preempted other
/// handlers — starts an instance; instances still open when the trace ends
/// are counted in [`Extraction::incomplete`].
///
/// # Errors
///
/// Returns [`ExtractError`] only for ill-formed sequences that the
/// concurrency model cannot produce.
///
/// # Examples
///
/// ```
/// # use std::sync::Arc;
/// # use tinyvm::{asm, devices::NodeConfig, node::Node};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let program = Arc::new(asm::assemble("\
/// # .handler TIMER0 h
/// # main:
/// #  ldi r1, 4
/// #  out TIMER0_PERIOD, r1
/// #  ldi r1, 1
/// #  out TIMER0_CTRL, r1
/// #  ret
/// # h:
/// #  reti
/// # ")?);
/// let mut node = Node::new(program.clone(), NodeConfig::default());
/// let mut recorder = sentomist_trace::Recorder::new(program.len());
/// node.run(100_000, &mut recorder)?;
/// let trace = recorder.into_trace();
/// let extraction = sentomist_trace::extract(&trace)?;
/// assert!(extraction.intervals.len() > 50);
/// # Ok(())
/// # }
/// ```
pub fn extract(trace: &Trace) -> Result<Extraction, ExtractError> {
    let items: Vec<LifecycleItem> = trace.events.iter().map(|e| e.item).collect();
    let matching = TaskMatching::build(&items)?;
    let mut intervals = Vec::new();
    let mut incomplete = 0usize;
    for start in trace.int_indices() {
        let irq = match items[start] {
            LifecycleItem::Int(n) => n,
            _ => unreachable!("int_indices yields Int items"),
        };
        match trace_instance(&items, &matching, start)? {
            InstanceOutcome::Complete {
                end_index,
                last_run_index,
                task_count,
            } => intervals.push(EventInterval {
                irq,
                start_index: start,
                end_index,
                last_run_index,
                start_cycle: trace.events[start].cycle,
                end_cycle: trace.events[end_index].cycle,
                task_count,
            }),
            InstanceOutcome::Truncated => incomplete += 1,
        }
    }
    Ok(Extraction {
        intervals,
        incomplete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceEvent;
    use tinyvm::TaskId;

    fn int(n: u8) -> LifecycleItem {
        LifecycleItem::Int(n)
    }
    fn reti() -> LifecycleItem {
        LifecycleItem::Reti
    }
    fn post(t: u16) -> LifecycleItem {
        LifecycleItem::PostTask(TaskId(t))
    }
    fn run(t: u16) -> LifecycleItem {
        LifecycleItem::RunTask(TaskId(t))
    }
    fn end(t: u16) -> LifecycleItem {
        LifecycleItem::TaskEnd(TaskId(t))
    }

    fn trace_of(items: &[LifecycleItem]) -> Trace {
        Trace {
            events: items
                .iter()
                .enumerate()
                .map(|(i, &item)| TraceEvent {
                    cycle: i as u64 * 10,
                    item,
                })
                .collect(),
            segments: vec![vec![]; items.len() + 1],
            program_len: 0,
        }
    }

    #[test]
    fn handler_only_instance() {
        let t = trace_of(&[int(2), reti()]);
        let x = extract(&t).unwrap();
        assert_eq!(x.intervals.len(), 1);
        let iv = x.intervals[0];
        assert_eq!(iv.irq, 2);
        assert_eq!((iv.start_index, iv.end_index), (0, 1));
        assert_eq!(iv.task_count, 0);
        assert_eq!(iv.last_run_index, None);
    }

    #[test]
    fn single_task_instance() {
        let t = trace_of(&[int(0), post(5), reti(), run(5), end(5)]);
        let x = extract(&t).unwrap();
        let iv = x.intervals[0];
        assert_eq!(iv.end_index, 4);
        assert_eq!(iv.last_run_index, Some(3));
        assert_eq!(iv.task_count, 1);
    }

    #[test]
    fn figure_1_scenario() {
        // The paper's Figure 1: handler posts A and B; A posts C; B is
        // preempted by another handler; C is the last task.
        // t0..t11 mapped to items:
        let items = [
            int(0),   // 0  t0 handler starts
            post(10), // 1  t1 post A
            post(11), // 2  t2 post B
            reti(),   // 3  t3 handler ends
            run(10),  // 4  t4 A starts
            post(12), // 5  t5 A posts C
            end(10),  // 6  t6 A ends
            run(11),  // 7     B starts
            int(1),   // 8  t7 another handler preempts B
            reti(),   // 9  t8 it exits
            end(11),  // 10 t9 B ends
            run(12),  // 11 t10 C starts
            end(12),  // 12 t11 C ends
        ];
        let t = trace_of(&items);
        let x = extract(&t).unwrap();
        assert_eq!(x.intervals.len(), 2);
        let main = x.intervals[0];
        assert_eq!(main.irq, 0);
        assert_eq!(main.start_index, 0);
        assert_eq!(main.last_run_index, Some(11), "loc = C's runTask");
        assert_eq!(main.end_index, 12, "interval ends at C's completion (t11)");
        assert_eq!(main.task_count, 3);
        // The preempting handler is its own (task-less) instance.
        let nested = x.intervals[1];
        assert_eq!(nested.irq, 1);
        assert_eq!((nested.start_index, nested.end_index), (8, 9));
    }

    #[test]
    fn motivating_example_outlier_pattern() {
        // Paper section V: the buggy pattern "ADC int, post, reti, ADC int,
        // reti, run" — the second int lands inside the first instance's
        // interval.
        let items = [int(2), post(0), reti(), int(2), reti(), run(0), end(0)];
        let t = trace_of(&items);
        let x = extract(&t).unwrap();
        assert_eq!(x.intervals.len(), 2);
        let first = x.intervals[0];
        let second = x.intervals[1];
        // The second instance lies inside the first one's interval: overlap.
        assert!(second.start_index > first.start_index);
        assert!(second.end_index < first.end_index);
    }

    #[test]
    fn interleaved_posts_from_two_instances() {
        // Two handler instances interleave task posting; FIFO matching must
        // pair them correctly.
        let items = [
            int(0),
            post(1),
            reti(),
            int(1),
            post(2),
            reti(),
            run(1),
            end(1),
            run(2),
            end(2),
        ];
        let t = trace_of(&items);
        let x = extract(&t).unwrap();
        assert_eq!(x.intervals[0].end_index, 7);
        assert_eq!(x.intervals[1].end_index, 9);
    }

    #[test]
    fn task_posting_task_chain() {
        // A task posts a task which posts a task.
        let items = [
            int(0),
            post(1),
            reti(),
            run(1),
            post(2),
            end(1),
            run(2),
            post(3),
            end(2),
            run(3),
            end(3),
        ];
        let t = trace_of(&items);
        let x = extract(&t).unwrap();
        let iv = x.intervals[0];
        assert_eq!(iv.task_count, 3);
        assert_eq!(iv.end_index, 10);
    }

    #[test]
    fn posts_inside_nested_handler_belong_to_nested_instance() {
        // While task 1 runs, a handler fires and posts task 2: task 2
        // belongs to the *nested* instance, not the outer one.
        let items = [
            int(0),
            post(1),
            reti(),
            run(1),
            int(1),
            post(2),
            reti(),
            end(1),
            run(2),
            end(2),
        ];
        let t = trace_of(&items);
        let x = extract(&t).unwrap();
        let outer = x.intervals[0];
        let nested = x.intervals[1];
        assert_eq!(outer.task_count, 1);
        assert_eq!(outer.end_index, 7);
        assert_eq!(nested.task_count, 1);
        assert_eq!(nested.end_index, 9);
    }

    #[test]
    fn truncated_instances_counted_incomplete() {
        // Post never runs: trace ends.
        let t = trace_of(&[int(0), post(1), reti()]);
        let x = extract(&t).unwrap();
        assert_eq!(x.intervals.len(), 0);
        assert_eq!(x.incomplete, 1);

        // Handler never exits.
        let t = trace_of(&[int(0), post(1)]);
        let x = extract(&t).unwrap();
        assert_eq!(x.incomplete, 1);

        // Task runs but never ends.
        let t = trace_of(&[int(0), post(1), reti(), run(1)]);
        let x = extract(&t).unwrap();
        assert_eq!(x.incomplete, 1);
    }

    #[test]
    fn fifo_violation_detected() {
        let t = trace_of(&[int(0), post(1), post(2), reti(), run(2), end(2)]);
        let e = extract(&t).unwrap_err();
        assert!(matches!(e, ExtractError::FifoViolation { .. }));
    }

    #[test]
    fn for_irq_filters_groups() {
        let items = [int(0), reti(), int(2), reti(), int(0), reti()];
        let t = trace_of(&items);
        let x = extract(&t).unwrap();
        assert_eq!(x.for_irq(0).len(), 2);
        assert_eq!(x.for_irq(2).len(), 1);
        assert_eq!(x.for_irq(4).len(), 0);
    }

    #[test]
    fn boot_posts_do_not_create_intervals_but_shift_matching() {
        // main posts a boot task before any interrupt; ordinal matching
        // must still pair handler posts correctly.
        let items = [
            post(9),
            run(9),
            end(9),
            int(0),
            post(1),
            reti(),
            run(1),
            end(1),
        ];
        let t = trace_of(&items);
        let x = extract(&t).unwrap();
        assert_eq!(x.intervals.len(), 1);
        assert_eq!(x.intervals[0].end_index, 7);
    }

    #[test]
    fn empty_trace_extracts_nothing() {
        let t = trace_of(&[]);
        let x = extract(&t).unwrap();
        assert!(x.intervals.is_empty());
        assert_eq!(x.incomplete, 0);
    }
}
