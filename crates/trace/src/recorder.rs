//! Trace recording: capturing the lifecycle stream and count segments.

use serde::{Deserialize, Serialize};
use tinyvm::{LifecycleItem, TraceSink};

/// One recorded lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Node-local cycle at which the item occurred.
    pub cycle: u64,
    /// The lifecycle item.
    pub item: LifecycleItem,
}

/// A complete recorded trace of one node's run: the system lifecycle
/// sequence plus the instruction-count segments between its events.
///
/// Invariant: `segments.len() == events.len() + 1`; segment `k` holds the
/// per-instruction execution counts between events `k-1` and `k` (segment 0
/// precedes the first event; the last segment follows the final event).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The lifecycle sequence, in occurrence order.
    pub events: Vec<TraceEvent>,
    /// Count segments; see the type-level invariant.
    pub segments: Vec<Vec<u32>>,
    /// Program length (dimension of every segment).
    pub program_len: usize,
}

impl Trace {
    /// Indices of all `Int(_)` events — each starts an event-procedure
    /// instance.
    pub fn int_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.item, LifecycleItem::Int(_)))
            .map(|(i, _)| i)
    }

    /// Total instructions retired in the trace.
    pub fn total_instructions(&self) -> u64 {
        self.segments
            .iter()
            .flat_map(|s| s.iter())
            .map(|&c| u64::from(c))
            .sum()
    }

    /// The item at `index`, if in range.
    pub fn item(&self, index: usize) -> Option<LifecycleItem> {
        self.events.get(index).map(|e| e.item)
    }

    /// A 64-bit FNV-1a digest of the full trace content (lifecycle
    /// sequence, count segments and program length).
    ///
    /// Two traces have equal digests iff they are byte-for-byte the same
    /// recording (modulo hash collisions), which makes the digest a cheap
    /// replay-verification token: a campaign stores it per run, and a
    /// replayed run must reproduce it exactly.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        #[inline]
        fn mix(h: u64, word: u64) -> u64 {
            (h ^ word).wrapping_mul(PRIME)
        }
        let mut h = mix(OFFSET, self.program_len as u64);
        for e in &self.events {
            h = mix(h, e.cycle);
            // Tag + payload uniquely encode the item.
            let coded = match e.item {
                LifecycleItem::Int(n) => 0x1_0000 | u64::from(n),
                LifecycleItem::Reti => 0x2_0000,
                LifecycleItem::PostTask(t) => 0x3_0000 | u64::from(t.0),
                LifecycleItem::RunTask(t) => 0x4_0000 | u64::from(t.0),
                LifecycleItem::TaskEnd(t) => 0x5_0000 | u64::from(t.0),
            };
            h = mix(h, coded);
        }
        for seg in &self.segments {
            h = mix(h, seg.len() as u64);
            for &c in seg {
                h = mix(h, u64::from(c));
            }
        }
        h
    }
}

/// The sink protocol was violated: a finished trace must carry exactly one
/// more segment than it has events (see [`Trace`]'s invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// Lifecycle events recorded.
    pub events: usize,
    /// Count segments recorded.
    pub segments: usize,
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace protocol violation: {} events with {} segments (want events + 1)",
            self.events, self.segments
        )
    }
}

impl std::error::Error for ProtocolViolation {}

/// A [`TraceSink`] that records the full trace in memory.
///
/// # Examples
///
/// ```
/// # use std::sync::Arc;
/// # use tinyvm::{asm, devices::NodeConfig, node::Node};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Arc::new(asm::assemble("main:\n ret\n")?);
/// let mut node = Node::new(program, NodeConfig::default());
/// let mut recorder = sentomist_trace::Recorder::new(node.program().len());
/// node.run(1_000, &mut recorder)?;
/// let trace = recorder.into_trace();
/// assert_eq!(trace.segments.len(), trace.events.len() + 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    events: Vec<TraceEvent>,
    segments: Vec<Vec<u32>>,
    program_len: usize,
}

impl Recorder {
    /// Creates a recorder for a program of `program_len` instructions.
    pub fn new(program_len: usize) -> Recorder {
        Recorder {
            events: Vec::new(),
            segments: Vec::new(),
            program_len,
        }
    }

    /// Finalizes the recording into a [`Trace`].
    ///
    /// # Panics
    ///
    /// Panics if the sink protocol was violated (a final segment flush is
    /// missing) — [`tinyvm::node::Node::run`] always upholds it; callers
    /// driving [`tinyvm::node::Node::advance`] manually must call
    /// [`tinyvm::node::Node::finish`] once. Use
    /// [`Recorder::try_into_trace`] where the stream comes from an
    /// untrusted driver.
    pub fn into_trace(self) -> Trace {
        self.try_into_trace()
            .expect("trace protocol violation: run not finished with a final segment")
    }

    /// Finalizes the recording, reporting a protocol violation as a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`ProtocolViolation`] when `segments != events + 1`.
    pub fn try_into_trace(self) -> Result<Trace, ProtocolViolation> {
        if self.segments.len() != self.events.len() + 1 {
            return Err(ProtocolViolation {
                events: self.events.len(),
                segments: self.segments.len(),
            });
        }
        Ok(Trace {
            events: self.events,
            segments: self.segments,
            program_len: self.program_len,
        })
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl TraceSink for Recorder {
    fn lifecycle(&mut self, cycle: u64, item: LifecycleItem) {
        self.events.push(TraceEvent { cycle, item });
    }

    fn segment(&mut self, counts: &[u32]) {
        debug_assert_eq!(counts.len(), self.program_len);
        self.segments.push(counts.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tinyvm::devices::NodeConfig;
    use tinyvm::node::Node;

    const APP: &str = "\
.handler TIMER0 h
.task t
main:
 ldi r1, 4
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
h:
 post t
 reti
t:
 ret
";

    fn record(limit: u64) -> Trace {
        let program = Arc::new(tinyvm::assemble(APP).unwrap());
        let mut node = Node::new(program.clone(), NodeConfig::default());
        let mut rec = Recorder::new(program.len());
        node.run(limit, &mut rec).unwrap();
        rec.into_trace()
    }

    #[test]
    fn invariant_holds() {
        let t = record(100_000);
        assert_eq!(t.segments.len(), t.events.len() + 1);
        assert!(t.events.len() > 10);
    }

    #[test]
    fn int_indices_point_at_ints() {
        let t = record(50_000);
        for i in t.int_indices() {
            assert!(matches!(t.events[i].item, LifecycleItem::Int(_)));
        }
        assert!(t.int_indices().count() > 5);
    }

    #[test]
    fn cycles_are_monotonic() {
        let t = record(50_000);
        for w in t.events.windows(2) {
            assert!(w[0].cycle <= w[1].cycle);
        }
    }

    #[test]
    fn total_instructions_positive() {
        let t = record(10_000);
        assert!(t.total_instructions() > 0);
    }

    #[test]
    fn unfinished_recording_is_a_typed_error() {
        let mut rec = Recorder::new(1);
        rec.segment(&[1]);
        rec.lifecycle(5, LifecycleItem::Reti);
        // No final segment flush: the protocol is violated.
        let err = rec.try_into_trace().unwrap_err();
        assert_eq!(
            err,
            ProtocolViolation {
                events: 1,
                segments: 1
            }
        );
        assert!(err.to_string().contains("protocol violation"));
    }
}
