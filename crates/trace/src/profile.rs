//! Execution profiling from recorded traces — the role of Avrora's
//! profiling monitors: attribute instruction executions (and their cycle
//! costs) to routines, across the whole run or within one event-handling
//! interval.
//!
//! Because every instruction has a fixed cycle cost, exact per-instruction
//! cycle totals follow directly from the Definition-4 counters; no extra
//! instrumentation is needed.

use crate::counter::{CounterError, CounterTable};
use crate::extract::EventInterval;
use crate::recorder::Trace;
use serde::{Deserialize, Serialize};
use tinyvm::Program;

/// Aggregated execution statistics of one routine (label-delimited code
/// region).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutineProfile {
    /// Routine name (the enclosing code label).
    pub routine: String,
    /// Total instruction executions attributed to the routine.
    pub executions: u64,
    /// Total cycles those executions consumed (base costs; taken-branch
    /// extras are not included, so this is a tight lower bound).
    pub cycles: u64,
    /// First instruction index of the routine.
    pub entry_pc: u16,
}

/// A whole-program profile.
///
/// # Examples
///
/// ```
/// # use std::sync::Arc;
/// # use tinyvm::{devices::NodeConfig, node::Node};
/// use sentomist_trace::{Profile, Recorder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Arc::new(tinyvm::assemble("main:\n nop\n halt\n")?);
/// let mut node = Node::new(program.clone(), NodeConfig::default());
/// let mut rec = Recorder::new(program.len());
/// node.run(1_000, &mut rec)?;
/// let profile = Profile::of_trace(&rec.into_trace(), &program);
/// assert_eq!(profile.total_executions, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Per-routine rows, sorted by descending cycles.
    pub routines: Vec<RoutineProfile>,
    /// Total instruction executions.
    pub total_executions: u64,
    /// Total attributed cycles.
    pub total_cycles: u64,
}

impl Profile {
    /// Builds a profile from explicit per-instruction counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from the program length; see
    /// [`Profile::try_from_counts`].
    pub fn from_counts(counts: &[u64], program: &Program) -> Profile {
        assert_eq!(counts.len(), program.len(), "count dimension mismatch");
        Profile::build(counts, program)
    }

    /// Fallible [`Profile::from_counts`].
    pub fn try_from_counts(counts: &[u64], program: &Program) -> Result<Profile, CounterError> {
        if counts.len() != program.len() {
            return Err(CounterError::WidthMismatch {
                expected: program.len(),
                got: counts.len(),
            });
        }
        Ok(Profile::build(counts, program))
    }

    fn build(counts: &[u64], program: &Program) -> Profile {
        use std::collections::BTreeMap;
        let mut rows: BTreeMap<&str, RoutineProfile> = BTreeMap::new();
        let mut total_executions = 0u64;
        let mut total_cycles = 0u64;
        for (pc, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let pc16 = pc as u16;
            let routine = program.enclosing_label(pc16).unwrap_or("<unlabeled>");
            let cycles = count * program.ops[pc].cycles();
            total_executions += count;
            total_cycles += cycles;
            let entry = program.label(routine).unwrap_or(0);
            let row = rows.entry(routine).or_insert_with(|| RoutineProfile {
                routine: routine.to_string(),
                executions: 0,
                cycles: 0,
                entry_pc: entry,
            });
            row.executions += count;
            row.cycles += cycles;
        }
        let mut routines: Vec<RoutineProfile> = rows.into_values().collect();
        routines.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.entry_pc.cmp(&b.entry_pc)));
        Profile {
            routines,
            total_executions,
            total_cycles,
        }
    }

    /// Profiles an entire recorded run.
    ///
    /// # Panics
    ///
    /// Panics if the trace's dimensions disagree with the program; see
    /// [`Profile::try_of_trace`].
    pub fn of_trace(trace: &Trace, program: &Program) -> Profile {
        Profile::try_of_trace(trace, program).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Profile::of_trace`]: rejects ragged segments and a
    /// program/trace length disagreement instead of panicking or silently
    /// truncating.
    pub fn try_of_trace(trace: &Trace, program: &Program) -> Result<Profile, CounterError> {
        let mut counts = vec![0u64; trace.program_len];
        for (index, seg) in trace.segments.iter().enumerate() {
            if seg.len() != trace.program_len {
                return Err(CounterError::SegmentWidth {
                    index,
                    expected: trace.program_len,
                    got: seg.len(),
                });
            }
            for (c, &v) in counts.iter_mut().zip(seg.iter()) {
                *c += u64::from(v);
            }
        }
        Profile::try_from_counts(&counts, program)
    }

    /// Profiles a single event-handling interval (what executed during its
    /// wall-clock span, including interleaved instances).
    ///
    /// # Panics
    ///
    /// Panics if the interval lies outside the table or the table's
    /// dimension disagrees with the program; see
    /// [`Profile::try_of_interval`].
    pub fn of_interval(
        table: &CounterTable,
        interval: &EventInterval,
        program: &Program,
    ) -> Profile {
        Profile::try_of_interval(table, interval, program).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Profile::of_interval`].
    pub fn try_of_interval(
        table: &CounterTable,
        interval: &EventInterval,
        program: &Program,
    ) -> Result<Profile, CounterError> {
        Profile::try_from_counts(&table.try_counter(interval)?, program)
    }

    /// Renders a ranked table.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>12} {:>7}",
            "routine", "executions", "cycles", "share"
        );
        for r in &self.routines {
            let share = if self.total_cycles > 0 {
                r.cycles as f64 / self.total_cycles as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<24} {:>12} {:>12} {:>6.1}%",
                r.routine, r.executions, r.cycles, share
            );
        }
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>12}",
            "total", self.total_executions, self.total_cycles
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::sync::Arc;
    use tinyvm::devices::NodeConfig;
    use tinyvm::node::Node;

    const APP: &str = "\
.handler TIMER0 h
.task heavy
main:
 ldi r1, 8
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
h:
 post heavy
 reti
heavy:
 ldi r2, 50
spin:
 subi r2, 1
 brne spin
 ret
";

    fn run() -> (Arc<tinyvm::Program>, Trace, u64) {
        let program = Arc::new(tinyvm::assemble(APP).unwrap());
        let mut node = Node::new(program.clone(), NodeConfig::default());
        let mut rec = Recorder::new(program.len());
        node.run(500_000, &mut rec).unwrap();
        let retired = node.instructions_retired();
        (program, rec.into_trace(), retired)
    }

    #[test]
    fn whole_run_profile_accounts_every_instruction() {
        let (program, trace, retired) = run();
        let profile = Profile::of_trace(&trace, &program);
        assert_eq!(profile.total_executions, retired);
        // The spin loop dominates.
        assert_eq!(profile.routines[0].routine, "spin");
        assert!(profile.total_cycles > profile.total_executions);
    }

    #[test]
    fn interval_profile_is_a_subset() {
        let (program, trace, _) = run();
        let extraction = crate::extract(&trace).unwrap();
        let table = CounterTable::new(&trace);
        let whole = Profile::of_trace(&trace, &program);
        let one = Profile::of_interval(&table, &extraction.intervals[0], &program);
        assert!(one.total_executions > 0);
        assert!(one.total_executions < whole.total_executions);
        // Any routine in the interval profile exists in the whole profile.
        for r in &one.routines {
            assert!(whole.routines.iter().any(|w| w.routine == r.routine));
        }
    }

    #[test]
    fn table_lists_routines_and_total() {
        let (program, trace, _) = run();
        let profile = Profile::of_trace(&trace, &program);
        let t = profile.table();
        assert!(t.contains("spin"));
        assert!(t.contains("total"));
        assert!(t.contains('%'));
    }

    #[test]
    fn try_apis_reject_mismatched_dimensions() {
        let program = tinyvm::assemble("main:\n nop\n ret\n").unwrap();
        assert_eq!(
            Profile::try_from_counts(&[1, 2, 3], &program).unwrap_err(),
            CounterError::WidthMismatch {
                expected: 2,
                got: 3
            }
        );
        let (_, mut trace, _) = run();
        trace.segments[0] = vec![1];
        let got = Profile::try_of_trace(&trace, &program).unwrap_err();
        assert!(matches!(got, CounterError::SegmentWidth { index: 0, .. }));
    }

    #[test]
    fn zero_counts_profile_is_empty() {
        let program = tinyvm::assemble("main:\n nop\n ret\n").unwrap();
        let profile = Profile::from_counts(&[0, 0], &program);
        assert!(profile.routines.is_empty());
        assert_eq!(profile.total_cycles, 0);
    }
}
