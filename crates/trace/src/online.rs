//! Online (streaming) interval extraction.
//!
//! The batch extractor ([`crate::extract()`](crate::extract::extract)) needs the whole lifecycle
//! sequence in memory. For long-running monitoring — the paper notes a
//! single testing run's log already reaches tens of megabytes — this
//! module tracks event-procedure instances *incrementally*: feed each
//! lifecycle item as it occurs and completed [`EventInterval`]s are
//! emitted as soon as their last task finishes.
//!
//! The tracker maintains, per open instance, the number of its
//! still-outstanding tasks; ownership of queued tasks is inferred online
//! from the same Criteria the batch algorithm uses:
//!
//! * posts at handler depth ≥ 1 belong to the innermost open handler
//!   (Criterion 2 — nested int-reti substrings are attributed inward);
//! * posts at depth 0 belong to the owner of the currently running task
//!   (Criterion 3);
//! * the FIFO queue pairs each `runTask` with the oldest outstanding
//!   `postTask` (Criterion 1).
//!
//! Equivalence with the batch extractor is checked by unit tests here and
//! by the cross-validation suites in `tests/`.

use crate::extract::EventInterval;
use std::collections::VecDeque;
use tinyvm::LifecycleItem;

/// Per-instance bookkeeping.
#[derive(Debug, Clone)]
struct OpenInstance {
    irq: u8,
    start_index: usize,
    start_cycle: u64,
    handler_open: bool,
    outstanding_tasks: u32,
    task_count: u32,
    last_run_index: Option<usize>,
}

/// Streaming interval tracker.
///
/// # Examples
///
/// ```
/// use sentomist_trace::online::OnlineExtractor;
/// use tinyvm::{LifecycleItem as L, TaskId};
///
/// let mut ex = OnlineExtractor::new();
/// let items = [
///     L::Int(2),
///     L::PostTask(TaskId(0)),
///     L::Reti,
///     L::RunTask(TaskId(0)),
///     L::TaskEnd(TaskId(0)),
/// ];
/// let mut done = Vec::new();
/// for (i, item) in items.into_iter().enumerate() {
///     done.extend(ex.feed(i, i as u64, item));
/// }
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].end_index, 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineExtractor {
    /// All instances ever opened; indices are stable instance ids.
    instances: Vec<OpenInstance>,
    /// Stack of instance ids of currently open handlers.
    handler_stack: Vec<usize>,
    /// FIFO of owners of posted-but-not-yet-run tasks (`None` = posted by
    /// main or by an ownerless task).
    task_owner_queue: VecDeque<Option<usize>>,
    /// Owner of the currently running task.
    running_task_owner: Option<Option<usize>>,
    /// Count of instances still open.
    open: usize,
}

impl OnlineExtractor {
    /// Creates an empty tracker.
    pub fn new() -> OnlineExtractor {
        OnlineExtractor::default()
    }

    /// Number of instances currently open (bounded by handler nesting plus
    /// instances awaiting task completion — not by trace length).
    pub fn open_instances(&self) -> usize {
        self.open
    }

    /// Feeds one lifecycle item; returns any intervals completed by it.
    ///
    /// `index`/`cycle` are the item's position and timestamp in the
    /// stream. At most one interval completes per item, but the return
    /// type stays a `Vec` for a uniform API.
    pub fn feed(&mut self, index: usize, cycle: u64, item: LifecycleItem) -> Vec<EventInterval> {
        match item {
            LifecycleItem::Int(irq) => {
                let id = self.instances.len();
                self.instances.push(OpenInstance {
                    irq,
                    start_index: index,
                    start_cycle: cycle,
                    handler_open: true,
                    outstanding_tasks: 0,
                    task_count: 0,
                    last_run_index: None,
                });
                self.handler_stack.push(id);
                self.open += 1;
                Vec::new()
            }
            LifecycleItem::PostTask(_) => {
                let owner = match self.handler_stack.last() {
                    Some(&h) => Some(h),
                    None => self.running_task_owner.flatten(),
                };
                if let Some(id) = owner {
                    self.instances[id].outstanding_tasks += 1;
                    self.instances[id].task_count += 1;
                }
                self.task_owner_queue.push_back(owner);
                Vec::new()
            }
            LifecycleItem::Reti => {
                let Some(id) = self.handler_stack.pop() else {
                    return Vec::new(); // ill-formed stream; ignore
                };
                let inst = &mut self.instances[id];
                inst.handler_open = false;
                if inst.outstanding_tasks == 0 {
                    self.open -= 1;
                    return vec![Self::close(inst, index, cycle)];
                }
                Vec::new()
            }
            LifecycleItem::RunTask(_) => {
                let owner = self.task_owner_queue.pop_front().unwrap_or(None);
                if let Some(id) = owner {
                    self.instances[id].last_run_index = Some(index);
                }
                self.running_task_owner = Some(owner);
                Vec::new()
            }
            LifecycleItem::TaskEnd(_) => {
                let owner = self.running_task_owner.take().flatten();
                if let Some(id) = owner {
                    let inst = &mut self.instances[id];
                    inst.outstanding_tasks = inst.outstanding_tasks.saturating_sub(1);
                    if inst.outstanding_tasks == 0 && !inst.handler_open {
                        self.open -= 1;
                        return vec![Self::close(inst, index, cycle)];
                    }
                }
                Vec::new()
            }
        }
    }

    fn close(inst: &OpenInstance, index: usize, cycle: u64) -> EventInterval {
        EventInterval {
            irq: inst.irq,
            start_index: inst.start_index,
            end_index: index,
            last_run_index: inst.last_run_index,
            start_cycle: inst.start_cycle,
            end_cycle: cycle,
            task_count: inst.task_count,
        }
    }
}

/// Runs the online extractor over a whole trace (convenience used by
/// equivalence tests and benchmarks). Completed intervals are returned in
/// *completion* order, which differs from the batch extractor's
/// start-index order.
pub fn extract_online(trace: &crate::Trace) -> Vec<EventInterval> {
    let mut ex = OnlineExtractor::new();
    let mut out = Vec::new();
    for (i, ev) in trace.events.iter().enumerate() {
        out.extend(ex.feed(i, ev.cycle, ev.item));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Trace, TraceEvent};
    use tinyvm::TaskId;

    fn trace_of(items: &[LifecycleItem]) -> Trace {
        Trace {
            events: items
                .iter()
                .enumerate()
                .map(|(i, &item)| TraceEvent {
                    cycle: i as u64 * 10,
                    item,
                })
                .collect(),
            segments: vec![vec![]; items.len() + 1],
            program_len: 0,
        }
    }

    fn int(n: u8) -> LifecycleItem {
        LifecycleItem::Int(n)
    }
    fn reti() -> LifecycleItem {
        LifecycleItem::Reti
    }
    fn post(t: u16) -> LifecycleItem {
        LifecycleItem::PostTask(TaskId(t))
    }
    fn run(t: u16) -> LifecycleItem {
        LifecycleItem::RunTask(TaskId(t))
    }
    fn end(t: u16) -> LifecycleItem {
        LifecycleItem::TaskEnd(TaskId(t))
    }

    fn assert_equivalent(items: &[LifecycleItem]) {
        let trace = trace_of(items);
        let batch = crate::extract(&trace).unwrap();
        let mut online = extract_online(&trace);
        online.sort_by_key(|iv| iv.start_index);
        assert_eq!(online, batch.intervals);
    }

    #[test]
    fn matches_batch_on_figure_1() {
        assert_equivalent(&[
            int(0),
            post(10),
            post(11),
            reti(),
            run(10),
            post(12),
            end(10),
            run(11),
            int(1),
            reti(),
            end(11),
            run(12),
            end(12),
        ]);
    }

    #[test]
    fn matches_batch_on_overlapping_instances() {
        assert_equivalent(&[int(2), post(0), reti(), int(2), reti(), run(0), end(0)]);
    }

    #[test]
    fn matches_batch_on_nested_posts() {
        assert_equivalent(&[
            int(0),
            post(1),
            reti(),
            run(1),
            int(1),
            post(2),
            reti(),
            end(1),
            run(2),
            end(2),
        ]);
    }

    #[test]
    fn emits_on_completion_not_at_end() {
        let mut ex = OnlineExtractor::new();
        assert!(ex.feed(0, 0, int(0)).is_empty());
        let done = ex.feed(1, 10, reti());
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].start_index, 0);
        assert_eq!(done[0].end_index, 1);
        assert_eq!(ex.open_instances(), 0);
    }

    #[test]
    fn open_instance_count_is_bounded_by_activity() {
        // 3 nested handlers -> 3 open; closing unwinds.
        let mut ex = OnlineExtractor::new();
        ex.feed(0, 0, int(0));
        ex.feed(1, 1, int(1));
        ex.feed(2, 2, int(2));
        assert_eq!(ex.open_instances(), 3);
        ex.feed(3, 3, reti());
        ex.feed(4, 4, reti());
        ex.feed(5, 5, reti());
        assert_eq!(ex.open_instances(), 0);
    }

    #[test]
    fn truncated_instances_stay_open() {
        let mut ex = OnlineExtractor::new();
        ex.feed(0, 0, int(0));
        ex.feed(1, 1, post(1));
        let done = ex.feed(2, 2, reti());
        assert!(done.is_empty());
        assert_eq!(ex.open_instances(), 1);
    }

    #[test]
    fn boot_tasks_are_ownerless() {
        let mut ex = OnlineExtractor::new();
        assert!(ex.feed(0, 0, post(5)).is_empty());
        assert!(ex.feed(1, 1, run(5)).is_empty());
        assert!(ex.feed(2, 2, end(5)).is_empty());
        assert_eq!(ex.open_instances(), 0);
    }
}
