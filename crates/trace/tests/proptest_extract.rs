//! Property test: the Figure-4 extraction is validated against an
//! *independent* reference scheduler (separate from the TinyVM node) over
//! proptest-generated interrupt schedules.
//!
//! The reference simulates the concurrency model directly — preemptible
//! frames with durations, a FIFO task queue, per-line in-service masking —
//! and tracks true instance ownership with [`tinyvm::ground_truth`]. The
//! extraction, fed only the emitted lifecycle sequence, must recover every
//! interval exactly.

use proptest::prelude::*;
use sentomist_trace::recorder::{Trace, TraceEvent};
use tinyvm::ground_truth::GtTracker;
use tinyvm::{LifecycleItem, TaskId};

/// A task to be posted: how long it runs and what it posts in turn.
#[derive(Debug, Clone)]
struct TaskSpec {
    duration: u64,
    posts: Vec<TaskSpec>,
}

/// An interrupt arrival.
#[derive(Debug, Clone)]
struct IntSpec {
    time: u64,
    line: u8,
    duration: u64,
    posts: Vec<TaskSpec>,
}

#[derive(Debug)]
enum Frame {
    Handler {
        line: u8,
        instance: usize,
        remaining: u64,
    },
    Task {
        owner: Option<usize>,
        task: TaskId,
        remaining: u64,
    },
}

/// Reference simulation of the TinyOS concurrency model (Rules 1–3).
fn simulate(mut ints: Vec<IntSpec>) -> (Vec<TraceEvent>, GtTracker) {
    ints.sort_by_key(|i| (i.time, i.line));
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut gt = GtTracker::new();
    let mut queue: std::collections::VecDeque<(TaskId, Option<usize>, TaskSpec)> =
        std::collections::VecDeque::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut now: u64 = 0;
    let mut next_int = 0usize;
    let mut task_counter = 0u16;

    let emit = |events: &mut Vec<TraceEvent>, now: u64, item: LifecycleItem| -> usize {
        events.push(TraceEvent { cycle: now, item });
        events.len() - 1
    };

    // Posts everything a frame wants to post, attributing ownership.
    fn do_posts(
        posts: &[TaskSpec],
        owner: Option<usize>,
        now: u64,
        events: &mut Vec<TraceEvent>,
        gt: &mut GtTracker,
        queue: &mut std::collections::VecDeque<(TaskId, Option<usize>, TaskSpec)>,
        task_counter: &mut u16,
    ) {
        for p in posts {
            let id = TaskId(*task_counter % 8); // task ids repeat, as in real apps
            *task_counter += 1;
            events.push(TraceEvent {
                cycle: now,
                item: LifecycleItem::PostTask(id),
            });
            gt.on_post(owner);
            queue.push_back((id, owner, p.clone()));
        }
    }

    loop {
        // Dispatch any arrived interrupt whose line is not in service.
        let in_service = |stack: &[Frame], line: u8| {
            stack
                .iter()
                .any(|f| matches!(f, Frame::Handler { line: l, .. } if *l == line))
        };
        if next_int < ints.len()
            && ints[next_int].time <= now
            && !in_service(&stack, ints[next_int].line)
        {
            let spec = ints[next_int].clone();
            next_int += 1;
            let idx = emit(&mut events, now, LifecycleItem::Int(spec.line));
            let instance = gt.on_int(spec.line, idx, now);
            do_posts(
                &spec.posts,
                Some(instance),
                now,
                &mut events,
                &mut gt,
                &mut queue,
                &mut task_counter,
            );
            stack.push(Frame::Handler {
                line: spec.line,
                instance,
                remaining: spec.duration.max(1),
            });
            continue;
        }
        // Arrived interrupt whose line IS in service: it stays pending and
        // will dispatch after the reti; nothing to do here.

        if let Some(top) = stack.last_mut() {
            // Run the top frame until it finishes or the next interrupt.
            let remaining = match top {
                Frame::Handler { remaining, .. } | Frame::Task { remaining, .. } => remaining,
            };
            let horizon = ints
                .get(next_int)
                .map(|i| i.time.max(now))
                .unwrap_or(u64::MAX);
            let step = (*remaining).min(horizon.saturating_sub(now).max(1));
            *remaining -= step.min(*remaining);
            now += step;
            if *remaining == 0 {
                match stack.pop().expect("top exists") {
                    Frame::Handler { instance, .. } => {
                        let idx = emit(&mut events, now, LifecycleItem::Reti);
                        gt.on_reti(instance, idx, now);
                    }
                    Frame::Task { owner, task, .. } => {
                        let idx = emit(&mut events, now, LifecycleItem::TaskEnd(task));
                        gt.on_task_end(owner, idx, now);
                    }
                }
            }
            continue;
        }

        // Idle: run the next task, or jump to the next interrupt.
        if let Some((task, owner, spec)) = queue.pop_front() {
            emit(&mut events, now, LifecycleItem::RunTask(task));
            do_posts(
                &spec.posts,
                owner,
                now,
                &mut events,
                &mut gt,
                &mut queue,
                &mut task_counter,
            );
            stack.push(Frame::Task {
                owner,
                task,
                remaining: spec.duration.max(1),
            });
            continue;
        }
        match ints.get(next_int) {
            Some(i) => now = now.max(i.time),
            None => break,
        }
    }
    (events, gt)
}

fn leaf_task() -> impl Strategy<Value = TaskSpec> {
    (1u64..80).prop_map(|duration| TaskSpec {
        duration,
        posts: Vec::new(),
    })
}

fn task_spec() -> impl Strategy<Value = TaskSpec> {
    (1u64..80, prop::collection::vec(leaf_task(), 0..2))
        .prop_map(|(duration, posts)| TaskSpec { duration, posts })
}

fn int_spec() -> impl Strategy<Value = IntSpec> {
    (
        0u64..2_000,
        0u8..3,
        1u64..40,
        prop::collection::vec(task_spec(), 0..3),
    )
        .prop_map(|(time, line, duration, posts)| IntSpec {
            time,
            line,
            duration,
            posts,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn extraction_matches_reference_scheduler(
        ints in prop::collection::vec(int_spec(), 0..25)
    ) {
        let (events, gt) = simulate(ints);
        let n_events = events.len();
        let trace = Trace {
            events,
            segments: vec![Vec::new(); n_events + 1],
            program_len: 0,
        };
        let extraction = sentomist_trace::extract(&trace).expect("well-formed");
        let complete: Vec<_> = gt.intervals().iter().filter(|g| g.is_complete()).collect();
        prop_assert_eq!(extraction.intervals.len(), complete.len());
        prop_assert_eq!(
            extraction.incomplete,
            gt.intervals().len() - complete.len()
        );
        for (inferred, truth) in extraction.intervals.iter().zip(&complete) {
            prop_assert_eq!(inferred.start_index, truth.start_index);
            prop_assert_eq!(inferred.irq, truth.irq);
            prop_assert_eq!(Some(inferred.end_index), truth.end_index);
            prop_assert_eq!(inferred.task_count, truth.task_count);
        }
        // The streaming extractor agrees with the batch algorithm.
        let mut online = sentomist_trace::extract_online(&trace);
        online.sort_by_key(|iv| iv.start_index);
        prop_assert_eq!(online, extraction.intervals);
    }

    #[test]
    fn extracted_intervals_are_well_formed(
        ints in prop::collection::vec(int_spec(), 0..25)
    ) {
        // Note: same-line intervals MAY partially overlap — a later
        // instance can begin inside an earlier one's task-deferral window
        // and outlive it; that overlap is precisely the symptom pattern of
        // the paper's case study I. What must always hold:
        //  * every interval closes after it opens;
        //  * cycles are consistent with indices;
        //  * *handler regions* of one line never nest (in-service mask);
        //  * same-line intervals are ordered by their opening Int.
        let (events, _gt) = simulate(ints);
        let n_events = events.len();
        let trace = Trace {
            events: events.clone(),
            segments: vec![Vec::new(); n_events + 1],
            program_len: 0,
        };
        let extraction = sentomist_trace::extract(&trace).expect("well-formed");
        for iv in &extraction.intervals {
            prop_assert!(iv.end_index > iv.start_index);
            prop_assert!(iv.end_cycle >= iv.start_cycle);
            if iv.task_count == 0 {
                prop_assert_eq!(iv.last_run_index, None);
            } else {
                prop_assert!(iv.last_run_index.is_some());
            }
        }
        for line in 0u8..3 {
            let ivs = extraction.for_irq(line);
            for pair in ivs.windows(2) {
                prop_assert!(pair[1].start_index > pair[0].start_index);
            }
        }
        // Handler regions of one line never nest.
        let mut depth = [0i32; 4];
        let mut stack: Vec<u8> = Vec::new();
        for e in &events {
            match e.item {
                LifecycleItem::Int(n) => {
                    depth[n as usize] += 1;
                    prop_assert!(depth[n as usize] <= 1, "line {} self-nested", n);
                    stack.push(n);
                }
                LifecycleItem::Reti => {
                    let n = stack.pop().expect("balanced");
                    depth[n as usize] -= 1;
                }
                _ => {}
            }
        }
    }
}
