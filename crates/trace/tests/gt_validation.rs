//! Validates the paper's interval-inference algorithm (Figure 4, built on
//! Criteria 1–3, consuming only the lifecycle sequence) against the VM's
//! ground-truth instance bookkeeping, across randomized interrupt
//! schedules. This is the strongest check that the inference is exact.

use sentomist_trace::{extract, CounterTable, Recorder};
use std::sync::Arc;
use tinyvm::devices::{AdcConfig, NodeConfig};
use tinyvm::node::Node;

/// A stress application exercising every concurrency feature at once:
/// two timers at co-prime periods, ADC conversions with jitter, tasks of
/// data-dependent duration, tasks posting tasks, and handler nesting.
const STRESS_APP: &str = "\
.handler TIMER0 t0_fire
.handler TIMER1 t1_fire
.handler ADC adc_ready
.task work_a
.task work_b
.task work_c
.data scratch 4
main:
 ldi r1, 3            ; 768 cycles
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ldi r1, 7            ; 1792 cycles
 out TIMER1_PERIOD, r1
 ldi r1, 1
 out TIMER1_CTRL, r1
 ret

t0_fire:
 in r1, RAND
 andi_equiv:          ; keep low bits via shifts (no andi op with imm reg)
 ldi r2, 3
 and r1, r2
 cmpi r1, 0
 breq t0_done         ; 1/4 of fires post nothing
 post work_a
 cmpi r1, 3
 brne t0_done
 post work_b          ; 1/4 post two tasks
t0_done:
 reti

t1_fire:
 ldi r1, 1
 out ADC_CTRL, r1     ; kick a conversion
 post work_c
 reti

adc_ready:
 in r1, ADC_DATA
 sta scratch, r1
 reti

work_a:
 in r3, RAND
 ldi r4, 0x00FF
 and r3, r4
 addi r3, 40
wa_loop:
 subi r3, 1
 brne wa_loop
 ret

work_b:
 in r3, RAND
 ldi r4, 0x007F
 and r3, r4
 addi r3, 16
wb_loop:
 subi r3, 1
 brne wb_loop
 in r3, RAND
 ldi r4, 1
 and r3, r4
 cmpi r3, 1
 brne wb_done
 post work_c          ; occasionally chain a task
wb_done:
 ret

work_c:
 ldi r3, 60
wc_loop:
 subi r3, 1
 brne wc_loop
 ret
";

fn run_stress(seed: u64, cycles: u64) -> (Node, sentomist_trace::Trace) {
    let program = Arc::new(tinyvm::assemble(STRESS_APP).expect("stress app assembles"));
    let mut node = Node::new(
        program.clone(),
        NodeConfig {
            seed,
            adc: AdcConfig {
                latency_cycles: 300,
                jitter_cycles: 500,
                sensor_base: 70,
                sensor_noise: 10,
            },
            ..NodeConfig::default()
        },
    );
    let mut rec = Recorder::new(program.len());
    node.run(cycles, &mut rec).expect("stress app runs clean");
    (node, rec.into_trace())
}

#[test]
fn inference_matches_ground_truth_across_seeds() {
    for seed in 0..20u64 {
        let (node, trace) = run_stress(seed, 400_000);
        let x = extract(&trace).expect("well-formed trace");
        let gt = node.ground_truth();

        let complete_gt: Vec<_> = gt.iter().filter(|g| g.is_complete()).collect();
        assert_eq!(
            x.intervals.len(),
            complete_gt.len(),
            "seed {seed}: complete interval counts differ"
        );
        let open_gt = gt.len() - complete_gt.len();
        assert_eq!(
            x.incomplete, open_gt,
            "seed {seed}: incomplete counts differ"
        );

        for (inferred, truth) in x.intervals.iter().zip(complete_gt.iter()) {
            assert_eq!(inferred.start_index, truth.start_index, "seed {seed}");
            assert_eq!(inferred.irq, truth.irq, "seed {seed}");
            assert_eq!(
                inferred.end_index,
                truth.end_index.expect("complete"),
                "seed {seed}: interval starting at {} ends differently",
                inferred.start_index
            );
            assert_eq!(
                inferred.task_count, truth.task_count,
                "seed {seed}: task counts differ at {}",
                inferred.start_index
            );
            assert_eq!(inferred.start_cycle, truth.start_cycle, "seed {seed}");
            assert_eq!(
                inferred.end_cycle,
                truth.end_cycle.expect("complete"),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn stress_app_produces_rich_interleavings() {
    // Sanity: the stress workload actually exercises nesting and chaining,
    // otherwise the validation above proves little.
    let mut saw_nested = false;
    let mut saw_chain = false;
    let mut saw_overlap = false;
    for seed in 0..20u64 {
        let (_, trace) = run_stress(seed, 400_000);
        let x = extract(&trace).unwrap();
        // Nested: an Int strictly inside another instance's [start, end].
        for w in x.intervals.windows(2) {
            if w[1].start_index > w[0].start_index && w[1].end_index < w[0].end_index {
                saw_overlap = true;
            }
        }
        let mut depth = 0;
        for e in &trace.events {
            match e.item {
                tinyvm::LifecycleItem::Int(_) => {
                    depth += 1;
                    if depth > 1 {
                        saw_nested = true;
                    }
                }
                tinyvm::LifecycleItem::Reti => depth -= 1,
                _ => {}
            }
        }
        if x.intervals.iter().any(|iv| iv.task_count >= 2) {
            saw_chain = true;
        }
    }
    assert!(saw_nested, "no nested handlers observed");
    assert!(saw_chain, "no multi-task instances observed");
    assert!(saw_overlap, "no overlapping intervals observed");
}

#[test]
fn counters_cover_all_instructions_within_span() {
    let (_, trace) = run_stress(7, 200_000);
    let x = extract(&trace).unwrap();
    let table = CounterTable::new(&trace);
    for iv in &x.intervals {
        let c = table.counter(iv);
        let total: u64 = c.iter().sum();
        if iv.end_index > iv.start_index {
            assert!(
                total > 0,
                "non-degenerate interval should contain instructions"
            );
        }
    }
}
