//! Memory-mapped peripherals: timers, ADC, radio, UART, RNG.
//!
//! All devices share one future-event queue keyed by node-local cycle;
//! [`Devices`] implements the CPU's [`Bus`] so `in`/`out` reach the
//! peripherals, and the node drains due events between instructions.
//! Interrupt requests are accumulated in a pending bitmask that the node's
//! dispatch loop consumes.

use crate::cpu::Bus;
use crate::error::VmError;
use crate::isa::{irq, port};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Maximum payload words the radio TX buffer accepts; further pushes are
/// silently dropped (mirrors a fixed-size chip FIFO).
pub const MAX_PAYLOAD_WORDS: usize = 64;

/// A radio packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Sending node id.
    pub src: u16,
    /// Destination node id, or [`port::BROADCAST`].
    pub dest: u16,
    /// Payload words.
    pub payload: Vec<u16>,
}

/// A packet leaving a node, with its transmission window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutgoingPacket {
    /// The packet.
    pub packet: Packet,
    /// Cycle at which transmission began.
    pub sent_at: u64,
    /// On-air duration in cycles (handshake + payload airtime).
    pub duration: u64,
}

/// ADC configuration: conversion latency and the synthetic sensor model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdcConfig {
    /// Fixed conversion latency in cycles.
    pub latency_cycles: u64,
    /// Additional uniform jitter in `[0, jitter_cycles)`.
    pub jitter_cycles: u64,
    /// Sensor baseline value.
    pub sensor_base: u16,
    /// Sensor noise amplitude: samples are `base + U[0, noise)`.
    pub sensor_noise: u16,
}

impl Default for AdcConfig {
    fn default() -> Self {
        AdcConfig {
            latency_cycles: 200,
            jitter_cycles: 100,
            sensor_base: 100,
            sensor_noise: 32,
        }
    }
}

impl AdcConfig {
    /// The default sensor model with mutated conversion timing — the
    /// interrupt-schedule knob scenario generators sweep (`jitter_cycles`
    /// of 0 legally disables jitter).
    pub fn with_timing(latency_cycles: u64, jitter_cycles: u64) -> AdcConfig {
        AdcConfig {
            latency_cycles,
            jitter_cycles,
            ..AdcConfig::default()
        }
    }
}

/// Radio timing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Fixed per-transmission overhead in cycles (preamble, header).
    pub overhead_cycles: u64,
    /// Airtime per payload word in cycles.
    pub per_word_cycles: u64,
    /// Extra cycles for the CSMA control exchange (RTS/CTS/ACK) on unicast
    /// sends; broadcasts skip it.
    pub handshake_cycles: u64,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            overhead_cycles: 2_000,
            per_word_cycles: 500,
            handshake_cycles: 6_000,
        }
    }
}

/// How execution time is modelled.
///
/// [`TimingModel::CycleAccurate`] is the Avrora-like default: every
/// instruction consumes cycles, so handlers and tasks have real duration
/// and can interleave. [`TimingModel::ZeroCostEvents`] reproduces the
/// TOSSIM-style discrete-event abstraction the paper's §VI-E argues
/// against: handlers and tasks execute instantaneously at their trigger
/// times ("in a consequential manner"), so executions never overlap and
/// interleaving-dependent transient bugs cannot manifest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingModel {
    /// Instructions consume cycles (cycle-accurate emulation).
    #[default]
    CycleAccurate,
    /// Event executions take zero simulated time (TOSSIM-style).
    ZeroCostEvents,
}

/// Complete node configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// This node's id (readable via the `NODE_ID` port, used as the packet
    /// source address).
    pub node_id: u16,
    /// Data memory size in words.
    pub mem_words: u16,
    /// RNG seed for this node's jitter / sensor / `RAND`-port streams.
    pub seed: u64,
    /// ADC configuration.
    pub adc: AdcConfig,
    /// Radio configuration.
    pub radio: RadioConfig,
    /// OS task queue capacity.
    pub task_queue_capacity: usize,
    /// Execution-time model (see [`TimingModel`]).
    pub timing: TimingModel,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            node_id: 0,
            mem_words: 4096,
            seed: 0xC0FFEE,
            adc: AdcConfig::default(),
            radio: RadioConfig::default(),
            task_queue_capacity: 64,
            timing: TimingModel::default(),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    TimerFire { which: u8, generation: u32 },
    AdcReady { sample: u16 },
    RadioTxDone,
    RadioDeliver { packet: Packet },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    cycle: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.cycle, self.seq).cmp(&(other.cycle, other.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Default)]
struct Timer {
    period_ticks: u16,
    running: bool,
    generation: u32,
}

#[derive(Debug, Clone, Default)]
struct Adc {
    pending: bool,
    data: u16,
}

#[derive(Debug, Clone, Default)]
struct Radio {
    tx_buf: Vec<u16>,
    tx_busy: bool,
    send_failed: bool,
    rx_queue: VecDeque<Packet>,
    rx_cursor: usize,
}

/// The peripheral complex of one node.
#[derive(Debug, Clone)]
pub struct Devices {
    config: NodeConfig,
    timers: [Timer; 2],
    adc: Adc,
    radio: Radio,
    uart: Vec<u16>,
    rng: ChaCha8Rng,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Pending interrupt lines (bitmask).
    pending: u8,
    outbox: Vec<OutgoingPacket>,
}

impl Devices {
    /// Creates the peripheral complex from a node configuration.
    pub fn new(config: NodeConfig) -> Devices {
        let seed = config.seed ^ (config.node_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Devices {
            config,
            timers: Default::default(),
            adc: Adc::default(),
            radio: Radio::default(),
            uart: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            events: BinaryHeap::new(),
            seq: 0,
            pending: 0,
            outbox: Vec::new(),
        }
    }

    /// The node configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    fn schedule(&mut self, cycle: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { cycle, seq, kind }));
    }

    fn raise(&mut self, line: u8) {
        self.pending |= 1 << line;
    }

    /// Earliest scheduled device event, if any.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.events.peek().map(|Reverse(e)| e.cycle)
    }

    /// Whether any interrupt line is pending.
    pub fn has_pending(&self) -> bool {
        self.pending != 0
    }

    /// Takes the highest-priority pending line accepted by `eligible`
    /// (lowest line number first), clearing its pending bit.
    pub fn take_pending(&mut self, eligible: impl Fn(u8) -> bool) -> Option<u8> {
        for line in 0..irq::NUM_IRQS as u8 {
            if self.pending & (1 << line) != 0 && eligible(line) {
                self.pending &= !(1 << line);
                return Some(line);
            }
        }
        None
    }

    /// Drops a pending line without dispatching it (used for lines without
    /// a handler vector, mirroring a masked interrupt).
    pub fn clear_pending(&mut self, line: u8) {
        self.pending &= !(1 << line);
    }

    /// Processes all events due at or before `now`. Returns `true` if any
    /// event fired (device state may have changed).
    pub fn process_due(&mut self, now: u64) -> bool {
        let mut fired = false;
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.cycle > now {
                break;
            }
            let Reverse(ev) = self.events.pop().expect("peeked event exists");
            fired = true;
            match ev.kind {
                EventKind::TimerFire { which, generation } => {
                    let period = {
                        let t = &self.timers[which as usize];
                        if !t.running || t.generation != generation {
                            continue; // stale: timer stopped/reprogrammed
                        }
                        t.period_ticks
                    };
                    let line = if which == 0 { irq::TIMER0 } else { irq::TIMER1 };
                    self.raise(line);
                    let next = ev.cycle + u64::from(period).max(1) * port::TIMER_TICK_CYCLES;
                    self.schedule(next, EventKind::TimerFire { which, generation });
                }
                EventKind::AdcReady { sample } => {
                    self.adc.pending = false;
                    self.adc.data = sample;
                    self.raise(irq::ADC);
                }
                EventKind::RadioTxDone => {
                    self.radio.tx_busy = false;
                    self.raise(irq::TXDONE);
                }
                EventKind::RadioDeliver { packet } => {
                    self.radio.rx_queue.push_back(packet);
                    self.raise(irq::RX);
                }
            }
        }
        fired
    }

    /// Re-raises the RX line if received packets remain queued; the node
    /// calls this when an RX handler exits so one interrupt is delivered per
    /// queued packet.
    pub fn refresh_rx_pending(&mut self) {
        if !self.radio.rx_queue.is_empty() {
            self.raise(irq::RX);
        }
    }

    /// Schedules delivery of `packet` to this node at `at_cycle` (used by
    /// the network simulator and by tests injecting traffic).
    pub fn inject_rx(&mut self, at_cycle: u64, packet: Packet) {
        self.schedule(at_cycle, EventKind::RadioDeliver { packet });
    }

    /// Removes and returns all packets transmitted so far.
    pub fn drain_outbox(&mut self) -> Vec<OutgoingPacket> {
        std::mem::take(&mut self.outbox)
    }

    /// Words written to the UART debug port so far.
    pub fn uart(&self) -> &[u16] {
        &self.uart
    }

    /// Whether the radio currently reports TX busy.
    pub fn radio_tx_busy(&self) -> bool {
        self.radio.tx_busy
    }

    /// Number of packets waiting in the RX queue.
    pub fn rx_queue_len(&self) -> usize {
        self.radio.rx_queue.len()
    }

    fn timer_ctrl(&mut self, which: usize, value: u16, now: u64) {
        let t = &mut self.timers[which];
        t.generation = t.generation.wrapping_add(1);
        if value != 0 {
            t.running = true;
            let period = u64::from(t.period_ticks).max(1) * port::TIMER_TICK_CYCLES;
            let generation = t.generation;
            self.schedule(
                now + period,
                EventKind::TimerFire {
                    which: which as u8,
                    generation,
                },
            );
        } else {
            t.running = false;
        }
    }

    fn start_adc(&mut self, now: u64) {
        if self.adc.pending {
            return; // conversion already in flight
        }
        self.adc.pending = true;
        let jitter = if self.config.adc.jitter_cycles > 0 {
            self.rng.gen_range(0..self.config.adc.jitter_cycles)
        } else {
            0
        };
        let noise = if self.config.adc.sensor_noise > 0 {
            self.rng.gen_range(0..self.config.adc.sensor_noise)
        } else {
            0
        };
        let sample = self.config.adc.sensor_base.wrapping_add(noise);
        self.schedule(
            now + self.config.adc.latency_cycles + jitter,
            EventKind::AdcReady { sample },
        );
    }

    fn radio_send(&mut self, dest: u16, now: u64) {
        if self.radio.tx_busy {
            // Chip busy: reject the send and drop the staged payload. The
            // application sees STATUS_SEND_FAILED until its next attempt.
            self.radio.send_failed = true;
            self.radio.tx_buf.clear();
            return;
        }
        self.radio.send_failed = false;
        self.radio.tx_busy = true;
        let payload = std::mem::take(&mut self.radio.tx_buf);
        let handshake = if dest == port::BROADCAST {
            0
        } else {
            self.config.radio.handshake_cycles
        };
        let duration = self.config.radio.overhead_cycles
            + handshake
            + payload.len() as u64 * self.config.radio.per_word_cycles;
        self.schedule(now + duration, EventKind::RadioTxDone);
        self.outbox.push(OutgoingPacket {
            packet: Packet {
                src: self.config.node_id,
                dest,
                payload,
            },
            sent_at: now,
            duration,
        });
    }

    fn rx_pop(&mut self) -> u16 {
        let Some(front) = self.radio.rx_queue.front() else {
            return 0;
        };
        let word = front
            .payload
            .get(self.radio.rx_cursor)
            .copied()
            .unwrap_or(0);
        self.radio.rx_cursor += 1;
        if self.radio.rx_cursor >= front.payload.len() {
            self.radio.rx_queue.pop_front();
            self.radio.rx_cursor = 0;
        }
        word
    }

    fn rx_drop(&mut self) {
        self.radio.rx_queue.pop_front();
        self.radio.rx_cursor = 0;
    }
}

impl Bus for Devices {
    fn port_in(&mut self, p: u8, pc: u16, _cycle: u64) -> Result<u16, VmError> {
        Ok(match p {
            port::ADC_DATA => self.adc.data,
            port::RADIO_STATUS => {
                let mut s = 0;
                if self.radio.tx_busy {
                    s |= port::STATUS_TX_BUSY;
                }
                if self.radio.send_failed {
                    s |= port::STATUS_SEND_FAILED;
                }
                s
            }
            port::RADIO_RX_LEN => self
                .radio
                .rx_queue
                .front()
                .map(|pkt| (pkt.payload.len() - self.radio.rx_cursor) as u16)
                .unwrap_or(0),
            port::RADIO_RX_POP => self.rx_pop(),
            port::RADIO_RX_SRC => self.radio.rx_queue.front().map(|pkt| pkt.src).unwrap_or(0),
            port::RAND => self.rng.gen(),
            port::NODE_ID => self.config.node_id,
            _ => return Err(VmError::BadPort { pc, port: p }),
        })
    }

    fn port_out(&mut self, p: u8, value: u16, pc: u16, cycle: u64) -> Result<(), VmError> {
        match p {
            port::TIMER0_PERIOD => self.timers[0].period_ticks = value,
            port::TIMER1_PERIOD => self.timers[1].period_ticks = value,
            port::TIMER0_CTRL => self.timer_ctrl(0, value, cycle),
            port::TIMER1_CTRL => self.timer_ctrl(1, value, cycle),
            port::ADC_CTRL => {
                if value != 0 {
                    self.start_adc(cycle);
                }
            }
            port::RADIO_TX_PUSH => {
                if self.radio.tx_buf.len() < MAX_PAYLOAD_WORDS {
                    self.radio.tx_buf.push(value);
                }
            }
            port::RADIO_SEND => self.radio_send(value, cycle),
            port::RADIO_RX_DROP => self.rx_drop(),
            port::UART_OUT => self.uart.push(value),
            _ => return Err(VmError::BadPort { pc, port: p }),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices() -> Devices {
        Devices::new(NodeConfig::default())
    }

    #[test]
    fn timer_fires_periodically() {
        let mut d = devices();
        d.port_out(port::TIMER0_PERIOD, 2, 0, 0).unwrap(); // 512 cycles
        d.port_out(port::TIMER0_CTRL, 1, 0, 0).unwrap();
        assert_eq!(d.next_event_cycle(), Some(512));
        assert!(d.process_due(512));
        assert!(d.has_pending());
        assert_eq!(d.take_pending(|_| true), Some(irq::TIMER0));
        // Re-armed.
        assert_eq!(d.next_event_cycle(), Some(1024));
    }

    #[test]
    fn stopped_timer_does_not_fire() {
        let mut d = devices();
        d.port_out(port::TIMER0_PERIOD, 1, 0, 0).unwrap();
        d.port_out(port::TIMER0_CTRL, 1, 0, 0).unwrap();
        d.port_out(port::TIMER0_CTRL, 0, 0, 10).unwrap();
        d.process_due(10_000);
        assert!(!d.has_pending());
    }

    #[test]
    fn reprogrammed_timer_invalidates_stale_event() {
        let mut d = devices();
        d.port_out(port::TIMER0_PERIOD, 1, 0, 0).unwrap(); // 256
        d.port_out(port::TIMER0_CTRL, 1, 0, 0).unwrap();
        d.port_out(port::TIMER0_PERIOD, 4, 0, 100).unwrap(); // 1024
        d.port_out(port::TIMER0_CTRL, 1, 0, 100).unwrap(); // restart
        d.process_due(256); // stale event fires as no-op
        assert!(!d.has_pending());
        d.process_due(100 + 1024);
        assert!(d.has_pending());
    }

    #[test]
    fn adc_conversion_latency_and_sample() {
        let mut d = Devices::new(NodeConfig {
            adc: AdcConfig {
                latency_cycles: 100,
                jitter_cycles: 0,
                sensor_base: 500,
                sensor_noise: 0,
            },
            ..NodeConfig::default()
        });
        d.port_out(port::ADC_CTRL, 1, 0, 50).unwrap();
        d.process_due(149);
        assert!(!d.has_pending());
        d.process_due(150);
        assert_eq!(d.take_pending(|_| true), Some(irq::ADC));
        assert_eq!(d.port_in(port::ADC_DATA, 0, 150).unwrap(), 500);
    }

    #[test]
    fn adc_start_while_pending_is_ignored() {
        let mut d = devices();
        d.port_out(port::ADC_CTRL, 1, 0, 0).unwrap();
        d.port_out(port::ADC_CTRL, 1, 0, 1).unwrap();
        let first = d.next_event_cycle().unwrap();
        d.process_due(first);
        assert_eq!(d.next_event_cycle(), None, "only one conversion scheduled");
    }

    #[test]
    fn radio_send_sets_busy_then_txdone() {
        let mut d = devices();
        d.port_out(port::RADIO_TX_PUSH, 11, 0, 0).unwrap();
        d.port_out(port::RADIO_TX_PUSH, 22, 0, 0).unwrap();
        d.port_out(port::RADIO_SEND, 5, 0, 100).unwrap();
        assert!(d.radio_tx_busy());
        let status = d.port_in(port::RADIO_STATUS, 0, 101).unwrap();
        assert_eq!(status & port::STATUS_TX_BUSY, port::STATUS_TX_BUSY);
        let out = d.drain_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packet.dest, 5);
        assert_eq!(out[0].packet.payload, vec![11, 22]);
        let done = 100 + out[0].duration;
        d.process_due(done);
        assert!(!d.radio_tx_busy());
        assert_eq!(d.take_pending(|_| true), Some(irq::TXDONE));
    }

    #[test]
    fn radio_send_while_busy_fails_and_drops_payload() {
        let mut d = devices();
        d.port_out(port::RADIO_TX_PUSH, 1, 0, 0).unwrap();
        d.port_out(port::RADIO_SEND, 2, 0, 0).unwrap();
        d.port_out(port::RADIO_TX_PUSH, 9, 0, 10).unwrap();
        d.port_out(port::RADIO_SEND, 2, 0, 10).unwrap();
        let status = d.port_in(port::RADIO_STATUS, 0, 11).unwrap();
        assert_ne!(status & port::STATUS_SEND_FAILED, 0);
        assert_eq!(d.drain_outbox().len(), 1, "second packet was dropped");
    }

    #[test]
    fn broadcast_skips_handshake() {
        let cfg = NodeConfig::default();
        let mut d = Devices::new(cfg);
        d.port_out(port::RADIO_TX_PUSH, 1, 0, 0).unwrap();
        d.port_out(port::RADIO_SEND, port::BROADCAST, 0, 0).unwrap();
        let out = d.drain_outbox();
        assert_eq!(
            out[0].duration,
            cfg.radio.overhead_cycles + cfg.radio.per_word_cycles
        );
    }

    #[test]
    fn rx_delivery_raises_irq_and_pops_in_order() {
        let mut d = devices();
        d.inject_rx(
            100,
            Packet {
                src: 7,
                dest: 0,
                payload: vec![3, 4],
            },
        );
        d.process_due(100);
        assert_eq!(d.take_pending(|_| true), Some(irq::RX));
        assert_eq!(d.port_in(port::RADIO_RX_SRC, 0, 100).unwrap(), 7);
        assert_eq!(d.port_in(port::RADIO_RX_LEN, 0, 100).unwrap(), 2);
        assert_eq!(d.port_in(port::RADIO_RX_POP, 0, 100).unwrap(), 3);
        assert_eq!(d.port_in(port::RADIO_RX_LEN, 0, 100).unwrap(), 1);
        assert_eq!(d.port_in(port::RADIO_RX_POP, 0, 100).unwrap(), 4);
        assert_eq!(d.rx_queue_len(), 0, "packet auto-dropped after last word");
        assert_eq!(d.port_in(port::RADIO_RX_POP, 0, 100).unwrap(), 0);
    }

    #[test]
    fn rx_refresh_re_raises_for_queued_packets() {
        let mut d = devices();
        for i in 0..2 {
            d.inject_rx(
                10,
                Packet {
                    src: i,
                    dest: 0,
                    payload: vec![i],
                },
            );
        }
        d.process_due(10);
        assert_eq!(d.take_pending(|_| true), Some(irq::RX));
        d.port_out(port::RADIO_RX_DROP, 0, 0, 10).unwrap();
        assert!(!d.has_pending());
        d.refresh_rx_pending();
        assert_eq!(d.take_pending(|_| true), Some(irq::RX));
    }

    #[test]
    fn rand_stream_is_deterministic_per_seed() {
        let mut a = Devices::new(NodeConfig {
            seed: 1,
            ..NodeConfig::default()
        });
        let mut b = Devices::new(NodeConfig {
            seed: 1,
            ..NodeConfig::default()
        });
        for _ in 0..8 {
            assert_eq!(
                a.port_in(port::RAND, 0, 0).unwrap(),
                b.port_in(port::RAND, 0, 0).unwrap()
            );
        }
    }

    #[test]
    fn uart_captures_words() {
        let mut d = devices();
        d.port_out(port::UART_OUT, 0xABCD, 0, 0).unwrap();
        assert_eq!(d.uart(), &[0xABCD]);
    }

    #[test]
    fn bad_port_faults() {
        let mut d = devices();
        assert!(matches!(
            d.port_in(0x7F, 3, 0),
            Err(VmError::BadPort { pc: 3, port: 0x7F })
        ));
    }

    #[test]
    fn take_pending_respects_eligibility_and_priority() {
        let mut d = devices();
        d.raise(irq::ADC);
        d.raise(irq::TIMER0);
        assert_eq!(d.take_pending(|n| n != irq::TIMER0), Some(irq::ADC));
        assert_eq!(d.take_pending(|_| true), Some(irq::TIMER0));
        assert_eq!(d.take_pending(|_| true), None);
    }
}
