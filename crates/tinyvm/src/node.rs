//! A complete sensor node: CPU + peripherals + TinyOS-like scheduler.
//!
//! The node owns the run loop that enforces the paper's concurrency model:
//!
//! * **Rule 1** — an interrupt handler is triggered only by its hardware
//!   interrupt (device events raise pending lines; the loop vectors them);
//! * **Rule 2** — handlers and tasks run to completion unless preempted by
//!   *other* interrupt handlers (a line is masked while in service; tasks
//!   are preempted by any dispatchable line);
//! * **Rule 3** — tasks are posted by handlers or other tasks and executed
//!   in FIFO order, only when no handler is in service.
//!
//! The node also emits the system lifecycle sequence and per-boundary
//! instruction-count segments to a [`TraceSink`], and keeps the
//! ground-truth interval record used to validate trace inference.

use crate::cpu::{Bus, Cpu, CpuEvent, INT_DISPATCH_CYCLES};
use crate::devices::{Devices, NodeConfig, OutgoingPacket, Packet, TimingModel};
use crate::error::VmError;
use crate::ground_truth::{GtInterval, GtTracker, InstanceId};
use crate::isa::{irq, TaskId};
use crate::program::Program;
use crate::trace::{LifecycleItem, TraceSink};
use std::collections::VecDeque;
use std::sync::Arc;

/// Cycles consumed by the scheduler dequeuing and starting a task.
pub const TASK_DISPATCH_CYCLES: u64 = 2;

/// A sensor node executing one program.
#[derive(Debug, Clone)]
pub struct Node {
    program: Arc<Program>,
    cpu: Cpu,
    devices: Devices,
    cycle: u64,
    event_index: usize,
    task_queue: VecDeque<(TaskId, Option<InstanceId>)>,
    current_task: Option<(TaskId, Option<InstanceId>)>,
    int_instances: Vec<InstanceId>,
    gt: GtTracker,
    seg_counts: Vec<u32>,
    instructions_retired: u64,
    fault: Option<VmError>,
}

impl Node {
    /// Creates a node at cycle 0 with the program loaded and `main` entered.
    pub fn new(program: Arc<Program>, config: NodeConfig) -> Node {
        let cpu = Cpu::new(&program, config.mem_words);
        let seg_counts = vec![0; program.len()];
        Node {
            cpu,
            devices: Devices::new(config),
            program,
            cycle: 0,
            event_index: 0,
            task_queue: VecDeque::new(),
            current_task: None,
            int_instances: Vec::new(),
            gt: GtTracker::new(),
            seg_counts,
            instructions_retired: 0,
            fault: None,
        }
    }

    /// The node's current local cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// This node's id.
    pub fn id(&self) -> u16 {
        self.devices.config().node_id
    }

    /// The loaded program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Whether the node executed `halt` or faulted.
    pub fn halted(&self) -> bool {
        self.cpu.halted || self.fault.is_some()
    }

    /// The machine fault that stopped the node, if any.
    pub fn fault(&self) -> Option<&VmError> {
        self.fault.as_ref()
    }

    /// Total instructions retired so far.
    pub fn instructions_retired(&self) -> u64 {
        self.instructions_retired
    }

    /// Words written to the UART debug port.
    pub fn uart(&self) -> &[u16] {
        self.devices.uart()
    }

    /// Ground-truth event-handling intervals recorded so far.
    pub fn ground_truth(&self) -> &[GtInterval] {
        self.gt.intervals()
    }

    /// Direct read access to data memory (tests, oracles).
    pub fn mem(&self) -> &[u16] {
        &self.cpu.mem
    }

    /// Removes and returns packets the radio transmitted.
    pub fn drain_outbox(&mut self) -> Vec<OutgoingPacket> {
        self.devices.drain_outbox()
    }

    /// Schedules an inbound packet delivery (used by the network simulator).
    pub fn inject_rx(&mut self, at_cycle: u64, packet: Packet) {
        self.devices.inject_rx(at_cycle, packet);
    }

    /// The earliest cycle at which the node has work, if it is currently
    /// unable to execute instructions (idle or sleeping): the next device
    /// event. Returns `None` when the node is runnable right now or
    /// permanently out of work.
    pub fn next_wake_cycle(&self) -> Option<u64> {
        self.devices.next_event_cycle()
    }

    fn current_owner(&self) -> Option<InstanceId> {
        if let Some(&inst) = self.int_instances.last() {
            Some(inst)
        } else {
            self.current_task.as_ref().and_then(|&(_, owner)| owner)
        }
    }

    fn flush_segment(&mut self, sink: &mut dyn TraceSink) {
        sink.segment(&self.seg_counts);
        self.seg_counts.fill(0);
    }

    fn emit(&mut self, sink: &mut dyn TraceSink, item: LifecycleItem) -> usize {
        self.flush_segment(sink);
        sink.lifecycle(self.cycle, item);
        let idx = self.event_index;
        self.event_index += 1;
        idx
    }

    /// Runs the node until `limit`, or until it halts or faults. An
    /// instruction that begins just before `limit` may finish a few cycles
    /// past it (bounded by the most expensive instruction), so callers doing
    /// conservative synchronization must budget that slack in their
    /// lookahead.
    ///
    /// The final segment is **not** flushed; call [`Node::finish`] once at
    /// the end of the whole run.
    ///
    /// # Errors
    ///
    /// Returns the machine fault if the program faults. The fault is also
    /// latched: subsequent calls return it again without executing.
    pub fn advance(&mut self, limit: u64, sink: &mut dyn TraceSink) -> Result<(), VmError> {
        if let Some(f) = &self.fault {
            return Err(f.clone());
        }
        while self.cycle < limit && !self.cpu.halted {
            self.devices.process_due(self.cycle);

            // Interrupt dispatch: highest-priority pending line that is
            // enabled, not in service, and vectored. Under the TOSSIM-style
            // zero-cost model events are strictly sequential: a handler is
            // only dispatched when nothing else is executing.
            let dispatch_ok = self.cpu.flags.i
                && (self.devices.config().timing == TimingModel::CycleAccurate
                    || !self.cpu.runnable());
            if dispatch_ok {
                let vectors = &self.program.vectors;
                let cpu = &self.cpu;
                if let Some(line) = self
                    .devices
                    .take_pending(|n| !cpu.irq_in_service(n) && vectors[n as usize].is_some())
                {
                    let vector = self.program.vectors[line as usize].expect("checked above");
                    let idx = self.emit(sink, LifecycleItem::Int(line));
                    let inst = self.gt.on_int(line, idx, self.cycle);
                    self.int_instances.push(inst);
                    self.cpu.enter_interrupt(line, vector);
                    if self.devices.config().timing == TimingModel::CycleAccurate {
                        self.cycle += INT_DISPATCH_CYCLES;
                    }
                    continue;
                }
                // Unvectored pending lines behave like masked interrupts.
                for n in 0..irq::NUM_IRQS as u8 {
                    if self.program.vectors[n as usize].is_none() {
                        self.devices.clear_pending(n);
                    }
                }
            }

            if self.cpu.runnable() {
                let step = {
                    let program = &self.program;
                    match self.cpu.step(program, &mut self.devices, self.cycle) {
                        Ok(s) => s,
                        Err(e) => {
                            self.fault = Some(e.clone());
                            return Err(e);
                        }
                    }
                };
                self.seg_counts[step.pc as usize] += 1;
                self.instructions_retired += 1;
                if self.devices.config().timing == TimingModel::CycleAccurate {
                    self.cycle += step.cycles;
                }
                match step.event {
                    Some(CpuEvent::Posted(task)) => {
                        if self.task_queue.len() >= self.devices.config().task_queue_capacity {
                            let e = VmError::TaskQueueFull { pc: step.pc };
                            self.fault = Some(e.clone());
                            return Err(e);
                        }
                        let owner = self.current_owner();
                        self.task_queue.push_back((task, owner));
                        self.emit(sink, LifecycleItem::PostTask(task));
                        self.gt.on_post(owner);
                    }
                    Some(CpuEvent::Reti { irq: line }) => {
                        let idx = self.emit(sink, LifecycleItem::Reti);
                        if let Some(inst) = self.int_instances.pop() {
                            self.gt.on_reti(inst, idx, self.cycle);
                        }
                        if line == irq::RX {
                            self.devices.refresh_rx_pending();
                        }
                    }
                    Some(CpuEvent::Returned) => {
                        if let Some((task, owner)) = self.current_task.take() {
                            let idx = self.emit(sink, LifecycleItem::TaskEnd(task));
                            self.gt.on_task_end(owner, idx, self.cycle);
                        }
                        // Returning from `main` simply enters the scheduler.
                    }
                    Some(CpuEvent::Slept) | Some(CpuEvent::Halted) | None => {}
                }
                continue;
            }

            // Not runnable: idle (scheduler context) or sleeping.
            let can_run_task = !self.cpu.is_active()
                && self.cpu.int_depth() == 0
                && !self.cpu.sleeping
                && !self.task_queue.is_empty();
            if can_run_task {
                let (task, owner) = self.task_queue.pop_front().expect("checked non-empty");
                self.emit(sink, LifecycleItem::RunTask(task));
                let entry = self.program.tasks[task.index()].entry;
                self.current_task = Some((task, owner));
                self.cpu.enter(entry);
                if self.devices.config().timing == TimingModel::CycleAccurate {
                    self.cycle += TASK_DISPATCH_CYCLES;
                }
                continue;
            }

            // Park until the next device event (or the limit).
            match self.devices.next_event_cycle() {
                Some(c) if c <= self.cycle => {
                    // Defensive: events due now are processed next turn.
                    self.cycle += 1;
                }
                Some(c) => self.cycle = c.min(limit),
                None => self.cycle = limit,
            }
        }
        Ok(())
    }

    /// Flushes the final instruction-count segment. Call exactly once, after
    /// the last [`Node::advance`] of a run.
    pub fn finish(&mut self, sink: &mut dyn TraceSink) {
        self.flush_segment(sink);
    }

    /// Convenience: runs the node to `limit` cycles and finishes the trace.
    ///
    /// # Errors
    ///
    /// Propagates machine faults from [`Node::advance`]; the final segment
    /// is flushed even on fault so recorded traces stay well-formed.
    pub fn run(&mut self, limit: u64, sink: &mut dyn TraceSink) -> Result<(), VmError> {
        let result = self.advance(limit, sink);
        self.finish(sink);
        result
    }
}

/// Read-only bus view used nowhere at runtime but handy in diagnostics.
impl Node {
    /// Reads a device port out-of-band (does not consume cycles). Intended
    /// for tests and oracles; uses the same semantics as the `in`
    /// instruction and may mutate device-side read effects (e.g. RX pops).
    pub fn peek_port(&mut self, p: u8) -> Result<u16, VmError> {
        self.devices.port_in(p, 0, self.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::trace::NullSink;

    /// A sink that records everything, used across node tests.
    #[derive(Default)]
    struct VecSink {
        events: Vec<(u64, LifecycleItem)>,
        segments: Vec<Vec<u32>>,
    }

    impl TraceSink for VecSink {
        fn lifecycle(&mut self, cycle: u64, item: LifecycleItem) {
            self.events.push((cycle, item));
        }
        fn segment(&mut self, counts: &[u32]) {
            self.segments.push(counts.to_vec());
        }
    }

    fn node(src: &str) -> Node {
        let p = Arc::new(assemble(src).unwrap());
        Node::new(p, NodeConfig::default())
    }

    const TIMER_APP: &str = "\
.handler TIMER0 on_timer
.task blink
.data count 1
main:
 ldi r1, 4        ; 4 ticks = 1024 cycles
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
on_timer:
 post blink
 reti
blink:
 lda r1, count
 addi r1, 1
 sta count, r1
 ret
";

    #[test]
    fn timer_app_runs_tasks() {
        let mut n = node(TIMER_APP);
        let mut sink = VecSink::default();
        n.run(1_000_000, &mut sink).unwrap();
        let count_addr = n.program().label("count").unwrap();
        let fired = n.mem()[count_addr as usize];
        // 1,000,000 cycles / 1024-cycle period ~ 976 fires.
        assert!(fired > 900, "timer fired {fired} times");
        // Lifecycle alternation: k events, k+1 segments.
        assert_eq!(sink.segments.len(), sink.events.len() + 1);
        // Pattern per fire: Int, Post, Reti, Run, TaskEnd.
        let kinds: Vec<_> = sink.events.iter().take(5).map(|(_, e)| *e).collect();
        assert_eq!(
            kinds,
            vec![
                LifecycleItem::Int(irq::TIMER0),
                LifecycleItem::PostTask(TaskId(0)),
                LifecycleItem::Reti,
                LifecycleItem::RunTask(TaskId(0)),
                LifecycleItem::TaskEnd(TaskId(0)),
            ]
        );
    }

    #[test]
    fn ground_truth_matches_timer_pattern() {
        let mut n = node(TIMER_APP);
        n.run(100_000, &mut NullSink).unwrap();
        let gt = n.ground_truth();
        assert!(!gt.is_empty());
        for iv in gt.iter().take(gt.len() - 1) {
            assert!(iv.is_complete());
            assert_eq!(iv.irq, irq::TIMER0);
            assert_eq!(iv.task_count, 1);
            // Int at i, TaskEnd at i+4 (Post, Reti, Run between).
            assert_eq!(iv.end_index.unwrap(), iv.start_index + 4);
        }
    }

    #[test]
    fn instruction_counts_sum_to_retired() {
        let mut n = node(TIMER_APP);
        let mut sink = VecSink::default();
        n.run(50_000, &mut sink).unwrap();
        let total: u64 = sink
            .segments
            .iter()
            .flat_map(|s| s.iter())
            .map(|&c| c as u64)
            .sum();
        assert_eq!(total, n.instructions_retired());
    }

    #[test]
    fn node_never_exceeds_limit_by_more_than_one_instruction() {
        let mut n = node(TIMER_APP);
        n.advance(12_345, &mut NullSink).unwrap();
        assert!(n.cycle() <= 12_345 + 8, "cycle {}", n.cycle());
    }

    #[test]
    fn halt_stops_the_node() {
        let mut n = node("main:\n halt\n");
        n.run(1_000, &mut NullSink).unwrap();
        assert!(n.halted());
        assert!(n.cycle() < 1_000);
    }

    #[test]
    fn fault_is_latched() {
        let mut n = node("main:\n in r1, 0x7F\n ret\n");
        let e = n.run(1_000, &mut NullSink).unwrap_err();
        assert!(matches!(e, VmError::BadPort { .. }));
        assert!(n.halted());
        let e2 = n.advance(2_000, &mut NullSink).unwrap_err();
        assert_eq!(e, e2);
    }

    #[test]
    fn unvectored_interrupts_are_dropped() {
        // Starts timer0 but has no handler: node must not fault or spin.
        let mut n = node("main:\n ldi r1, 1\n out TIMER0_PERIOD, r1\n out TIMER0_CTRL, r1\n ret\n");
        let mut sink = VecSink::default();
        n.run(10_000, &mut sink).unwrap();
        assert!(sink.events.is_empty());
        assert_eq!(n.cycle(), 10_000);
    }

    #[test]
    fn nested_preemption_by_different_line() {
        // TIMER0 handler busy-loops long enough for TIMER1 to preempt it.
        let src = "\
.handler TIMER0 slow
.handler TIMER1 quick
.data hits 1
main:
 ldi r1, 8
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ldi r1, 9
 out TIMER1_PERIOD, r1
 ldi r1, 1
 out TIMER1_CTRL, r1
 ret
slow:
 ldi r2, 2000
busy:
 subi r2, 1
 brne busy
 reti
quick:
 lda r3, hits
 addi r3, 1
 sta hits, r3
 reti
";
        let mut n = node(src);
        let mut sink = VecSink::default();
        n.run(200_000, &mut sink).unwrap();
        // Look for Int(1) nested inside Int(0) .. Reti.
        let mut depth0 = 0;
        let mut nested = false;
        let mut stack = Vec::new();
        for (_, ev) in &sink.events {
            match ev {
                LifecycleItem::Int(n) => {
                    if *n == 0 {
                        depth0 += 1;
                    } else if depth0 > 0 {
                        nested = true;
                    }
                    stack.push(*n);
                }
                LifecycleItem::Reti => {
                    if let Some(line) = stack.pop() {
                        if line == 0 {
                            depth0 -= 1;
                        }
                    }
                }
                _ => {}
            }
        }
        assert!(nested, "TIMER1 should preempt TIMER0's slow handler");
    }

    #[test]
    fn same_line_cannot_preempt_itself() {
        // TIMER0 handler runs longer than the timer period; fires must
        // queue, not nest.
        let src = "\
.handler TIMER0 slow
main:
 ldi r1, 1
 out TIMER0_PERIOD, r1
 out TIMER0_CTRL, r1
 ret
slow:
 ldi r2, 1000
busy:
 subi r2, 1
 brne busy
 reti
";
        let mut n = node(src);
        let mut sink = VecSink::default();
        n.run(50_000, &mut sink).unwrap();
        let mut depth = 0;
        for (_, ev) in &sink.events {
            match ev {
                LifecycleItem::Int(0) => {
                    depth += 1;
                    assert!(depth <= 1, "TIMER0 handler nested in itself");
                }
                LifecycleItem::Reti => depth -= 1,
                _ => {}
            }
        }
    }

    #[test]
    fn tasks_fifo_order() {
        let src = "\
.handler TIMER0 h
.task a
.task b
.data log 4
.data cursor 1
main:
 ldi r1, 4
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
h:
 post a
 post b
 out TIMER0_CTRL, r0   ; r0 == 0: one-shot
 reti
a:
 ldi r2, 1
 call logv
 ret
b:
 ldi r2, 2
 call logv
 ret
logv:
 lda r3, cursor
 ldi r4, log
 add r4, r3
 st [r4], r2
 addi r3, 1
 sta cursor, r3
 ret
";
        let mut n = node(src);
        n.run(50_000, &mut NullSink).unwrap();
        let log_addr = n.program().label("log").unwrap() as usize;
        assert_eq!(&n.mem()[log_addr..log_addr + 2], &[1, 2]);
    }

    #[test]
    fn boot_task_posted_from_main() {
        let src = "\
.task boot
.data flag 1
main:
 post boot
 ret
boot:
 ldi r1, 77
 sta flag, r1
 ret
";
        let mut n = node(src);
        let mut sink = VecSink::default();
        n.run(1_000, &mut sink).unwrap();
        let flag = n.program().label("flag").unwrap();
        assert_eq!(n.mem()[flag as usize], 77);
        assert!(n.ground_truth().is_empty(), "boot tasks own no instance");
        assert_eq!(
            sink.events.iter().map(|(_, e)| *e).collect::<Vec<_>>(),
            vec![
                LifecycleItem::PostTask(TaskId(0)),
                LifecycleItem::RunTask(TaskId(0)),
                LifecycleItem::TaskEnd(TaskId(0)),
            ]
        );
    }

    #[test]
    fn task_queue_overflow_faults() {
        let src = "\
.task t
main:
lp:
 post t
 jmp lp
t:
 ret
";
        let p = Arc::new(assemble(src).unwrap());
        let mut n = Node::new(
            p,
            NodeConfig {
                task_queue_capacity: 4,
                ..NodeConfig::default()
            },
        );
        let e = n.run(10_000, &mut NullSink).unwrap_err();
        assert!(matches!(e, VmError::TaskQueueFull { .. }));
    }

    #[test]
    fn sleep_then_timer_wakes() {
        let src = "\
.handler TIMER0 h
.data woke 1
main:
 ldi r1, 4
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 sleep
 ldi r1, 1
 sta woke, r1
 ret
h:
 out TIMER0_CTRL, r0
 reti
";
        let mut n = node(src);
        n.run(10_000, &mut NullSink).unwrap();
        let woke = n.program().label("woke").unwrap();
        assert_eq!(n.mem()[woke as usize], 1);
    }

    #[test]
    fn idle_node_parks_to_limit() {
        let mut n = node("main:\n ret\n");
        n.advance(5_000, &mut NullSink).unwrap();
        assert_eq!(n.cycle(), 5_000);
        assert!(!n.halted());
    }

    #[test]
    fn rx_injection_reaches_handler() {
        let src = "\
.handler RX on_rx
.data got 2
main:
 ret
on_rx:
 in r1, RADIO_RX_SRC
 sta got, r1
 in r1, RADIO_RX_POP
 sta got+1, r1
 reti
";
        let mut n = node(src);
        n.inject_rx(
            2_000,
            Packet {
                src: 9,
                dest: 0,
                payload: vec![55],
            },
        );
        n.run(10_000, &mut NullSink).unwrap();
        let got = n.program().label("got").unwrap() as usize;
        assert_eq!(n.mem()[got], 9);
        assert_eq!(n.mem()[got + 1], 55);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut n = node(TIMER_APP);
            let mut sink = VecSink::default();
            n.run(200_000, &mut sink).unwrap();
            (sink.events, n.instructions_retired())
        };
        let (a_events, a_retired) = run();
        let (b_events, b_retired) = run();
        assert_eq!(a_events, b_events);
        assert_eq!(a_retired, b_retired);
    }
}
