//! # TinyVM — a sensor-node emulator with TinyOS concurrency semantics
//!
//! TinyVM is the execution substrate of the Sentomist reproduction: a
//! deterministic, cycle-accounted MCU emulator standing in for Avrora in
//! ["Sentomist: Unveiling Transient Sensor Network Bugs via Symptom
//! Mining"](https://doi.org/10.1109/ICDCS.2010.75) (ICDCS 2010).
//!
//! It provides everything Sentomist's front-end needs from an emulator:
//!
//! * a small AVR-inspired ISA ([`isa`]) with per-instruction cycle costs,
//! * a two-pass assembler ([`asm`]) so applications are real machine
//!   programs with genuine per-instruction execution counts,
//! * vectored preemptive interrupts and a TinyOS-like FIFO task scheduler
//!   ([`node`]) implementing the paper's concurrency Rules 1–3,
//! * peripherals ([`devices`]): two periodic timers, an ADC with a
//!   synthetic sensor, a radio modelling occupancy and CSMA handshake
//!   timing, a UART capture port and a seeded RNG port,
//! * lifecycle tracing hooks ([`trace`]) emitting the paper's
//!   `postTask`/`runTask`/`int(n)`/`reti` stream plus instruction-count
//!   segments,
//! * ground-truth event-handling intervals ([`ground_truth`]) used to
//!   validate the trace-inference algorithm.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tinyvm::{asm, devices::NodeConfig, node::Node, trace::NullSink};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = asm::assemble(
//!     "\
//! .handler TIMER0 on_timer
//! .data ticks 1
//! main:
//!  ldi r1, 4
//!  out TIMER0_PERIOD, r1
//!  ldi r1, 1
//!  out TIMER0_CTRL, r1
//!  ret
//! on_timer:
//!  lda r1, ticks
//!  addi r1, 1
//!  sta ticks, r1
//!  reti
//! ",
//! )?;
//! let mut node = Node::new(Arc::new(program), NodeConfig::default());
//! node.run(100_000, &mut NullSink)?;
//! let ticks = node.program().label("ticks").unwrap();
//! assert!(node.mem()[ticks as usize] > 90);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod devices;
pub mod encode;
pub mod error;
pub mod ground_truth;
pub mod isa;
pub mod node;
pub mod program;
pub mod trace;

pub use asm::{assemble, assemble_with_symbols, SymbolTable};
pub use devices::{NodeConfig, OutgoingPacket, Packet, TimingModel};
pub use encode::{decode, disassemble, encode, render_op, DecodeError};
pub use error::VmError;
pub use isa::{Op, Reg, TaskId};
pub use node::Node;
pub use program::Program;
pub use trace::{LifecycleItem, NullSink, Tee, TraceSink};
