//! Binary instruction encoding and the disassembler.
//!
//! Sentomist's front-end (paper Figure 3) consumes *binary* application
//! code; this module defines the 32-bit machine-word encoding of the
//! TinyVM ISA — `[opcode:8][a:8][b:16]` — plus a disassembler that renders
//! programs back to readable listings with label annotations (used by the
//! CLI and by localization reports).

use crate::isa::{Cond, Op, Reg, TaskId};
use crate::program::Program;
use std::error::Error;
use std::fmt;

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode {
        /// The offending opcode.
        opcode: u8,
    },
    /// Operand out of range (register ≥ 16, shift ≥ 16, bad condition).
    BadOperand {
        /// The whole word.
        word: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode { opcode } => write!(f, "unknown opcode {opcode:#04x}"),
            DecodeError::BadOperand { word } => write!(f, "bad operand in word {word:#010x}"),
        }
    }
}

impl Error for DecodeError {}

mod opcode {
    pub const NOP: u8 = 0x00;
    pub const HALT: u8 = 0x01;
    pub const SLEEP: u8 = 0x02;
    pub const LDI: u8 = 0x03;
    pub const MOV: u8 = 0x04;
    pub const LD: u8 = 0x05;
    pub const ST: u8 = 0x06;
    pub const LDA: u8 = 0x07;
    pub const STA: u8 = 0x08;
    pub const ADD: u8 = 0x09;
    pub const SUB: u8 = 0x0A;
    pub const AND: u8 = 0x0B;
    pub const OR: u8 = 0x0C;
    pub const XOR: u8 = 0x0D;
    pub const MUL: u8 = 0x0E;
    pub const ADDI: u8 = 0x0F;
    pub const SUBI: u8 = 0x10;
    pub const CMP: u8 = 0x11;
    pub const CMPI: u8 = 0x12;
    pub const SHL: u8 = 0x13;
    pub const SHR: u8 = 0x14;
    pub const JMP: u8 = 0x15;
    pub const BR: u8 = 0x16;
    pub const CALL: u8 = 0x17;
    pub const RET: u8 = 0x18;
    pub const RETI: u8 = 0x19;
    pub const PUSH: u8 = 0x1A;
    pub const POP: u8 = 0x1B;
    pub const IN: u8 = 0x1C;
    pub const OUT: u8 = 0x1D;
    pub const POST: u8 = 0x1E;
    pub const SEI: u8 = 0x1F;
    pub const CLI: u8 = 0x20;
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ge => 3,
        Cond::Ltu => 4,
        Cond::Geu => 5,
    }
}

fn cond_from(code: u8) -> Option<Cond> {
    Some(match code {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Ge,
        4 => Cond::Ltu,
        5 => Cond::Geu,
        _ => return None,
    })
}

fn word(op: u8, a: u8, b: u16) -> u32 {
    (u32::from(op) << 24) | (u32::from(a) << 16) | u32::from(b)
}

/// Encodes one instruction into its 32-bit machine word.
pub fn encode(op: Op) -> u32 {
    match op {
        Op::Nop => word(opcode::NOP, 0, 0),
        Op::Halt => word(opcode::HALT, 0, 0),
        Op::Sleep => word(opcode::SLEEP, 0, 0),
        Op::Ldi(r, v) => word(opcode::LDI, r.0, v),
        Op::Mov(d, s) => word(opcode::MOV, d.0, u16::from(s.0)),
        Op::Ld(d, b, off) => word(
            opcode::LD,
            d.0,
            (u16::from(b.0) << 8) | u16::from(off as u8),
        ),
        Op::St(b, off, v) => word(
            opcode::ST,
            b.0,
            (u16::from(v.0) << 8) | u16::from(off as u8),
        ),
        Op::Lda(d, addr) => word(opcode::LDA, d.0, addr),
        Op::Sta(addr, s) => word(opcode::STA, s.0, addr),
        Op::Add(a, b) => word(opcode::ADD, a.0, u16::from(b.0)),
        Op::Sub(a, b) => word(opcode::SUB, a.0, u16::from(b.0)),
        Op::And(a, b) => word(opcode::AND, a.0, u16::from(b.0)),
        Op::Or(a, b) => word(opcode::OR, a.0, u16::from(b.0)),
        Op::Xor(a, b) => word(opcode::XOR, a.0, u16::from(b.0)),
        Op::Mul(a, b) => word(opcode::MUL, a.0, u16::from(b.0)),
        Op::Addi(r, v) => word(opcode::ADDI, r.0, v),
        Op::Subi(r, v) => word(opcode::SUBI, r.0, v),
        Op::Cmp(a, b) => word(opcode::CMP, a.0, u16::from(b.0)),
        Op::Cmpi(r, v) => word(opcode::CMPI, r.0, v),
        Op::Shl(r, s) => word(opcode::SHL, r.0, u16::from(s)),
        Op::Shr(r, s) => word(opcode::SHR, r.0, u16::from(s)),
        Op::Jmp(t) => word(opcode::JMP, 0, t),
        Op::Br(c, t) => word(opcode::BR, cond_code(c), t),
        Op::Call(t) => word(opcode::CALL, 0, t),
        Op::Ret => word(opcode::RET, 0, 0),
        Op::Reti => word(opcode::RETI, 0, 0),
        Op::Push(r) => word(opcode::PUSH, r.0, 0),
        Op::Pop(r) => word(opcode::POP, r.0, 0),
        Op::In(r, p) => word(opcode::IN, r.0, u16::from(p)),
        Op::Out(p, r) => word(opcode::OUT, r.0, u16::from(p)),
        Op::Post(t) => word(opcode::POST, 0, t.0),
        Op::Sei => word(opcode::SEI, 0, 0),
        Op::Cli => word(opcode::CLI, 0, 0),
    }
}

/// Decodes a 32-bit machine word back into an instruction.
///
/// # Errors
///
/// [`DecodeError`] on unknown opcodes or out-of-range operands.
pub fn decode(w: u32) -> Result<Op, DecodeError> {
    let op = (w >> 24) as u8;
    let a = (w >> 16) as u8;
    let b = w as u16;
    let reg = |n: u8| Reg::new(n).ok_or(DecodeError::BadOperand { word: w });
    let reg_b = |v: u16| {
        u8::try_from(v)
            .ok()
            .and_then(Reg::new)
            .ok_or(DecodeError::BadOperand { word: w })
    };
    Ok(match op {
        opcode::NOP => Op::Nop,
        opcode::HALT => Op::Halt,
        opcode::SLEEP => Op::Sleep,
        opcode::LDI => Op::Ldi(reg(a)?, b),
        opcode::MOV => Op::Mov(reg(a)?, reg_b(b)?),
        opcode::LD => Op::Ld(reg(a)?, reg((b >> 8) as u8)?, b as u8 as i8),
        opcode::ST => Op::St(reg(a)?, b as u8 as i8, reg((b >> 8) as u8)?),
        opcode::LDA => Op::Lda(reg(a)?, b),
        opcode::STA => Op::Sta(b, reg(a)?),
        opcode::ADD => Op::Add(reg(a)?, reg_b(b)?),
        opcode::SUB => Op::Sub(reg(a)?, reg_b(b)?),
        opcode::AND => Op::And(reg(a)?, reg_b(b)?),
        opcode::OR => Op::Or(reg(a)?, reg_b(b)?),
        opcode::XOR => Op::Xor(reg(a)?, reg_b(b)?),
        opcode::MUL => Op::Mul(reg(a)?, reg_b(b)?),
        opcode::ADDI => Op::Addi(reg(a)?, b),
        opcode::SUBI => Op::Subi(reg(a)?, b),
        opcode::CMP => Op::Cmp(reg(a)?, reg_b(b)?),
        opcode::CMPI => Op::Cmpi(reg(a)?, b),
        opcode::SHL => {
            let s = u8::try_from(b).map_err(|_| DecodeError::BadOperand { word: w })?;
            if s >= 16 {
                return Err(DecodeError::BadOperand { word: w });
            }
            Op::Shl(reg(a)?, s)
        }
        opcode::SHR => {
            let s = u8::try_from(b).map_err(|_| DecodeError::BadOperand { word: w })?;
            if s >= 16 {
                return Err(DecodeError::BadOperand { word: w });
            }
            Op::Shr(reg(a)?, s)
        }
        opcode::JMP => Op::Jmp(b),
        opcode::BR => Op::Br(cond_from(a).ok_or(DecodeError::BadOperand { word: w })?, b),
        opcode::CALL => Op::Call(b),
        opcode::RET => Op::Ret,
        opcode::RETI => Op::Reti,
        opcode::PUSH => Op::Push(reg(a)?),
        opcode::POP => Op::Pop(reg(a)?),
        opcode::IN => Op::In(
            reg(a)?,
            u8::try_from(b).map_err(|_| DecodeError::BadOperand { word: w })?,
        ),
        opcode::OUT => Op::Out(
            u8::try_from(b).map_err(|_| DecodeError::BadOperand { word: w })?,
            reg(a)?,
        ),
        opcode::POST => Op::Post(TaskId(b)),
        opcode::SEI => Op::Sei,
        opcode::CLI => Op::Cli,
        other => return Err(DecodeError::BadOpcode { opcode: other }),
    })
}

/// Encodes a whole program text into machine words.
pub fn encode_program(program: &Program) -> Vec<u32> {
    program.ops.iter().map(|&op| encode(op)).collect()
}

/// Renders one instruction in assembler syntax.
pub fn render_op(op: Op) -> String {
    match op {
        Op::Nop => "nop".into(),
        Op::Halt => "halt".into(),
        Op::Sleep => "sleep".into(),
        Op::Ldi(r, v) => format!("ldi {r}, {v}"),
        Op::Mov(d, s) => format!("mov {d}, {s}"),
        Op::Ld(d, b, o) => format!("ld {d}, [{b}{o:+}]"),
        Op::St(b, o, v) => format!("st [{b}{o:+}], {v}"),
        Op::Lda(d, a) => format!("lda {d}, {a}"),
        Op::Sta(a, s) => format!("sta {a}, {s}"),
        Op::Add(a, b) => format!("add {a}, {b}"),
        Op::Sub(a, b) => format!("sub {a}, {b}"),
        Op::And(a, b) => format!("and {a}, {b}"),
        Op::Or(a, b) => format!("or {a}, {b}"),
        Op::Xor(a, b) => format!("xor {a}, {b}"),
        Op::Mul(a, b) => format!("mul {a}, {b}"),
        Op::Addi(r, v) => format!("addi {r}, {v}"),
        Op::Subi(r, v) => format!("subi {r}, {v}"),
        Op::Cmp(a, b) => format!("cmp {a}, {b}"),
        Op::Cmpi(r, v) => format!("cmpi {r}, {v}"),
        Op::Shl(r, s) => format!("shl {r}, {s}"),
        Op::Shr(r, s) => format!("shr {r}, {s}"),
        Op::Jmp(t) => format!("jmp {t}"),
        Op::Br(c, t) => format!("br{c} {t}"),
        Op::Call(t) => format!("call {t}"),
        Op::Ret => "ret".into(),
        Op::Reti => "reti".into(),
        Op::Push(r) => format!("push {r}"),
        Op::Pop(r) => format!("pop {r}"),
        Op::In(r, p) => format!("in {r}, {p:#04x}"),
        Op::Out(p, r) => format!("out {p:#04x}, {r}"),
        Op::Post(t) => format!("post {}", t.0),
        Op::Sei => "sei".into(),
        Op::Cli => "cli".into(),
    }
}

/// Disassembles a program into an annotated listing: addresses, machine
/// words, label lines, and source-line references.
pub fn disassemble(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (pc, &op) in program.ops.iter().enumerate() {
        let pc16 = pc as u16;
        if let Some(label) = program.label_at(pc16) {
            let _ = writeln!(out, "{label}:");
        }
        let _ = writeln!(
            out,
            "  {:>4}  {:08x}  {:<24} ; line {}",
            pc,
            encode(op),
            render_op(op),
            program.source_line(pc16).unwrap_or(0),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn all_ops() -> Vec<Op> {
        vec![
            Op::Nop,
            Op::Halt,
            Op::Sleep,
            Op::Ldi(Reg(3), 0xABCD),
            Op::Mov(Reg(1), Reg(2)),
            Op::Ld(Reg(4), Reg(5), -3),
            Op::St(Reg(6), 7, Reg(8)),
            Op::Lda(Reg(9), 0x1234),
            Op::Sta(0x4321, Reg(10)),
            Op::Add(Reg(0), Reg(15)),
            Op::Sub(Reg(1), Reg(2)),
            Op::And(Reg(3), Reg(4)),
            Op::Or(Reg(5), Reg(6)),
            Op::Xor(Reg(7), Reg(8)),
            Op::Mul(Reg(9), Reg(10)),
            Op::Addi(Reg(11), 99),
            Op::Subi(Reg(12), 100),
            Op::Cmp(Reg(13), Reg(14)),
            Op::Cmpi(Reg(15), 0xFFFF),
            Op::Shl(Reg(1), 15),
            Op::Shr(Reg(2), 0),
            Op::Jmp(500),
            Op::Br(Cond::Eq, 1),
            Op::Br(Cond::Ne, 2),
            Op::Br(Cond::Lt, 3),
            Op::Br(Cond::Ge, 4),
            Op::Br(Cond::Ltu, 5),
            Op::Br(Cond::Geu, 6),
            Op::Call(77),
            Op::Ret,
            Op::Reti,
            Op::Push(Reg(3)),
            Op::Pop(Reg(4)),
            Op::In(Reg(5), 0x41),
            Op::Out(0x30, Reg(6)),
            Op::Post(TaskId(9)),
            Op::Sei,
            Op::Cli,
        ]
    }

    #[test]
    fn encode_decode_round_trips_every_op() {
        for op in all_ops() {
            let w = encode(op);
            assert_eq!(decode(w), Ok(op), "{op:?} <-> {w:#010x}");
        }
    }

    #[test]
    fn negative_offsets_survive() {
        for off in [-128i8, -1, 0, 1, 127] {
            let op = Op::Ld(Reg(1), Reg(2), off);
            assert_eq!(decode(encode(op)), Ok(op));
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(matches!(
            decode(0xFF00_0000),
            Err(DecodeError::BadOpcode { opcode: 0xFF })
        ));
    }

    #[test]
    fn bad_register_rejected() {
        // MOV with source register 200.
        let w = (u32::from(super::opcode::MOV) << 24) | (1 << 16) | 200;
        assert!(matches!(decode(w), Err(DecodeError::BadOperand { .. })));
    }

    #[test]
    fn bad_shift_rejected() {
        let w = (u32::from(super::opcode::SHL) << 24) | (1 << 16) | 16;
        assert!(matches!(decode(w), Err(DecodeError::BadOperand { .. })));
    }

    #[test]
    fn bad_condition_rejected() {
        let w = (u32::from(super::opcode::BR) << 24) | (9 << 16) | 1;
        assert!(matches!(decode(w), Err(DecodeError::BadOperand { .. })));
    }

    #[test]
    fn disassembly_lists_labels_and_lines() {
        let p = assemble("main:\n ldi r1, 7\n call f\n halt\nf:\n ret\n").unwrap();
        let listing = disassemble(&p);
        assert!(listing.contains("main:"));
        assert!(listing.contains("f:"));
        assert!(listing.contains("ldi r1, 7"));
        assert!(listing.contains("; line 2"));
    }

    #[test]
    fn whole_program_round_trips() {
        let p = assemble(
            ".task t\n.handler ADC h\nmain:\n post t\n ret\nh:\n reti\nt:\n ld r1, [r2-5]\n ret\n",
        )
        .unwrap();
        let words = encode_program(&p);
        let decoded: Vec<Op> = words.iter().map(|&w| decode(w).unwrap()).collect();
        assert_eq!(decoded, p.ops);
    }
}
