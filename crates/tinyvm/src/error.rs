//! Error types for program execution.

use std::error::Error;
use std::fmt;

/// A fatal machine fault raised during execution.
///
/// All variants carry the program counter (instruction index) at the
/// faulting instruction so that tooling can map the fault back to the
/// assembly source via [`crate::program::Program::source_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The PC left the program text.
    PcOutOfRange {
        /// Faulting program counter.
        pc: u16,
    },
    /// A load or store addressed memory outside the data segment.
    MemOutOfRange {
        /// Faulting program counter.
        pc: u16,
        /// The offending effective address.
        addr: u32,
    },
    /// The data stack overflowed into the data segment floor.
    StackOverflow {
        /// Faulting program counter.
        pc: u16,
    },
    /// `pop`/`ret` executed with an empty stack region.
    StackUnderflow {
        /// Faulting program counter.
        pc: u16,
    },
    /// `reti` executed while no interrupt handler was in service.
    RetiOutsideHandler {
        /// Faulting program counter.
        pc: u16,
    },
    /// The OS task queue is full.
    TaskQueueFull {
        /// Faulting program counter.
        pc: u16,
    },
    /// `in`/`out` addressed an unknown port.
    BadPort {
        /// Faulting program counter.
        pc: u16,
        /// The unknown port number.
        port: u8,
    },
    /// A `post` named a task id outside the program's task table.
    BadTask {
        /// Faulting program counter.
        pc: u16,
        /// The out-of-range task id.
        task: u16,
    },
    /// An interrupt fired for a line with no `.handler` vector.
    MissingVector {
        /// The unvectored IRQ line.
        irq: u8,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            VmError::MemOutOfRange { pc, addr } => {
                write!(f, "memory access to {addr:#x} out of range at pc {pc}")
            }
            VmError::StackOverflow { pc } => write!(f, "stack overflow at pc {pc}"),
            VmError::StackUnderflow { pc } => write!(f, "stack underflow at pc {pc}"),
            VmError::RetiOutsideHandler { pc } => {
                write!(f, "reti outside an interrupt handler at pc {pc}")
            }
            VmError::TaskQueueFull { pc } => write!(f, "task queue full at pc {pc}"),
            VmError::BadPort { pc, port } => write!(f, "unknown port {port:#x} at pc {pc}"),
            VmError::BadTask { pc, task } => write!(f, "unknown task id {task} at pc {pc}"),
            VmError::MissingVector { irq } => {
                write!(f, "no handler vector for interrupt {irq}")
            }
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_pc() {
        let e = VmError::StackOverflow { pc: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(VmError::PcOutOfRange { pc: 0 });
    }
}
