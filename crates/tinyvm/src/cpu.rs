//! The MCU execution core: registers, memory, flags, interrupt frames.
//!
//! The CPU is deliberately unaware of devices and of the OS scheduler: port
//! accesses go through a [`Bus`] implemented by the node, and `post`, `ret`
//! to the runtime sentinel, `reti`, `sleep` and `halt` are surfaced as
//! [`CpuEvent`]s for the node to act on.

use crate::error::VmError;
use crate::isa::{Cond, Op, TaskId, RETURN_SENTINEL};
use crate::program::Program;

/// Cycles consumed by hardware interrupt entry (vectoring + state save).
pub const INT_DISPATCH_CYCLES: u64 = 4;

/// Port-access interface provided to the CPU by the node.
pub trait Bus {
    /// Reads a device port.
    fn port_in(&mut self, port: u8, pc: u16, cycle: u64) -> Result<u16, VmError>;
    /// Writes a device port.
    fn port_out(&mut self, port: u8, value: u16, pc: u16, cycle: u64) -> Result<(), VmError>;
}

/// Status flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero.
    pub z: bool,
    /// Sign of the last result.
    pub n: bool,
    /// Unsigned borrow of the last compare/subtract (i.e. `a < b` unsigned).
    pub ltu: bool,
    /// Signed less-than of the last compare/subtract.
    pub lts: bool,
    /// Global interrupt enable.
    pub i: bool,
}

/// A saved interrupt frame.
///
/// The full register file is saved and restored around every handler,
/// modelling the register save/restore prologue and epilogue a compiler
/// generates for interrupt service routines: a preempted task must never
/// observe handler-clobbered registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntFrame {
    /// PC to resume at, or `None` if the CPU was idle/sleeping.
    pub saved_pc: Option<u16>,
    /// Saved flags.
    pub saved_flags: Flags,
    /// Saved general-purpose registers.
    pub saved_regs: [u16; crate::isa::NUM_REGS],
    /// The IRQ line being serviced by this frame.
    pub irq: u8,
}

/// Side effects of one instruction that the node must handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuEvent {
    /// `ret` popped the runtime sentinel: main or a task finished.
    Returned,
    /// `reti` completed; carries the IRQ line whose handler exited.
    Reti {
        /// The serviced IRQ line.
        irq: u8,
    },
    /// `post` executed.
    Posted(TaskId),
    /// `sleep` executed; the CPU is now parked until an interrupt.
    Slept,
    /// `halt` executed; the node is permanently stopped.
    Halted,
}

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepResult {
    /// Cycles consumed.
    pub cycles: u64,
    /// The PC of the retired instruction (for instruction counting).
    pub pc: u16,
    /// Event for the node, if any.
    pub event: Option<CpuEvent>,
}

/// The execution core.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers.
    pub regs: [u16; crate::isa::NUM_REGS],
    /// Program counter (instruction index).
    pub pc: u16,
    /// Stack pointer (next free slot; grows downward).
    pub sp: u16,
    /// Status flags.
    pub flags: Flags,
    /// Data memory (word-addressed).
    pub mem: Vec<u16>,
    /// Whether a `sleep` instruction parked the CPU.
    pub sleeping: bool,
    /// Whether `halt` stopped the CPU permanently.
    pub halted: bool,
    /// Whether a base context (main or a task) is currently executing.
    active: bool,
    /// Stack floor: `sp` may not descend below this (data segment guard).
    stack_floor: u16,
    int_frames: Vec<IntFrame>,
}

impl Cpu {
    /// Creates a CPU with zeroed memory of `mem_words` words, applying the
    /// program's data image and entering `main`.
    pub fn new(program: &Program, mem_words: u16) -> Cpu {
        let mut mem = vec![0u16; mem_words as usize];
        for &(addr, value) in &program.data_init {
            if let Some(slot) = mem.get_mut(addr as usize) {
                *slot = value;
            }
        }
        let mut cpu = Cpu {
            regs: [0; crate::isa::NUM_REGS],
            pc: 0,
            sp: mem_words.saturating_sub(1),
            flags: Flags {
                i: true,
                ..Flags::default()
            },
            mem,
            sleeping: false,
            halted: false,
            active: false,
            stack_floor: program.data_size,
            int_frames: Vec::new(),
        };
        cpu.enter(program.entry);
        cpu
    }

    /// Whether a base context (main or a task) is executing.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Number of nested interrupt handlers currently in service.
    pub fn int_depth(&self) -> usize {
        self.int_frames.len()
    }

    /// Whether the handler for `irq` is currently in service at any depth.
    pub fn irq_in_service(&self, irq: u8) -> bool {
        self.int_frames.iter().any(|f| f.irq == irq)
    }

    /// Whether the CPU can execute an instruction right now.
    pub fn runnable(&self) -> bool {
        !self.halted && !self.sleeping && (self.active || !self.int_frames.is_empty())
    }

    /// Begins executing a base context (main or a task) at `entry`.
    ///
    /// # Panics
    ///
    /// Panics if a base context is already active — the node must only call
    /// this from the scheduler, when the CPU is idle.
    pub fn enter(&mut self, entry: u16) {
        assert!(!self.active, "enter() while a base context is active");
        self.active = true;
        self.sleeping = false;
        self.pc = entry;
        // The runtime sentinel is implicit: `ret` with an empty frame is
        // detected via the pushed sentinel value.
        // Push it onto the data stack like a real call would.
        let slot = self.sp as usize;
        if let Some(s) = self.mem.get_mut(slot) {
            *s = RETURN_SENTINEL;
        }
        self.sp = self.sp.wrapping_sub(1);
    }

    /// Vectors an interrupt: saves the current context and jumps to `entry`.
    pub fn enter_interrupt(&mut self, irq: u8, entry: u16) {
        let saved_pc = if self.active || !self.int_frames.is_empty() {
            Some(self.pc)
        } else {
            None
        };
        self.int_frames.push(IntFrame {
            saved_pc,
            saved_flags: self.flags,
            saved_regs: self.regs,
            irq,
        });
        // Waking from `sleep` is permanent: after the handler returns,
        // execution resumes at the instruction following `sleep` (AVR-style
        // wake-up), so `sleeping` is cleared and not restored by `reti`.
        self.sleeping = false;
        self.pc = entry;
    }

    fn push_word(&mut self, value: u16, pc: u16) -> Result<(), VmError> {
        if self.sp < self.stack_floor || self.sp as usize >= self.mem.len() {
            return Err(VmError::StackOverflow { pc });
        }
        self.mem[self.sp as usize] = value;
        self.sp = self.sp.wrapping_sub(1);
        Ok(())
    }

    fn pop_word(&mut self, pc: u16) -> Result<u16, VmError> {
        let next = self.sp.wrapping_add(1);
        if next as usize >= self.mem.len() {
            return Err(VmError::StackUnderflow { pc });
        }
        self.sp = next;
        Ok(self.mem[next as usize])
    }

    fn mem_read(&self, addr: u32, pc: u16) -> Result<u16, VmError> {
        self.mem
            .get(addr as usize)
            .copied()
            .ok_or(VmError::MemOutOfRange { pc, addr })
    }

    fn mem_write(&mut self, addr: u32, value: u16, pc: u16) -> Result<(), VmError> {
        match self.mem.get_mut(addr as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(VmError::MemOutOfRange { pc, addr }),
        }
    }

    fn set_arith_flags(&mut self, result: u16) {
        self.flags.z = result == 0;
        self.flags.n = (result as i16) < 0;
        self.flags.lts = self.flags.n;
        // ltu untouched for pure logical results.
    }

    fn set_cmp_flags(&mut self, a: u16, b: u16) {
        let result = a.wrapping_sub(b);
        self.flags.z = result == 0;
        self.flags.n = (result as i16) < 0;
        self.flags.ltu = a < b;
        self.flags.lts = (a as i16) < (b as i16);
    }

    fn cond_holds(&self, cond: Cond) -> bool {
        match cond {
            Cond::Eq => self.flags.z,
            Cond::Ne => !self.flags.z,
            Cond::Lt => self.flags.lts,
            Cond::Ge => !self.flags.lts,
            Cond::Ltu => self.flags.ltu,
            Cond::Geu => !self.flags.ltu,
        }
    }

    fn effective_addr(base: u16, off: i8) -> u32 {
        (base as i32 + off as i32).rem_euclid(0x1_0000) as u32
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on machine faults (bad PC, memory violation,
    /// stack misuse, unknown port, `reti` outside a handler).
    ///
    /// # Panics
    ///
    /// Panics if called while the CPU is not [`Cpu::runnable`]; the node's
    /// main loop upholds this.
    pub fn step(
        &mut self,
        program: &Program,
        bus: &mut dyn Bus,
        cycle: u64,
    ) -> Result<StepResult, VmError> {
        assert!(self.runnable(), "step() on a non-runnable CPU");
        let pc = self.pc;
        let op = *program
            .ops
            .get(pc as usize)
            .ok_or(VmError::PcOutOfRange { pc })?;
        let mut cycles = op.cycles();
        let mut event = None;
        self.pc = self.pc.wrapping_add(1);

        match op {
            Op::Nop => {}
            Op::Halt => {
                self.halted = true;
                event = Some(CpuEvent::Halted);
            }
            Op::Sleep => {
                self.sleeping = true;
                event = Some(CpuEvent::Slept);
            }
            Op::Ldi(rd, imm) => self.regs[rd.index()] = imm,
            Op::Mov(rd, rs) => self.regs[rd.index()] = self.regs[rs.index()],
            Op::Ld(rd, base, off) => {
                let addr = Self::effective_addr(self.regs[base.index()], off);
                self.regs[rd.index()] = self.mem_read(addr, pc)?;
            }
            Op::St(base, off, rv) => {
                let addr = Self::effective_addr(self.regs[base.index()], off);
                let v = self.regs[rv.index()];
                self.mem_write(addr, v, pc)?;
            }
            Op::Lda(rd, addr) => self.regs[rd.index()] = self.mem_read(addr as u32, pc)?,
            Op::Sta(addr, rs) => {
                let v = self.regs[rs.index()];
                self.mem_write(addr as u32, v, pc)?;
            }
            Op::Add(rd, rs) => {
                let (r, carry) = self.regs[rd.index()].overflowing_add(self.regs[rs.index()]);
                self.regs[rd.index()] = r;
                self.set_arith_flags(r);
                self.flags.ltu = carry;
            }
            Op::Sub(rd, rs) => {
                let a = self.regs[rd.index()];
                let b = self.regs[rs.index()];
                self.set_cmp_flags(a, b);
                self.regs[rd.index()] = a.wrapping_sub(b);
            }
            Op::And(rd, rs) => {
                let r = self.regs[rd.index()] & self.regs[rs.index()];
                self.regs[rd.index()] = r;
                self.set_arith_flags(r);
            }
            Op::Or(rd, rs) => {
                let r = self.regs[rd.index()] | self.regs[rs.index()];
                self.regs[rd.index()] = r;
                self.set_arith_flags(r);
            }
            Op::Xor(rd, rs) => {
                let r = self.regs[rd.index()] ^ self.regs[rs.index()];
                self.regs[rd.index()] = r;
                self.set_arith_flags(r);
            }
            Op::Mul(rd, rs) => {
                let r = self.regs[rd.index()].wrapping_mul(self.regs[rs.index()]);
                self.regs[rd.index()] = r;
                self.set_arith_flags(r);
            }
            Op::Addi(rd, imm) => {
                let (r, carry) = self.regs[rd.index()].overflowing_add(imm);
                self.regs[rd.index()] = r;
                self.set_arith_flags(r);
                self.flags.ltu = carry;
            }
            Op::Subi(rd, imm) => {
                let a = self.regs[rd.index()];
                self.set_cmp_flags(a, imm);
                self.regs[rd.index()] = a.wrapping_sub(imm);
            }
            Op::Cmp(ra, rb) => {
                let (a, b) = (self.regs[ra.index()], self.regs[rb.index()]);
                self.set_cmp_flags(a, b);
            }
            Op::Cmpi(ra, imm) => {
                let a = self.regs[ra.index()];
                self.set_cmp_flags(a, imm);
            }
            Op::Shl(rd, amount) => {
                let r = self.regs[rd.index()] << amount;
                self.regs[rd.index()] = r;
                self.set_arith_flags(r);
            }
            Op::Shr(rd, amount) => {
                let r = self.regs[rd.index()] >> amount;
                self.regs[rd.index()] = r;
                self.set_arith_flags(r);
            }
            Op::Jmp(target) => self.pc = target,
            Op::Br(cond, target) => {
                if self.cond_holds(cond) {
                    self.pc = target;
                    cycles += 1;
                }
            }
            Op::Call(target) => {
                let ret_pc = self.pc;
                self.push_word(ret_pc, pc)?;
                self.pc = target;
            }
            Op::Ret => {
                let ret_pc = self.pop_word(pc)?;
                if ret_pc == RETURN_SENTINEL {
                    self.active = false;
                    event = Some(CpuEvent::Returned);
                } else {
                    self.pc = ret_pc;
                }
            }
            Op::Reti => {
                let frame = self
                    .int_frames
                    .pop()
                    .ok_or(VmError::RetiOutsideHandler { pc })?;
                // Preserve the handler's interrupt-enable choice is not
                // meaningful here: flags are fully restored, per AVR RETI
                // semantics (which also re-enables interrupts).
                self.flags = frame.saved_flags;
                self.regs = frame.saved_regs;
                match frame.saved_pc {
                    Some(saved) => self.pc = saved,
                    None => {
                        // Interrupt arrived while idle; stay idle.
                    }
                }
                event = Some(CpuEvent::Reti { irq: frame.irq });
            }
            Op::Push(rs) => {
                let v = self.regs[rs.index()];
                self.push_word(v, pc)?;
            }
            Op::Pop(rd) => {
                let v = self.pop_word(pc)?;
                self.regs[rd.index()] = v;
            }
            Op::In(rd, p) => {
                self.regs[rd.index()] = bus.port_in(p, pc, cycle)?;
            }
            Op::Out(p, rs) => {
                let v = self.regs[rs.index()];
                bus.port_out(p, v, pc, cycle)?;
            }
            Op::Post(task) => {
                if task.index() >= program.tasks.len() {
                    return Err(VmError::BadTask { pc, task: task.0 });
                }
                event = Some(CpuEvent::Posted(task));
            }
            Op::Sei => self.flags.i = true,
            Op::Cli => self.flags.i = false,
        }

        Ok(StepResult { cycles, pc, event })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    struct NoBus;
    impl Bus for NoBus {
        fn port_in(&mut self, port: u8, pc: u16, _cycle: u64) -> Result<u16, VmError> {
            Err(VmError::BadPort { pc, port })
        }
        fn port_out(&mut self, port: u8, _v: u16, pc: u16, _cycle: u64) -> Result<(), VmError> {
            Err(VmError::BadPort { pc, port })
        }
    }

    fn run_to_return(src: &str) -> Cpu {
        let p = assemble(src).unwrap();
        let mut cpu = Cpu::new(&p, 256);
        let mut bus = NoBus;
        for _ in 0..10_000 {
            let r = cpu.step(&p, &mut bus, 0).unwrap();
            if matches!(r.event, Some(CpuEvent::Returned) | Some(CpuEvent::Halted)) {
                return cpu;
            }
        }
        panic!("program did not return");
    }

    #[test]
    fn arithmetic_and_flags() {
        let cpu = run_to_return("main:\n ldi r1, 7\n ldi r2, 5\n add r1, r2\n ret\n");
        assert_eq!(cpu.regs[1], 12);
        assert!(!cpu.flags.z);
    }

    #[test]
    fn wrapping_add_sets_carry() {
        let cpu = run_to_return("main:\n ldi r1, 0xFFFF\n addi r1, 1\n ret\n");
        assert_eq!(cpu.regs[1], 0);
        assert!(cpu.flags.z);
        assert!(cpu.flags.ltu, "carry out recorded in ltu");
    }

    #[test]
    fn signed_vs_unsigned_compare() {
        // -1 (0xFFFF) vs 1: signed lt true, unsigned lt false.
        let cpu = run_to_return("main:\n ldi r1, 0xFFFF\n ldi r2, 1\n cmp r1, r2\n ret\n");
        assert!(cpu.flags.lts);
        assert!(!cpu.flags.ltu);
    }

    #[test]
    fn branches_taken_and_not() {
        let cpu = run_to_return(
            "main:\n ldi r1, 3\n cmpi r1, 3\n breq yes\n ldi r2, 1\nyes:\n ldi r3, 9\n ret\n",
        );
        assert_eq!(cpu.regs[2], 0, "breq should skip");
        assert_eq!(cpu.regs[3], 9);
    }

    #[test]
    fn call_and_ret_nest() {
        let cpu = run_to_return("main:\n call f\n ldi r2, 2\n ret\nf:\n ldi r1, 1\n ret\n");
        assert_eq!(cpu.regs[1], 1);
        assert_eq!(cpu.regs[2], 2);
    }

    #[test]
    fn push_pop_round_trip() {
        let cpu = run_to_return("main:\n ldi r1, 42\n push r1\n ldi r1, 0\n pop r2\n ret\n");
        assert_eq!(cpu.regs[2], 42);
    }

    #[test]
    fn memory_load_store() {
        let cpu = run_to_return(
            ".data buf 4\nmain:\n ldi r1, 99\n sta buf, r1\n lda r2, buf\n ldi r3, buf\n ld r4, [r3+0]\n ret\n",
        );
        assert_eq!(cpu.regs[2], 99);
        assert_eq!(cpu.regs[4], 99);
    }

    #[test]
    fn data_init_applied_at_reset() {
        let p = assemble(".word k 17\nmain:\n lda r1, k\n ret\n").unwrap();
        let cpu = Cpu::new(&p, 64);
        assert_eq!(cpu.mem[0], 17);
    }

    #[test]
    fn reti_outside_handler_faults() {
        let p = assemble("main:\n reti\n").unwrap();
        let mut cpu = Cpu::new(&p, 64);
        let e = cpu.step(&p, &mut NoBus, 0).unwrap_err();
        assert_eq!(e, VmError::RetiOutsideHandler { pc: 0 });
    }

    #[test]
    fn stack_overflow_detected() {
        // mem of 8 words, data_size 4 -> stack region is tiny.
        let p = assemble(".data pad 6\nmain:\nlp:\n push r1\n jmp lp\n").unwrap();
        let mut cpu = Cpu::new(&p, 8);
        let mut bus = NoBus;
        let mut saw_overflow = false;
        for _ in 0..64 {
            match cpu.step(&p, &mut bus, 0) {
                Err(VmError::StackOverflow { .. }) => {
                    saw_overflow = true;
                    break;
                }
                Err(e) => panic!("unexpected fault {e}"),
                Ok(_) => {}
            }
        }
        assert!(saw_overflow);
    }

    #[test]
    fn interrupt_entry_and_reti_restore_context() {
        let p = assemble(
            ".handler TIMER0 h\nmain:\n ldi r1, 1\n ldi r2, 2\n ret\nh:\n ldi r3, 3\n reti\n",
        )
        .unwrap();
        let mut cpu = Cpu::new(&p, 64);
        let mut bus = NoBus;
        // Execute first instruction of main.
        cpu.step(&p, &mut bus, 0).unwrap();
        let pc_before = cpu.pc;
        cpu.enter_interrupt(0, p.label("h").unwrap());
        assert_eq!(cpu.int_depth(), 1);
        assert!(cpu.irq_in_service(0));
        // Run the handler.
        cpu.step(&p, &mut bus, 0).unwrap();
        let r = cpu.step(&p, &mut bus, 0).unwrap();
        assert_eq!(r.event, Some(CpuEvent::Reti { irq: 0 }));
        assert_eq!(cpu.pc, pc_before);
        assert_eq!(cpu.int_depth(), 0);
        // The register file is restored: handler-local values do not leak
        // into the preempted context.
        assert_eq!(cpu.regs[3], 0);
        assert_eq!(cpu.regs[1], 1, "pre-interrupt registers preserved");
    }

    #[test]
    fn interrupt_while_idle_returns_to_idle() {
        let p = assemble(".handler TIMER0 h\nmain:\n ret\nh:\n reti\n").unwrap();
        let mut cpu = Cpu::new(&p, 64);
        let mut bus = NoBus;
        let r = cpu.step(&p, &mut bus, 0).unwrap();
        assert_eq!(r.event, Some(CpuEvent::Returned));
        assert!(!cpu.is_active());
        cpu.enter_interrupt(0, p.label("h").unwrap());
        assert!(cpu.runnable());
        let r = cpu.step(&p, &mut bus, 0).unwrap();
        assert_eq!(r.event, Some(CpuEvent::Reti { irq: 0 }));
        assert!(!cpu.runnable(), "CPU returns to idle after handler");
    }

    #[test]
    fn sleep_sets_flag_and_interrupt_wakes() {
        let p =
            assemble(".handler TIMER0 h\nmain:\n sleep\n ldi r1, 5\n ret\nh:\n reti\n").unwrap();
        let mut cpu = Cpu::new(&p, 64);
        let mut bus = NoBus;
        let r = cpu.step(&p, &mut bus, 0).unwrap();
        assert_eq!(r.event, Some(CpuEvent::Slept));
        assert!(!cpu.runnable());
        cpu.enter_interrupt(0, p.label("h").unwrap());
        cpu.step(&p, &mut bus, 0).unwrap(); // reti
                                            // Wake-up is permanent: execution resumes after the `sleep`.
        assert!(!cpu.sleeping);
        let r = cpu.step(&p, &mut bus, 0).unwrap();
        assert!(r.event.is_none());
        assert_eq!(cpu.regs[1], 5);
    }

    #[test]
    fn post_surfaces_event() {
        let p = assemble(".task t\nmain:\n post t\n ret\nt:\n ret\n").unwrap();
        let mut cpu = Cpu::new(&p, 64);
        let r = cpu.step(&p, &mut NoBus, 0).unwrap();
        assert_eq!(r.event, Some(CpuEvent::Posted(TaskId(0))));
    }

    #[test]
    fn mul_and_shifts() {
        let cpu = run_to_return(
            "main:\n ldi r1, 6\n ldi r2, 7\n mul r1, r2\n mov r3, r1\n shl r3, 2\n shr r3, 1\n ret\n",
        );
        assert_eq!(cpu.regs[1], 42);
        assert_eq!(cpu.regs[3], 84);
    }
}
