//! Lifecycle-trace hooks emitted by the VM.
//!
//! Sentomist's front-end observes the running node through a
//! [`TraceSink`]: the node reports every *system lifecycle* item (the
//! paper's `postTask` / `runTask` / `int(n)` / `reti`, plus `TaskEnd`,
//! which the paper's inference never consumes but which lets the analyzer
//! bound the wall-clock span of an event-handling interval exactly), and
//! flushes a *segment* — the per-instruction execution counts accumulated
//! since the previous lifecycle boundary — immediately **before** each
//! lifecycle item and once more at the end of the run.
//!
//! With `k` lifecycle events a complete trace therefore carries `k + 1`
//! segments, and the instructions executed between events `i` and `j`
//! are the element-wise sum of segments `i+1 ..= j`.

use crate::isa::TaskId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One item of the system lifecycle sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LifecycleItem {
    /// Entry of the interrupt handler for IRQ line `n` (paper: `int(n)`).
    Int(u8),
    /// Exit of an interrupt handler (paper: `reti`).
    Reti,
    /// A task was posted to the OS FIFO queue (paper: `postTask`).
    PostTask(TaskId),
    /// A task was dequeued and started (paper: `runTask`).
    RunTask(TaskId),
    /// A task ran to completion (not part of the paper's 4-item alphabet;
    /// used only to bound interval spans and validate inference).
    TaskEnd(TaskId),
}

impl LifecycleItem {
    /// Whether this item belongs to the paper's 4-item alphabet.
    pub fn is_core_item(self) -> bool {
        !matches!(self, LifecycleItem::TaskEnd(_))
    }
}

impl fmt::Display for LifecycleItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleItem::Int(n) => write!(f, "int({n})"),
            LifecycleItem::Reti => f.write_str("reti"),
            LifecycleItem::PostTask(t) => write!(f, "postTask({})", t.0),
            LifecycleItem::RunTask(t) => write!(f, "runTask({})", t.0),
            LifecycleItem::TaskEnd(t) => write!(f, "taskEnd({})", t.0),
        }
    }
}

/// Receiver of the lifecycle stream of one node.
///
/// The node calls [`TraceSink::segment`] with the instruction counts
/// accumulated since the previous boundary immediately before every
/// [`TraceSink::lifecycle`] call, and once more when the run ends, so
/// implementations see a strict `seg (ev seg)*` alternation... more
/// precisely `(seg ev)* seg`.
pub trait TraceSink {
    /// A lifecycle item occurred at the given node cycle.
    fn lifecycle(&mut self, cycle: u64, item: LifecycleItem);

    /// Per-instruction execution counts since the previous boundary.
    ///
    /// `counts.len()` equals the program length. The slice is reused by the
    /// caller; implementations must copy what they need.
    fn segment(&mut self, counts: &[u32]);
}

/// A sink that discards everything (for runs where only the application's
/// externally visible behavior matters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn lifecycle(&mut self, _cycle: u64, _item: LifecycleItem) {}
    fn segment(&mut self, _counts: &[u32]) {}
}

/// Fans one lifecycle stream out to two sinks — e.g. an in-memory
/// recorder for mining *and* a streaming on-disk writer for persistence,
/// from a single emulation run.
#[derive(Debug)]
pub struct Tee<'a, A: TraceSink, B: TraceSink>(pub &'a mut A, pub &'a mut B);

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<'_, A, B> {
    fn lifecycle(&mut self, cycle: u64, item: LifecycleItem) {
        self.0.lifecycle(cycle, item);
        self.1.lifecycle(cycle, item);
    }

    fn segment(&mut self, counts: &[u32]) {
        self.0.segment(counts);
        self.1.segment(counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(LifecycleItem::Int(2).to_string(), "int(2)");
        assert_eq!(LifecycleItem::Reti.to_string(), "reti");
        assert_eq!(
            LifecycleItem::PostTask(TaskId(3)).to_string(),
            "postTask(3)"
        );
        assert_eq!(LifecycleItem::RunTask(TaskId(3)).to_string(), "runTask(3)");
        assert_eq!(LifecycleItem::TaskEnd(TaskId(3)).to_string(), "taskEnd(3)");
    }

    #[test]
    fn tee_duplicates_the_stream() {
        #[derive(Default)]
        struct Count(usize, usize);
        impl TraceSink for Count {
            fn lifecycle(&mut self, _c: u64, _i: LifecycleItem) {
                self.0 += 1;
            }
            fn segment(&mut self, _c: &[u32]) {
                self.1 += 1;
            }
        }
        let (mut a, mut b) = (Count::default(), Count::default());
        {
            let mut tee = Tee(&mut a, &mut b);
            tee.segment(&[1]);
            tee.lifecycle(3, LifecycleItem::Reti);
            tee.segment(&[2]);
        }
        assert_eq!((a.0, a.1), (1, 2));
        assert_eq!((b.0, b.1), (1, 2));
    }

    #[test]
    fn core_alphabet_excludes_task_end() {
        assert!(LifecycleItem::Int(0).is_core_item());
        assert!(LifecycleItem::Reti.is_core_item());
        assert!(LifecycleItem::PostTask(TaskId(0)).is_core_item());
        assert!(LifecycleItem::RunTask(TaskId(0)).is_core_item());
        assert!(!LifecycleItem::TaskEnd(TaskId(0)).is_core_item());
    }
}
