//! Two-pass assembler for TinyVM programs.
//!
//! # Syntax
//!
//! ```text
//! ; full-line or trailing comments start with ';'
//! .const RATE 125          ; symbolic constant
//! .data  buf 8             ; reserve 8 zero-initialized data words
//! .word  limit 3           ; one initialized data word per value
//! .task  send_task         ; declare a deferred task (label must exist)
//! .handler ADC adc_ready   ; vector the ADC interrupt to a label
//!
//! main:                    ; entry point (required)
//!     ldi  r1, RATE
//!     out  TIMER0_PERIOD, r1
//!     ret                  ; returning from main enters the scheduler
//!
//! adc_ready:
//!     in   r1, ADC_DATA
//!     sta  buf, r1
//!     post send_task
//!     reti
//!
//! send_task:
//!     lda  r1, buf
//!     out  RADIO_TX_PUSH, r1
//!     ldi  r2, 0
//!     out  RADIO_SEND, r2
//!     ret
//! ```
//!
//! Operands: registers `r0`–`r15`; immediates in decimal, hex (`0x..`), or
//! negative decimal; symbolic constants; label names (resolving to the
//! instruction index for code labels or the data address for data labels),
//! optionally with a `+N` offset; indexed memory `[rN]`, `[rN+k]`, `[rN-k]`;
//! and symbolic port names from [`crate::isa::port`].

use crate::isa::{irq, port, Cond, Op, Reg, TaskId};
use crate::program::{Program, TaskDef};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// An assembly failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: u32, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// The assembler's resolved symbol table, exported alongside the program
/// by [`assemble_with_symbols`].
///
/// Every map carries fully resolved 16-bit values: `code` labels are
/// instruction indices, `data` labels are data-memory addresses, and
/// `consts` are the `.const` values. Consumers that only have a
/// [`Program`] (whose label map merges code and data) can reconstruct the
/// code/data split — but not the constants, which are folded into
/// immediates during assembly — with [`SymbolTable::from_program`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolTable {
    /// `.const` name → value.
    pub consts: BTreeMap<String, u16>,
    /// Data label → data-memory address (`.data` / `.word`).
    pub data: BTreeMap<String, u16>,
    /// Code label → instruction index.
    pub code: BTreeMap<String, u16>,
    /// Total data-memory words reserved by the program.
    pub data_size: u16,
}

impl SymbolTable {
    /// Reconstructs the code/data symbol split from an assembled
    /// [`Program`]. The `consts` map is empty: constants do not survive
    /// assembly.
    pub fn from_program(program: &Program) -> SymbolTable {
        let mut table = SymbolTable {
            data_size: program.data_size,
            ..SymbolTable::default()
        };
        for (name, &addr) in &program.labels {
            if program.data_labels().contains(name) {
                table.data.insert(name.clone(), addr);
            } else {
                table.code.insert(name.clone(), addr);
            }
        }
        table
    }
}

/// Symbol table built during the first pass.
struct Symbols {
    consts: BTreeMap<String, u16>,
    data: BTreeMap<String, u16>,
    code: BTreeMap<String, u16>,
    tasks: Vec<String>,
}

impl Symbols {
    /// Resolves `name` or `name+off` to a 16-bit value.
    fn resolve(&self, expr: &str, line: u32) -> Result<u16, AsmError> {
        let (name, offset) = match expr.split_once('+') {
            Some((n, o)) => {
                let off = parse_int(o.trim())
                    .ok_or_else(|| err(line, format!("bad offset in `{expr}`")))?;
                (n.trim(), off)
            }
            None => (expr, 0),
        };
        let base = self
            .consts
            .get(name)
            .or_else(|| self.data.get(name))
            .or_else(|| self.code.get(name))
            .copied()
            .ok_or_else(|| err(line, format!("unknown symbol `{name}`")))?;
        Ok(base.wrapping_add(offset))
    }
}

/// Parses a bare integer: decimal, negative decimal, or `0x` hex.
/// Negative values are encoded two's-complement into u16.
fn parse_int(s: &str) -> Option<u16> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u16::from_str_radix(hex, 16).ok()
    } else if let Some(neg) = s.strip_prefix('-') {
        neg.parse::<u32>().ok().and_then(|v| {
            if v <= 32768 {
                Some((v as i32).wrapping_neg() as i16 as u16)
            } else {
                None
            }
        })
    } else {
        s.parse::<u16>().ok()
    }
}

fn parse_reg(s: &str, line: u32) -> Result<Reg, AsmError> {
    let num = s
        .strip_prefix('r')
        .or_else(|| s.strip_prefix('R'))
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(Reg::new);
    num.ok_or_else(|| err(line, format!("expected register, got `{s}`")))
}

/// Parses an immediate operand: literal int, const, or label(+off).
fn parse_imm(s: &str, syms: &Symbols, line: u32) -> Result<u16, AsmError> {
    if let Some(v) = parse_int(s) {
        Ok(v)
    } else {
        syms.resolve(s, line)
    }
}

fn parse_port(s: &str, line: u32) -> Result<u8, AsmError> {
    if let Some(p) = port::from_name(s) {
        Ok(p)
    } else if let Some(v) = parse_int(s) {
        u8::try_from(v).map_err(|_| err(line, format!("port `{s}` out of range")))
    } else {
        Err(err(line, format!("unknown port `{s}`")))
    }
}

/// Parses `[rN]`, `[rN+k]`, `[rN-k]` into `(reg, offset)`.
fn parse_mem(s: &str, line: u32) -> Result<(Reg, i8), AsmError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [reg+off], got `{s}`")))?;
    let (reg_s, off) = if let Some(pos) = inner.find(['+', '-']) {
        let (r, rest) = inner.split_at(pos);
        let off: i16 = rest
            .parse()
            .map_err(|_| err(line, format!("bad offset `{rest}`")))?;
        let off = i8::try_from(off).map_err(|_| err(line, "offset out of i8 range"))?;
        (r.trim(), off)
    } else {
        (inner.trim(), 0i8)
    };
    Ok((parse_reg(reg_s, line)?, off))
}

/// Strips comments and splits a line into (optional label, rest).
fn split_line(raw: &str) -> (&str, Option<&str>, &str) {
    let no_comment = match raw.find(';') {
        Some(i) => &raw[..i],
        None => raw,
    };
    let trimmed = no_comment.trim();
    if let Some(colon) = trimmed.find(':') {
        // Only treat as label if the prefix is a bare identifier.
        let head = &trimmed[..colon];
        if is_ident(head) {
            return (trimmed, Some(head), trimmed[colon + 1..].trim());
        }
    }
    (trimmed, None, trimmed)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !s.starts_with(|c: char| c.is_ascii_digit())
}

/// Splits an operand list on commas, trimming whitespace.
fn operands(rest: &str) -> Vec<&str> {
    if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    }
}

/// Assembles TinyVM assembly source into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending source line on syntax errors,
/// unknown symbols, duplicate labels, a missing `main`, or `.task`/`.handler`
/// directives naming labels that do not exist.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), tinyvm::asm::AsmError> {
/// let program = tinyvm::asm::assemble("main:\n nop\n ret\n")?;
/// assert_eq!(program.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_with_symbols(source).map(|(program, _)| program)
}

/// [`assemble`], additionally returning the resolved [`SymbolTable`].
///
/// Static-analysis tooling wants the code/data/const split the assembler
/// knew (the program's merged label map loses the constants); this is the
/// same two-pass assembly with the first pass's symbols exported.
///
/// # Errors
///
/// Identical to [`assemble`].
pub fn assemble_with_symbols(source: &str) -> Result<(Program, SymbolTable), AsmError> {
    // -------- pass 1: symbols, data layout, instruction addresses --------
    let mut syms = Symbols {
        consts: BTreeMap::new(),
        data: BTreeMap::new(),
        code: BTreeMap::new(),
        tasks: Vec::new(),
    };
    let mut handlers: Vec<(u32, String, String)> = Vec::new(); // line, irq name, label
    let mut data_init: Vec<(u16, u16)> = Vec::new();
    let mut data_cursor: u16 = 0;
    let mut pc: u16 = 0;

    for (idx, raw) in source.lines().enumerate() {
        let line = idx as u32 + 1;
        let (_, label, rest) = split_line(raw);
        if let Some(l) = label {
            if syms.code.contains_key(l) || syms.data.contains_key(l) || syms.consts.contains_key(l)
            {
                return Err(err(line, format!("duplicate label `{l}`")));
            }
            syms.code.insert(l.to_string(), pc);
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            let mut parts = directive.split_whitespace();
            let kind = parts.next().unwrap_or("");
            match kind {
                "const" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err(line, ".const needs a name"))?;
                    let val_s = parts
                        .next()
                        .ok_or_else(|| err(line, ".const needs a value"))?;
                    let val = parse_int(val_s)
                        .ok_or_else(|| err(line, format!("bad constant `{val_s}`")))?;
                    if syms.consts.insert(name.to_string(), val).is_some() {
                        return Err(err(line, format!("duplicate constant `{name}`")));
                    }
                }
                "data" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err(line, ".data needs a name"))?;
                    let size_s = parts
                        .next()
                        .ok_or_else(|| err(line, ".data needs a size"))?;
                    let size = parse_int(size_s)
                        .filter(|&s| s > 0)
                        .ok_or_else(|| err(line, format!("bad size `{size_s}`")))?;
                    if syms.data.insert(name.to_string(), data_cursor).is_some() {
                        return Err(err(line, format!("duplicate data label `{name}`")));
                    }
                    data_cursor = data_cursor
                        .checked_add(size)
                        .ok_or_else(|| err(line, "data segment overflow"))?;
                }
                "word" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err(line, ".word needs a name"))?;
                    let values: Vec<u16> = parts
                        .map(|v| parse_int(v).ok_or_else(|| err(line, format!("bad value `{v}`"))))
                        .collect::<Result<_, _>>()?;
                    if values.is_empty() {
                        return Err(err(line, ".word needs at least one value"));
                    }
                    if syms.data.insert(name.to_string(), data_cursor).is_some() {
                        return Err(err(line, format!("duplicate data label `{name}`")));
                    }
                    for v in values {
                        data_init.push((data_cursor, v));
                        data_cursor = data_cursor
                            .checked_add(1)
                            .ok_or_else(|| err(line, "data segment overflow"))?;
                    }
                }
                "task" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err(line, ".task needs a label"))?;
                    if syms.tasks.iter().any(|t| t == name) {
                        return Err(err(line, format!("duplicate task `{name}`")));
                    }
                    syms.tasks.push(name.to_string());
                }
                "handler" => {
                    let irq_name = parts
                        .next()
                        .ok_or_else(|| err(line, ".handler needs an IRQ name"))?;
                    let label = parts
                        .next()
                        .ok_or_else(|| err(line, ".handler needs a label"))?;
                    handlers.push((line, irq_name.to_string(), label.to_string()));
                }
                other => return Err(err(line, format!("unknown directive `.{other}`"))),
            }
            continue;
        }
        // An instruction occupies one slot.
        pc = pc
            .checked_add(1)
            .filter(|&p| p < crate::isa::RETURN_SENTINEL)
            .ok_or_else(|| err(line, "program too large"))?;
    }

    // -------- pass 2: encode instructions --------
    let mut ops: Vec<Op> = Vec::with_capacity(pc as usize);
    let mut src_lines: Vec<u32> = Vec::with_capacity(pc as usize);
    for (idx, raw) in source.lines().enumerate() {
        let line = idx as u32 + 1;
        let (_, _, rest) = split_line(raw);
        if rest.is_empty() || rest.starts_with('.') {
            continue;
        }
        let (mnemonic, args_s) = match rest.split_once(char::is_whitespace) {
            Some((m, a)) => (m, a.trim()),
            None => (rest, ""),
        };
        let args = operands(args_s);
        let want = |n: usize| -> Result<(), AsmError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` wants {n} operand(s), got {}", args.len()),
                ))
            }
        };
        let op = match mnemonic.to_ascii_lowercase().as_str() {
            "nop" => {
                want(0)?;
                Op::Nop
            }
            "halt" => {
                want(0)?;
                Op::Halt
            }
            "sleep" => {
                want(0)?;
                Op::Sleep
            }
            "sei" => {
                want(0)?;
                Op::Sei
            }
            "cli" => {
                want(0)?;
                Op::Cli
            }
            "ret" => {
                want(0)?;
                Op::Ret
            }
            "reti" => {
                want(0)?;
                Op::Reti
            }
            "ldi" => {
                want(2)?;
                Op::Ldi(parse_reg(args[0], line)?, parse_imm(args[1], &syms, line)?)
            }
            "mov" => {
                want(2)?;
                Op::Mov(parse_reg(args[0], line)?, parse_reg(args[1], line)?)
            }
            "ld" => {
                want(2)?;
                let (base, off) = parse_mem(args[1], line)?;
                Op::Ld(parse_reg(args[0], line)?, base, off)
            }
            "st" => {
                want(2)?;
                let (base, off) = parse_mem(args[0], line)?;
                Op::St(base, off, parse_reg(args[1], line)?)
            }
            "lda" => {
                want(2)?;
                Op::Lda(parse_reg(args[0], line)?, parse_imm(args[1], &syms, line)?)
            }
            "sta" => {
                want(2)?;
                Op::Sta(parse_imm(args[0], &syms, line)?, parse_reg(args[1], line)?)
            }
            "add" => {
                want(2)?;
                Op::Add(parse_reg(args[0], line)?, parse_reg(args[1], line)?)
            }
            "sub" => {
                want(2)?;
                Op::Sub(parse_reg(args[0], line)?, parse_reg(args[1], line)?)
            }
            "and" => {
                want(2)?;
                Op::And(parse_reg(args[0], line)?, parse_reg(args[1], line)?)
            }
            "or" => {
                want(2)?;
                Op::Or(parse_reg(args[0], line)?, parse_reg(args[1], line)?)
            }
            "xor" => {
                want(2)?;
                Op::Xor(parse_reg(args[0], line)?, parse_reg(args[1], line)?)
            }
            "mul" => {
                want(2)?;
                Op::Mul(parse_reg(args[0], line)?, parse_reg(args[1], line)?)
            }
            "addi" => {
                want(2)?;
                Op::Addi(parse_reg(args[0], line)?, parse_imm(args[1], &syms, line)?)
            }
            "subi" => {
                want(2)?;
                Op::Subi(parse_reg(args[0], line)?, parse_imm(args[1], &syms, line)?)
            }
            "cmp" => {
                want(2)?;
                Op::Cmp(parse_reg(args[0], line)?, parse_reg(args[1], line)?)
            }
            "cmpi" => {
                want(2)?;
                Op::Cmpi(parse_reg(args[0], line)?, parse_imm(args[1], &syms, line)?)
            }
            "shl" => {
                want(2)?;
                let amount = parse_int(args[1])
                    .filter(|&v| v < 16)
                    .ok_or_else(|| err(line, "shift amount must be 0-15"))?;
                Op::Shl(parse_reg(args[0], line)?, amount as u8)
            }
            "shr" => {
                want(2)?;
                let amount = parse_int(args[1])
                    .filter(|&v| v < 16)
                    .ok_or_else(|| err(line, "shift amount must be 0-15"))?;
                Op::Shr(parse_reg(args[0], line)?, amount as u8)
            }
            "jmp" => {
                want(1)?;
                Op::Jmp(syms.resolve(args[0], line)?)
            }
            "breq" => {
                want(1)?;
                Op::Br(Cond::Eq, syms.resolve(args[0], line)?)
            }
            "brne" => {
                want(1)?;
                Op::Br(Cond::Ne, syms.resolve(args[0], line)?)
            }
            "brlt" => {
                want(1)?;
                Op::Br(Cond::Lt, syms.resolve(args[0], line)?)
            }
            "brge" => {
                want(1)?;
                Op::Br(Cond::Ge, syms.resolve(args[0], line)?)
            }
            "brltu" => {
                want(1)?;
                Op::Br(Cond::Ltu, syms.resolve(args[0], line)?)
            }
            "brgeu" => {
                want(1)?;
                Op::Br(Cond::Geu, syms.resolve(args[0], line)?)
            }
            "call" => {
                want(1)?;
                Op::Call(syms.resolve(args[0], line)?)
            }
            "push" => {
                want(1)?;
                Op::Push(parse_reg(args[0], line)?)
            }
            "pop" => {
                want(1)?;
                Op::Pop(parse_reg(args[0], line)?)
            }
            "in" => {
                want(2)?;
                Op::In(parse_reg(args[0], line)?, parse_port(args[1], line)?)
            }
            "out" => {
                want(2)?;
                Op::Out(parse_port(args[0], line)?, parse_reg(args[1], line)?)
            }
            "post" => {
                want(1)?;
                let pos = syms
                    .tasks
                    .iter()
                    .position(|t| t == args[0])
                    .ok_or_else(|| err(line, format!("`{}` is not a declared .task", args[0])))?;
                Op::Post(TaskId(pos as u16))
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        ops.push(op);
        src_lines.push(line);
    }

    // -------- finalize: vectors, tasks, entry --------
    let mut vectors = [None; irq::NUM_IRQS];
    for (line, irq_name, label) in handlers {
        let n = irq::from_name(&irq_name)
            .ok_or_else(|| err(line, format!("unknown IRQ `{irq_name}`")))?;
        let entry = *syms
            .code
            .get(&label)
            .ok_or_else(|| err(line, format!("handler label `{label}` not defined")))?;
        if vectors[n as usize].is_some() {
            return Err(err(line, format!("IRQ `{irq_name}` vectored twice")));
        }
        vectors[n as usize] = Some(entry);
    }
    let tasks: Vec<TaskDef> = syms
        .tasks
        .iter()
        .map(|name| {
            syms.code
                .get(name)
                .map(|&entry| TaskDef {
                    name: name.clone(),
                    entry,
                })
                .ok_or_else(|| err(0, format!("task label `{name}` not defined")))
        })
        .collect::<Result<_, _>>()?;
    let entry = *syms
        .code
        .get("main")
        .ok_or_else(|| err(0, "no `main` label"))?;

    let mut labels = BTreeMap::new();
    labels.extend(syms.code.iter().map(|(k, &v)| (k.clone(), v)));
    labels.extend(syms.data.iter().map(|(k, &v)| (k.clone(), v)));
    let data_label_names: BTreeSet<String> = syms.data.keys().cloned().collect();

    let mut program = Program {
        ops,
        src_lines,
        labels,
        vectors,
        tasks,
        data_init,
        data_size: data_cursor,
        entry,
        data_label_set: BTreeSet::new(),
    };
    program.set_data_labels(data_label_names);
    let symbols = SymbolTable {
        consts: syms.consts,
        data: syms.data,
        code: syms.code,
        data_size: data_cursor,
    };
    Ok((program, symbols))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_minimal_program() {
        let p = assemble("main:\n nop\n halt\n").unwrap();
        assert_eq!(p.ops, vec![Op::Nop, Op::Halt]);
        assert_eq!(p.entry, 0);
    }

    #[test]
    fn missing_main_is_error() {
        let e = assemble("start:\n nop\n").unwrap_err();
        assert!(e.message.contains("main"));
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble("main:\n jmp fwd\nback:\n nop\nfwd:\n jmp back\n").unwrap();
        assert_eq!(p.ops[0], Op::Jmp(2));
        assert_eq!(p.ops[2], Op::Jmp(1));
    }

    #[test]
    fn consts_and_data_resolve() {
        let src = "\
.const K 10
.data buf 4
.word init 7 8
main:
 ldi r1, K
 lda r2, buf
 lda r3, init+1
 ret
";
        let p = assemble(src).unwrap();
        assert_eq!(p.ops[0], Op::Ldi(Reg(1), 10));
        assert_eq!(p.ops[1], Op::Lda(Reg(2), 0));
        assert_eq!(p.ops[2], Op::Lda(Reg(3), 5));
        assert_eq!(p.data_size, 6);
        assert_eq!(p.data_init, vec![(4, 7), (5, 8)]);
    }

    #[test]
    fn indexed_memory_operands() {
        let p = assemble("main:\n ld r1, [r2+3]\n st [r4-1], r5\n ld r6, [r7]\n ret\n").unwrap();
        assert_eq!(p.ops[0], Op::Ld(Reg(1), Reg(2), 3));
        assert_eq!(p.ops[1], Op::St(Reg(4), -1, Reg(5)));
        assert_eq!(p.ops[2], Op::Ld(Reg(6), Reg(7), 0));
    }

    #[test]
    fn tasks_and_handlers() {
        let src = "\
.task t_send
.handler ADC on_adc
main:
 ret
on_adc:
 post t_send
 reti
t_send:
 ret
";
        let p = assemble(src).unwrap();
        assert_eq!(p.tasks.len(), 1);
        assert_eq!(p.tasks[0].name, "t_send");
        assert_eq!(
            p.vectors[irq::ADC as usize],
            Some(p.label("on_adc").unwrap())
        );
        assert_eq!(p.ops[1], Op::Post(TaskId(0)));
    }

    #[test]
    fn post_unknown_task_is_error() {
        let e = assemble("main:\n post nothing\n ret\n").unwrap_err();
        assert!(e.message.contains("not a declared"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn duplicate_label_is_error() {
        let e = assemble("main:\n nop\nmain:\n nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("main:\n frobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; header\nmain: ; entry\n nop ; do nothing\n\n ret\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn ports_parse_symbolically_and_numerically() {
        let p = assemble("main:\n in r1, ADC_DATA\n out 0x30, r1\n ret\n").unwrap();
        assert_eq!(p.ops[0], Op::In(Reg(1), port::ADC_DATA));
        assert_eq!(p.ops[1], Op::Out(port::UART_OUT, Reg(1)));
    }

    #[test]
    fn negative_and_hex_immediates() {
        let p = assemble("main:\n ldi r1, -2\n ldi r2, 0xFF\n ret\n").unwrap();
        assert_eq!(p.ops[0], Op::Ldi(Reg(1), 0xFFFE));
        assert_eq!(p.ops[1], Op::Ldi(Reg(2), 0xFF));
    }

    #[test]
    fn handler_for_unknown_irq_is_error() {
        let e = assemble(".handler NOPE x\nmain:\n ret\nx:\n reti\n").unwrap_err();
        assert!(e.message.contains("unknown IRQ"));
    }

    #[test]
    fn task_without_label_is_error() {
        let e = assemble(".task ghost\nmain:\n ret\n").unwrap_err();
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn src_lines_track_instructions() {
        let p = assemble("; c\nmain:\n nop\n\n ret\n").unwrap();
        assert_eq!(p.src_lines, vec![3, 5]);
    }

    #[test]
    fn shift_amount_validated() {
        assert!(assemble("main:\n shl r1, 16\n ret\n").is_err());
        let p = assemble("main:\n shl r1, 15\n ret\n").unwrap();
        assert_eq!(p.ops[0], Op::Shl(Reg(1), 15));
    }
}
