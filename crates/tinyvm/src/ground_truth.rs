//! Ground-truth tracking of event-procedure instances.
//!
//! The VM knows exactly which interrupt-handler instance posted every task
//! (information Sentomist's analyzer must *infer* from the lifecycle
//! sequence alone), so it can record the true event-handling interval of
//! each event-procedure instance per Definitions 1–2 of the paper. The
//! trace crate's inference is validated against these records in tests.

use serde::{Deserialize, Serialize};

/// Identifier of an event-procedure instance within one node's run.
pub type InstanceId = usize;

/// The true event-handling interval of one event-procedure instance.
///
/// `start_index`/`end_index` are indices into the node's lifecycle event
/// stream (the same indices a [`crate::trace::TraceSink`] observes);
/// `end_*` are `None` when the run stopped before the instance finished.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GtInterval {
    /// IRQ line of the instance's interrupt handler.
    pub irq: u8,
    /// Index of the `Int` lifecycle event that started the instance.
    pub start_index: usize,
    /// Node cycle of the start.
    pub start_cycle: u64,
    /// Index of the lifecycle event that ended the instance: the `Reti` of
    /// a task-less instance, or the `TaskEnd` of its last task.
    pub end_index: Option<usize>,
    /// Node cycle of the end.
    pub end_cycle: Option<u64>,
    /// Total tasks (transitively) posted by the instance.
    pub task_count: u32,
    open_tasks: u32,
    handler_open: bool,
}

impl GtInterval {
    /// Whether the instance ran to completion within the trace.
    pub fn is_complete(&self) -> bool {
        self.end_index.is_some()
    }
}

/// Tracks instance ownership during execution.
#[derive(Debug, Clone, Default)]
pub struct GtTracker {
    instances: Vec<GtInterval>,
}

impl GtTracker {
    /// Creates an empty tracker.
    pub fn new() -> GtTracker {
        GtTracker::default()
    }

    /// Records an interrupt-handler entry; returns the new instance id.
    pub fn on_int(&mut self, irq: u8, event_index: usize, cycle: u64) -> InstanceId {
        let id = self.instances.len();
        self.instances.push(GtInterval {
            irq,
            start_index: event_index,
            start_cycle: cycle,
            end_index: None,
            end_cycle: None,
            task_count: 0,
            open_tasks: 0,
            handler_open: true,
        });
        id
    }

    /// Records a task posted by `owner` (the instance of the current
    /// handler, or of the currently running task; `None` for boot tasks
    /// posted from `main` or from owner-less tasks).
    pub fn on_post(&mut self, owner: Option<InstanceId>) {
        if let Some(id) = owner {
            let inst = &mut self.instances[id];
            inst.open_tasks += 1;
            inst.task_count += 1;
        }
    }

    /// Records the `Reti` of the handler of `instance`; closes the instance
    /// if it posted no (still-open) tasks.
    pub fn on_reti(&mut self, instance: InstanceId, event_index: usize, cycle: u64) {
        let inst = &mut self.instances[instance];
        inst.handler_open = false;
        if inst.open_tasks == 0 && inst.end_index.is_none() {
            inst.end_index = Some(event_index);
            inst.end_cycle = Some(cycle);
        }
    }

    /// Records a task of `owner` running to completion; closes the owner if
    /// this was its last open task and its handler already exited.
    pub fn on_task_end(&mut self, owner: Option<InstanceId>, event_index: usize, cycle: u64) {
        if let Some(id) = owner {
            let inst = &mut self.instances[id];
            debug_assert!(inst.open_tasks > 0, "task end without open task");
            inst.open_tasks = inst.open_tasks.saturating_sub(1);
            if inst.open_tasks == 0 && !inst.handler_open && inst.end_index.is_none() {
                inst.end_index = Some(event_index);
                inst.end_cycle = Some(cycle);
            }
        }
    }

    /// All instances observed so far, in start order.
    pub fn intervals(&self) -> &[GtInterval] {
        &self.instances
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_only_instance_closes_at_reti() {
        let mut gt = GtTracker::new();
        let id = gt.on_int(2, 0, 100);
        gt.on_reti(id, 1, 150);
        let iv = &gt.intervals()[0];
        assert_eq!(iv.end_index, Some(1));
        assert_eq!(iv.end_cycle, Some(150));
        assert_eq!(iv.task_count, 0);
    }

    #[test]
    fn instance_with_task_closes_at_task_end() {
        let mut gt = GtTracker::new();
        let id = gt.on_int(2, 0, 100);
        gt.on_post(Some(id)); // event 1
        gt.on_reti(id, 2, 150);
        assert!(!gt.intervals()[0].is_complete());
        gt.on_task_end(Some(id), 4, 300);
        let iv = &gt.intervals()[0];
        assert_eq!(iv.end_index, Some(4));
        assert_eq!(iv.task_count, 1);
    }

    #[test]
    fn transitive_task_posting_extends_interval() {
        let mut gt = GtTracker::new();
        let id = gt.on_int(0, 0, 0);
        gt.on_post(Some(id)); // task A
        gt.on_reti(id, 2, 10);
        // task A posts task C while running.
        gt.on_post(Some(id));
        gt.on_task_end(Some(id), 5, 20); // A ends
        assert!(!gt.intervals()[0].is_complete());
        gt.on_task_end(Some(id), 7, 30); // C ends
        assert_eq!(gt.intervals()[0].end_index, Some(7));
        assert_eq!(gt.intervals()[0].task_count, 2);
    }

    #[test]
    fn boot_tasks_have_no_owner() {
        let mut gt = GtTracker::new();
        gt.on_post(None);
        gt.on_task_end(None, 1, 5);
        assert!(gt.intervals().is_empty());
    }

    #[test]
    fn truncated_instance_stays_open() {
        let mut gt = GtTracker::new();
        let id = gt.on_int(1, 0, 0);
        gt.on_post(Some(id));
        gt.on_reti(id, 2, 9);
        assert!(!gt.intervals()[0].is_complete());
        assert_eq!(gt.intervals()[0].end_cycle, None);
    }
}
