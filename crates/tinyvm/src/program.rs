//! Assembled program representation.

use crate::isa::{irq, Op};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A deferred task declared with the assembler's `.task` directive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskDef {
    /// The task's label (also its entry point name).
    pub name: String,
    /// Entry instruction index.
    pub entry: u16,
}

/// An assembled TinyVM program: text, vector table, task table and data
/// initialization image.
///
/// Programs are produced by [`crate::asm::assemble`] and executed by
/// [`crate::node::Node`]. The instruction index space of `ops` is exactly
/// the dimension of Sentomist instruction counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program text; the PC indexes this vector.
    pub ops: Vec<Op>,
    /// Source line (1-based) of each instruction, parallel to `ops`.
    pub src_lines: Vec<u32>,
    /// All labels (code and data) with their resolved values.
    pub labels: BTreeMap<String, u16>,
    /// Interrupt vector table: entry PC per IRQ line.
    pub vectors: [Option<u16>; irq::NUM_IRQS],
    /// Task table; [`crate::isa::TaskId`] indexes it.
    pub tasks: Vec<TaskDef>,
    /// Initialized data words: `(address, value)` pairs applied at reset.
    pub data_init: Vec<(u16, u16)>,
    /// Number of data words reserved from address 0 upward.
    pub data_size: u16,
    /// Entry point (the `main` label).
    pub entry: u16,
    /// Labels that refer to data addresses rather than code.
    #[serde(default)]
    pub(crate) data_label_set: BTreeSet<String>,
}

impl Program {
    /// Number of instructions; the dimensionality of instruction counters.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Source line (1-based) of the instruction at `pc`, if in range.
    pub fn source_line(&self, pc: u16) -> Option<u32> {
        self.src_lines.get(pc as usize).copied()
    }

    /// Resolves a label to its value (instruction index or data address).
    pub fn label(&self, name: &str) -> Option<u16> {
        self.labels.get(name).copied()
    }

    /// Finds the task id of a task declared with `.task`, by label name.
    pub fn task_by_name(&self, name: &str) -> Option<crate::isa::TaskId> {
        self.tasks
            .iter()
            .position(|t| t.name == name)
            .map(|i| crate::isa::TaskId(i as u16))
    }

    /// Returns the code label that *starts* at instruction `pc`, if any.
    pub fn label_at(&self, pc: u16) -> Option<&str> {
        self.labels
            .iter()
            .find(|(name, &v)| v == pc && self.is_code_label(name))
            .map(|(name, _)| name.as_str())
    }

    /// Returns the nearest code label at or before `pc` — the routine the
    /// instruction belongs to, under the convention that routines are
    /// label-delimited.
    pub fn enclosing_label(&self, pc: u16) -> Option<&str> {
        self.labels
            .iter()
            .filter(|(name, &v)| v <= pc && self.is_code_label(name))
            .max_by_key(|(_, &v)| v)
            .map(|(name, _)| name.as_str())
    }

    /// Names of labels that refer to data addresses rather than code.
    pub fn data_labels(&self) -> &BTreeSet<String> {
        &self.data_label_set
    }

    pub(crate) fn set_data_labels(&mut self, labels: BTreeSet<String>) {
        self.data_label_set = labels;
    }

    fn is_code_label(&self, name: &str) -> bool {
        !self.data_label_set.contains(name)
    }
}

#[cfg(test)]
mod tests {
    use crate::asm::assemble;

    #[test]
    fn source_line_out_of_range_is_none() {
        let p = assemble("main:\n nop\n ret\n").unwrap();
        assert_eq!(p.source_line(0), Some(2));
        assert_eq!(p.source_line(100), None);
    }

    #[test]
    fn enclosing_label_finds_routine() {
        let p = assemble("main:\n nop\n ret\nhelper:\n nop\n nop\n ret\n").unwrap();
        let helper = p.label("helper").unwrap();
        assert_eq!(p.enclosing_label(helper + 1), Some("helper"));
        assert_eq!(p.enclosing_label(0), Some("main"));
    }
}
