//! Instruction-set architecture of the TinyVM sensor-node MCU.
//!
//! The machine is a small, AVR-inspired 16-bit load/store architecture:
//!
//! * 16 general-purpose 16-bit registers `r0`–`r15`,
//! * word-addressed data memory (default 4096 words) with a descending
//!   hardware stack used by `push`/`pop`/`call`/`ret`,
//! * a program counter that indexes *instructions* (not bytes), so the
//!   per-instruction execution counts used by Sentomist's
//!   [instruction counter](https://doi.org/10.1109/ICDCS.2010.75) map 1:1
//!   onto [`Op`] slots,
//! * vectored, preemptive interrupts (see [`irq`]) following the TinyOS
//!   concurrency model: handlers preempt tasks and other handlers, but a
//!   line is masked while its own handler is in service,
//! * a `post` instruction that enqueues a deferred task into the
//!   operating-system FIFO queue (TinyOS `postTask`).
//!
//! Every instruction has a fixed cycle cost ([`Op::cycles`]); the default
//! clock is [`DEFAULT_CLOCK_HZ`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Default simulated MCU clock frequency in Hz (1 MHz).
pub const DEFAULT_CLOCK_HZ: u64 = 1_000_000;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 16;

/// Sentinel return address: `ret`/`reti` popping this value returns control
/// to the runtime (end of `main`, end of a task).
pub const RETURN_SENTINEL: u16 = 0xFFFF;

/// A general-purpose register index (`r0`–`r15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// Creates a register index, checking the bound.
    ///
    /// Returns `None` if `n >= 16`.
    pub fn new(n: u8) -> Option<Reg> {
        if (n as usize) < NUM_REGS {
            Some(Reg(n))
        } else {
            None
        }
    }

    /// The register number.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Branch conditions, evaluated against the status flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal (Z set).
    Eq,
    /// Not equal (Z clear).
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Ltu => "ltu",
            Cond::Geu => "geu",
        };
        f.write_str(s)
    }
}

/// Identifier of a deferred task (index into [`crate::program::Program::tasks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u16);

impl TaskId {
    /// The task table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// A single MCU instruction.
///
/// The program counter indexes into a `Vec<Op>`; there is no byte-level
/// encoding because Sentomist only needs instruction identity and counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// No operation.
    Nop,
    /// Stop the node permanently.
    Halt,
    /// Enter low-power sleep until the next interrupt.
    Sleep,
    /// Load a 16-bit immediate: `rd <- imm`.
    Ldi(Reg, u16),
    /// Register move: `rd <- rs`.
    Mov(Reg, Reg),
    /// Indexed load: `rd <- mem[rs + off]`.
    Ld(Reg, Reg, i8),
    /// Indexed store: `mem[rbase + off] <- rv`.
    St(Reg, i8, Reg),
    /// Absolute load: `rd <- mem[addr]`.
    Lda(Reg, u16),
    /// Absolute store: `mem[addr] <- rs`.
    Sta(u16, Reg),
    /// Wrapping add: `rd <- rd + rs`; sets Z/N/C.
    Add(Reg, Reg),
    /// Wrapping subtract: `rd <- rd - rs`; sets Z/N/C.
    Sub(Reg, Reg),
    /// Bitwise and.
    And(Reg, Reg),
    /// Bitwise or.
    Or(Reg, Reg),
    /// Bitwise xor.
    Xor(Reg, Reg),
    /// Wrapping multiply (low 16 bits).
    Mul(Reg, Reg),
    /// Add immediate.
    Addi(Reg, u16),
    /// Subtract immediate.
    Subi(Reg, u16),
    /// Compare registers (sets flags, discards result).
    Cmp(Reg, Reg),
    /// Compare register with immediate.
    Cmpi(Reg, u16),
    /// Logical shift left by a constant amount (0-15).
    Shl(Reg, u8),
    /// Logical shift right by a constant amount (0-15).
    Shr(Reg, u8),
    /// Unconditional jump to an instruction index.
    Jmp(u16),
    /// Conditional branch to an instruction index.
    Br(Cond, u16),
    /// Call a subroutine (pushes the return PC on the data stack).
    Call(u16),
    /// Return from a subroutine.
    Ret,
    /// Return from an interrupt handler.
    Reti,
    /// Push a register onto the data stack.
    Push(Reg),
    /// Pop the data stack into a register.
    Pop(Reg),
    /// Read a device port: `rd <- port`.
    In(Reg, u8),
    /// Write a device port: `port <- rs`.
    Out(u8, Reg),
    /// Post a task to the OS FIFO queue (TinyOS `postTask`).
    Post(TaskId),
    /// Set the global interrupt-enable flag.
    Sei,
    /// Clear the global interrupt-enable flag.
    Cli,
}

impl Op {
    /// Base cycle cost of the instruction.
    ///
    /// Taken branches cost one extra cycle; the CPU core adds it.
    pub fn cycles(self) -> u64 {
        match self {
            Op::Nop | Op::Halt | Op::Sleep => 1,
            Op::Ldi(..) | Op::Mov(..) => 1,
            Op::Ld(..) | Op::St(..) | Op::Lda(..) | Op::Sta(..) => 2,
            Op::Add(..)
            | Op::Sub(..)
            | Op::And(..)
            | Op::Or(..)
            | Op::Xor(..)
            | Op::Addi(..)
            | Op::Subi(..)
            | Op::Cmp(..)
            | Op::Cmpi(..)
            | Op::Shl(..)
            | Op::Shr(..) => 1,
            Op::Mul(..) => 2,
            Op::Jmp(..) => 2,
            Op::Br(..) => 1,
            Op::Call(..) | Op::Ret | Op::Reti => 3,
            Op::Push(..) | Op::Pop(..) => 2,
            Op::In(..) | Op::Out(..) => 2,
            Op::Post(..) => 2,
            Op::Sei | Op::Cli => 1,
        }
    }
}

/// Hardware interrupt lines.
///
/// Each line has a fixed vector-table slot; lower numbers have higher
/// dispatch priority when several lines are pending simultaneously.
pub mod irq {
    /// Number of interrupt lines.
    pub const NUM_IRQS: usize = 5;
    /// Periodic timer 0 (application timer, e.g. the sampling timer).
    pub const TIMER0: u8 = 0;
    /// Periodic timer 1 (secondary timer, e.g. housekeeping / heartbeat).
    pub const TIMER1: u8 = 1;
    /// ADC conversion complete ("data ready").
    pub const ADC: u8 = 2;
    /// Radio packet received (the SPI interrupt of the paper).
    pub const RX: u8 = 3;
    /// Radio transmission complete.
    pub const TXDONE: u8 = 4;

    /// Human-readable name of an interrupt line.
    pub fn name(n: u8) -> &'static str {
        match n {
            TIMER0 => "TIMER0",
            TIMER1 => "TIMER1",
            ADC => "ADC",
            RX => "RX",
            TXDONE => "TXDONE",
            _ => "UNKNOWN",
        }
    }

    /// Parses an interrupt name as used by the assembler's `.handler`
    /// directive.
    pub fn from_name(s: &str) -> Option<u8> {
        match s {
            "TIMER0" => Some(TIMER0),
            "TIMER1" => Some(TIMER1),
            "ADC" => Some(ADC),
            "RX" => Some(RX),
            "TXDONE" => Some(TXDONE),
            _ => None,
        }
    }
}

/// Memory-mapped device port numbers, used by `in`/`out`.
pub mod port {
    /// Timer 0 period, in ticks of [`TIMER_TICK_CYCLES`] cycles (write).
    pub const TIMER0_PERIOD: u8 = 0x00;
    /// Timer 0 control: 1 = start periodic, 0 = stop (write).
    pub const TIMER0_CTRL: u8 = 0x01;
    /// Timer 1 period (write).
    pub const TIMER1_PERIOD: u8 = 0x02;
    /// Timer 1 control (write).
    pub const TIMER1_CTRL: u8 = 0x03;
    /// ADC control: write 1 to start a conversion.
    pub const ADC_CTRL: u8 = 0x10;
    /// ADC result of the last completed conversion (read).
    pub const ADC_DATA: u8 = 0x11;
    /// Push one payload word into the radio TX buffer (write).
    pub const RADIO_TX_PUSH: u8 = 0x20;
    /// Start transmitting the TX buffer; the written value is the
    /// destination node id ([`BROADCAST`] for broadcast) (write).
    pub const RADIO_SEND: u8 = 0x21;
    /// Radio status (read): see the `STATUS_*` constants.
    pub const RADIO_STATUS: u8 = 0x22;
    /// Number of payload words in the frontmost received packet (read).
    pub const RADIO_RX_LEN: u8 = 0x23;
    /// Pop the next payload word of the frontmost received packet (read).
    /// Reading past the end yields 0 and drops the packet.
    pub const RADIO_RX_POP: u8 = 0x24;
    /// Source node id of the frontmost received packet (read).
    pub const RADIO_RX_SRC: u8 = 0x25;
    /// Drop the frontmost received packet (write).
    pub const RADIO_RX_DROP: u8 = 0x26;
    /// Debug/telemetry output word (captured host-side) (write).
    pub const UART_OUT: u8 = 0x30;
    /// Pseudo-random 16-bit value from the node's seeded stream (read).
    pub const RAND: u8 = 0x40;
    /// This node's id (read).
    pub const NODE_ID: u8 = 0x41;

    /// Cycles per timer tick: timer periods are expressed in this unit so a
    /// 16-bit period register can span multi-second intervals.
    pub const TIMER_TICK_CYCLES: u64 = 256;

    /// Broadcast destination address.
    pub const BROADCAST: u16 = 0xFFFF;

    /// Radio status bit: a transmission is in progress.
    pub const STATUS_TX_BUSY: u16 = 0b01;
    /// Radio status bit: the last `RADIO_SEND` was rejected (chip busy).
    pub const STATUS_SEND_FAILED: u16 = 0b10;

    /// Parses a symbolic port name as used by the assembler.
    pub fn from_name(s: &str) -> Option<u8> {
        Some(match s {
            "TIMER0_PERIOD" => TIMER0_PERIOD,
            "TIMER0_CTRL" => TIMER0_CTRL,
            "TIMER1_PERIOD" => TIMER1_PERIOD,
            "TIMER1_CTRL" => TIMER1_CTRL,
            "ADC_CTRL" => ADC_CTRL,
            "ADC_DATA" => ADC_DATA,
            "RADIO_TX_PUSH" => RADIO_TX_PUSH,
            "RADIO_SEND" => RADIO_SEND,
            "RADIO_STATUS" => RADIO_STATUS,
            "RADIO_RX_LEN" => RADIO_RX_LEN,
            "RADIO_RX_POP" => RADIO_RX_POP,
            "RADIO_RX_SRC" => RADIO_RX_SRC,
            "RADIO_RX_DROP" => RADIO_RX_DROP,
            "UART_OUT" => UART_OUT,
            "RAND" => RAND,
            "NODE_ID" => NODE_ID,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_new_bounds() {
        assert_eq!(Reg::new(0), Some(Reg(0)));
        assert_eq!(Reg::new(15), Some(Reg(15)));
        assert_eq!(Reg::new(16), None);
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg(7).to_string(), "r7");
    }

    #[test]
    fn irq_names_round_trip() {
        for n in 0..irq::NUM_IRQS as u8 {
            assert_eq!(irq::from_name(irq::name(n)), Some(n));
        }
        assert_eq!(irq::from_name("BOGUS"), None);
    }

    #[test]
    fn port_names_round_trip() {
        for name in [
            "TIMER0_PERIOD",
            "TIMER0_CTRL",
            "TIMER1_PERIOD",
            "TIMER1_CTRL",
            "ADC_CTRL",
            "ADC_DATA",
            "RADIO_TX_PUSH",
            "RADIO_SEND",
            "RADIO_STATUS",
            "RADIO_RX_LEN",
            "RADIO_RX_POP",
            "RADIO_RX_SRC",
            "RADIO_RX_DROP",
            "UART_OUT",
            "RAND",
            "NODE_ID",
        ] {
            assert!(port::from_name(name).is_some(), "{name} should parse");
        }
        assert_eq!(port::from_name("NOPE"), None);
    }

    #[test]
    fn cycle_costs_are_positive() {
        let ops = [
            Op::Nop,
            Op::Halt,
            Op::Sleep,
            Op::Ldi(Reg(0), 1),
            Op::Mov(Reg(0), Reg(1)),
            Op::Ld(Reg(0), Reg(1), 0),
            Op::St(Reg(0), 0, Reg(1)),
            Op::Lda(Reg(0), 0),
            Op::Sta(0, Reg(0)),
            Op::Add(Reg(0), Reg(1)),
            Op::Mul(Reg(0), Reg(1)),
            Op::Jmp(0),
            Op::Br(Cond::Eq, 0),
            Op::Call(0),
            Op::Ret,
            Op::Reti,
            Op::Push(Reg(0)),
            Op::Pop(Reg(0)),
            Op::In(Reg(0), 0),
            Op::Out(0, Reg(0)),
            Op::Post(TaskId(0)),
            Op::Sei,
            Op::Cli,
        ];
        for op in ops {
            assert!(op.cycles() >= 1, "{op:?}");
        }
    }
}
