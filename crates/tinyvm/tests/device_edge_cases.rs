//! Edge-case integration tests for devices and the CPU through full
//! programs: payload caps, memory boundaries, timer reprogramming from
//! handlers, RX backpressure, and atomic (cli/sei) sections.

use std::sync::Arc;
use tinyvm::devices::{NodeConfig, RadioConfig};
use tinyvm::node::Node;
use tinyvm::{assemble, NullSink, Packet};

fn node_with(src: &str, config: NodeConfig) -> Node {
    Node::new(Arc::new(assemble(src).unwrap()), config)
}

fn node(src: &str) -> Node {
    node_with(src, NodeConfig::default())
}

#[test]
fn radio_payload_capped_at_fifo_size() {
    // Push 100 words; only MAX_PAYLOAD_WORDS survive.
    let src = "\
main:
 ldi r1, 100
lp:
 out RADIO_TX_PUSH, r1
 subi r1, 1
 brne lp
 ldi r2, 0xFFFF
 out RADIO_SEND, r2
 halt
";
    let mut n = node(src);
    n.run(100_000, &mut NullSink).unwrap();
    let out = n.drain_outbox();
    assert_eq!(out.len(), 1);
    assert_eq!(
        out[0].packet.payload.len(),
        tinyvm::devices::MAX_PAYLOAD_WORDS
    );
}

#[test]
fn memory_boundary_access_faults_precisely() {
    // Word 0xFFFF is beyond the default 4096-word memory.
    let src = "\
main:
 ldi r1, 0xFFFF
 ld r2, [r1]
 halt
";
    let mut n = node(src);
    let err = n.run(10_000, &mut NullSink).unwrap_err();
    match err {
        tinyvm::VmError::MemOutOfRange { pc, addr } => {
            assert_eq!(pc, 1);
            assert_eq!(addr, 0xFFFF);
        }
        other => panic!("expected MemOutOfRange, got {other}"),
    }
}

#[test]
fn negative_indexed_addressing_wraps_consistently() {
    // base 2, offset -2 -> address 0.
    let src = "\
.word cell 77
main:
 ldi r1, 2
 ld r2, [r1-2]
 sta cell, r2    ; cell is address 0; stores 77 back onto itself
 halt
";
    let mut n = node(src);
    n.run(10_000, &mut NullSink).unwrap();
    assert_eq!(n.mem()[0], 77);
}

#[test]
fn timer_reprogrammed_from_its_own_handler() {
    // Exponential backoff: each firing doubles the period.
    let src = "\
.handler TIMER0 h
.data period 1
.data fires 1
main:
 ldi r1, 2
 sta period, r1
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
h:
 lda r1, fires
 addi r1, 1
 sta fires, r1
 lda r2, period
 add r2, r2
 sta period, r2
 out TIMER0_PERIOD, r2
 ldi r3, 1
 out TIMER0_CTRL, r3
 reti
";
    let mut n = node(src);
    n.run(2_000_000, &mut NullSink).unwrap();
    let program = n.program().clone();
    let fires = n.mem()[program.label("fires").unwrap() as usize];
    // Fire times ~ 2+4+8+... ticks; within 2M cycles (7812 ticks) the
    // geometric series allows ~11 firings.
    assert!((9..=13).contains(&fires), "fires = {fires}");
}

#[test]
fn cli_defers_interrupts_until_sei() {
    // Interrupts raised during a cli section are dispatched after sei.
    let src = "\
.handler TIMER0 h
.data order 2
.data cursor 1
main:
 cli
 ldi r1, 2
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ; burn well past the first firing with interrupts off
 ldi r2, 2000
spin:
 subi r2, 1
 brne spin
 ldi r3, 1          ; record: critical section finished first
 lda r4, cursor
 ldi r5, order
 add r5, r4
 st [r5], r3
 addi r4, 1
 sta cursor, r4
 sei
 ret
h:
 ldi r3, 2          ; record: handler ran
 lda r4, cursor
 ldi r5, order
 add r5, r4
 st [r5], r3
 addi r4, 1
 sta cursor, r4
 out TIMER0_CTRL, r0
 reti
";
    let mut n = node(src);
    n.run(100_000, &mut NullSink).unwrap();
    let program = n.program().clone();
    let order = program.label("order").unwrap() as usize;
    assert_eq!(
        &n.mem()[order..order + 2],
        &[1, 2],
        "handler must wait for sei"
    );
}

#[test]
fn rx_interrupts_arrive_one_per_packet_under_burst() {
    let src = "\
.handler RX on_rx
.data seen 1
main:
 ret
on_rx:
 in r1, RADIO_RX_POP
 lda r2, seen
 addi r2, 1
 sta seen, r2
 reti
";
    let mut n = node(src);
    for i in 0..5 {
        n.inject_rx(
            1_000 + i, // essentially simultaneous
            Packet {
                src: 9,
                dest: 0,
                payload: vec![i as u16],
            },
        );
    }
    n.run(100_000, &mut NullSink).unwrap();
    let program = n.program().clone();
    let seen = n.mem()[program.label("seen").unwrap() as usize];
    assert_eq!(seen, 5, "every packet gets its own interrupt");
}

#[test]
fn zero_overhead_radio_config_still_works() {
    let src = "\
main:
 ldi r1, 5
 out RADIO_TX_PUSH, r1
 ldi r2, 0xFFFF
 out RADIO_SEND, r2
 halt
";
    let mut n = node_with(
        src,
        NodeConfig {
            radio: RadioConfig {
                overhead_cycles: 0,
                per_word_cycles: 1,
                handshake_cycles: 0,
            },
            ..NodeConfig::default()
        },
    );
    n.run(10_000, &mut NullSink).unwrap();
    let out = n.drain_outbox();
    assert_eq!(out[0].duration, 1);
}

#[test]
fn uart_order_is_program_order_across_contexts() {
    // UART writes from main, handler and task appear in execution order.
    let src = "\
.handler TIMER0 h
.task t
main:
 ldi r1, 1
 out UART_OUT, r1
 ldi r1, 4
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
h:
 ldi r2, 2
 out UART_OUT, r2
 post t
 out TIMER0_CTRL, r0
 reti
t:
 ldi r3, 3
 out UART_OUT, r3
 ret
";
    let mut n = node(src);
    n.run(100_000, &mut NullSink).unwrap();
    assert_eq!(n.uart(), &[1, 2, 3]);
}
