//! Property tests for the VM core: arithmetic against a Rust reference
//! model, stack discipline, assembler/encoder agreement, and determinism
//! under randomized device timing.

use proptest::prelude::*;
use std::sync::Arc;
use tinyvm::devices::NodeConfig;
use tinyvm::node::Node;
use tinyvm::{assemble, NullSink};

/// Straight-line arithmetic ops our reference model mirrors.
#[derive(Debug, Clone, Copy)]
enum ArithOp {
    Ldi(u8, u16),
    Add(u8, u8),
    Sub(u8, u8),
    And(u8, u8),
    Or(u8, u8),
    Xor(u8, u8),
    Mul(u8, u8),
    Addi(u8, u16),
    Subi(u8, u16),
    Shl(u8, u8),
    Shr(u8, u8),
    Mov(u8, u8),
}

fn arith_op() -> impl Strategy<Value = ArithOp> {
    // Use registers r1..r8 to leave r0 as a scratch zero.
    let reg = 1u8..9;
    prop_oneof![
        (reg.clone(), any::<u16>()).prop_map(|(r, v)| ArithOp::Ldi(r, v)),
        (reg.clone(), 1u8..9).prop_map(|(a, b)| ArithOp::Add(a, b)),
        (reg.clone(), 1u8..9).prop_map(|(a, b)| ArithOp::Sub(a, b)),
        (reg.clone(), 1u8..9).prop_map(|(a, b)| ArithOp::And(a, b)),
        (reg.clone(), 1u8..9).prop_map(|(a, b)| ArithOp::Or(a, b)),
        (reg.clone(), 1u8..9).prop_map(|(a, b)| ArithOp::Xor(a, b)),
        (reg.clone(), 1u8..9).prop_map(|(a, b)| ArithOp::Mul(a, b)),
        (reg.clone(), any::<u16>()).prop_map(|(r, v)| ArithOp::Addi(r, v)),
        (reg.clone(), any::<u16>()).prop_map(|(r, v)| ArithOp::Subi(r, v)),
        (reg.clone(), 0u8..16).prop_map(|(r, s)| ArithOp::Shl(r, s)),
        (reg.clone(), 0u8..16).prop_map(|(r, s)| ArithOp::Shr(r, s)),
        (reg, 1u8..9).prop_map(|(a, b)| ArithOp::Mov(a, b)),
    ]
}

fn render(ops: &[ArithOp]) -> String {
    let mut src = String::from("main:\n");
    for op in ops {
        let line = match *op {
            ArithOp::Ldi(r, v) => format!(" ldi r{r}, {v}"),
            ArithOp::Add(a, b) => format!(" add r{a}, r{b}"),
            ArithOp::Sub(a, b) => format!(" sub r{a}, r{b}"),
            ArithOp::And(a, b) => format!(" and r{a}, r{b}"),
            ArithOp::Or(a, b) => format!(" or r{a}, r{b}"),
            ArithOp::Xor(a, b) => format!(" xor r{a}, r{b}"),
            ArithOp::Mul(a, b) => format!(" mul r{a}, r{b}"),
            ArithOp::Addi(r, v) => format!(" addi r{r}, {v}"),
            ArithOp::Subi(r, v) => format!(" subi r{r}, {v}"),
            ArithOp::Shl(r, s) => format!(" shl r{r}, {s}"),
            ArithOp::Shr(r, s) => format!(" shr r{r}, {s}"),
            ArithOp::Mov(a, b) => format!(" mov r{a}, r{b}"),
        };
        src.push_str(&line);
        src.push('\n');
    }
    src.push_str(" halt\n");
    src
}

fn reference(ops: &[ArithOp]) -> [u16; 16] {
    let mut r = [0u16; 16];
    for op in ops {
        match *op {
            ArithOp::Ldi(d, v) => r[d as usize] = v,
            ArithOp::Add(a, b) => r[a as usize] = r[a as usize].wrapping_add(r[b as usize]),
            ArithOp::Sub(a, b) => r[a as usize] = r[a as usize].wrapping_sub(r[b as usize]),
            ArithOp::And(a, b) => r[a as usize] &= r[b as usize],
            ArithOp::Or(a, b) => r[a as usize] |= r[b as usize],
            ArithOp::Xor(a, b) => r[a as usize] ^= r[b as usize],
            ArithOp::Mul(a, b) => r[a as usize] = r[a as usize].wrapping_mul(r[b as usize]),
            ArithOp::Addi(d, v) => r[d as usize] = r[d as usize].wrapping_add(v),
            ArithOp::Subi(d, v) => r[d as usize] = r[d as usize].wrapping_sub(v),
            ArithOp::Shl(d, s) => r[d as usize] <<= s,
            ArithOp::Shr(d, s) => r[d as usize] >>= s,
            ArithOp::Mov(a, b) => r[a as usize] = r[b as usize],
        }
    }
    r
}

proptest! {
    #[test]
    fn arithmetic_matches_reference(ops in prop::collection::vec(arith_op(), 0..60)) {
        let src = render(&ops);
        let program = Arc::new(assemble(&src).expect("generated source assembles"));
        prop_assert_eq!(program.len(), ops.len() + 1);
        let mut node = Node::new(program.clone(), NodeConfig::default());
        // Dump registers by storing them — instead, run and inspect via a
        // final memory dump: store r1..r8 into data words.
        // Simpler: rely on Node::mem? Registers are not memory; re-run with
        // stores appended.
        let mut src2 = String::from(".data dump 8\nmain:\n");
        src2.push_str(src.trim_start_matches("main:\n").trim_end_matches(" halt\n"));
        for r in 1..9 {
            src2.push_str(&format!(" sta dump+{}, r{}\n", r - 1, r));
        }
        src2.push_str(" halt\n");
        let program2 = Arc::new(assemble(&src2).expect("instrumented source assembles"));
        let mut node2 = Node::new(program2.clone(), NodeConfig::default());
        node2.run(1_000_000, &mut NullSink).unwrap();
        prop_assert!(node2.halted());
        let expect = reference(&ops);
        let dump = program2.label("dump").unwrap() as usize;
        for (r, &want) in expect.iter().enumerate().take(9).skip(1) {
            prop_assert_eq!(node2.mem()[dump + r - 1], want, "r{}", r);
        }
        // The uninstrumented program also halts cleanly.
        node.run(1_000_000, &mut NullSink).unwrap();
        prop_assert!(node.halted());
    }

    #[test]
    fn push_pop_is_lifo(values in prop::collection::vec(any::<u16>(), 1..12)) {
        let mut src = String::from(".data out 12\nmain:\n");
        for v in &values {
            src.push_str(&format!(" ldi r1, {v}\n push r1\n"));
        }
        for i in 0..values.len() {
            src.push_str(&format!(" pop r2\n sta out+{i}, r2\n"));
        }
        src.push_str(" halt\n");
        let program = Arc::new(assemble(&src).unwrap());
        let mut node = Node::new(program.clone(), NodeConfig::default());
        node.run(1_000_000, &mut NullSink).unwrap();
        let out = program.label("out").unwrap() as usize;
        for (i, v) in values.iter().rev().enumerate() {
            prop_assert_eq!(node.mem()[out + i], *v);
        }
    }

    #[test]
    fn timer_fire_count_matches_period(period in 1u16..200, horizon in 10_000u64..400_000) {
        let src = format!("\
.handler TIMER0 h
.data n 1
main:
 ldi r1, {period}
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
h:
 lda r1, n
 addi r1, 1
 sta n, r1
 reti
");
        let program = Arc::new(assemble(&src).unwrap());
        let mut node = Node::new(program.clone(), NodeConfig::default());
        node.run(horizon, &mut NullSink).unwrap();
        let fired = node.mem()[program.label("n").unwrap() as usize] as u64;
        let period_cycles = u64::from(period) * 256;
        let expected = horizon / period_cycles;
        // Handler latency may defer the last fire past the horizon.
        prop_assert!(fired <= expected);
        prop_assert!(fired + 2 >= expected, "fired {} expected {}", fired, expected);
    }

    #[test]
    fn node_is_deterministic_for_any_seed(seed in any::<u64>()) {
        let src = "\
.handler TIMER0 h
.task t
main:
 ldi r1, 2
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
h:
 in r2, RAND
 ldi r3, 31
 and r2, r3
 cmpi r2, 0
 breq skip
 post t
skip:
 reti
t:
 in r4, RAND
 ldi r5, 63
 and r4, r5
 addi r4, 1
spin:
 subi r4, 1
 brne spin
 ret
";
        let program = Arc::new(assemble(src).unwrap());
        let run = |seed: u64| {
            let mut node = Node::new(
                program.clone(),
                NodeConfig { seed, ..NodeConfig::default() },
            );
            node.run(100_000, &mut NullSink).unwrap();
            (node.instructions_retired(), node.cycle())
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

proptest! {
    #[test]
    fn decode_encode_is_idempotent(word in any::<u32>()) {
        // Arbitrary words may be invalid; but whenever a word decodes, the
        // decoded instruction must re-encode to something that decodes to
        // the same instruction (canonicalization fixpoint).
        if let Ok(op) = tinyvm::decode(word) {
            let canonical = tinyvm::encode(op);
            prop_assert_eq!(tinyvm::decode(canonical), Ok(op));
            // And canonical forms are stable.
            prop_assert_eq!(tinyvm::encode(tinyvm::decode(canonical).unwrap()), canonical);
        }
    }

    #[test]
    fn generated_programs_encode_round_trip(ops in prop::collection::vec(arith_op(), 1..40)) {
        let src = render(&ops);
        let program = assemble(&src).unwrap();
        for &op in &program.ops {
            let w = tinyvm::encode(op);
            prop_assert_eq!(tinyvm::decode(w), Ok(op));
        }
        // The disassembly mentions every op's mnemonic line count.
        let listing = tinyvm::disassemble(&program);
        prop_assert_eq!(listing.lines().filter(|l| l.starts_with("  ")).count(), program.len());
    }
}
