//! Shared helpers for the evaluation-table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation section (Figure 5(a)–(c) and the §VI-E detector
//! discussion); this library renders the common report format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sentomist_apps::CaseResult;

/// Renders one case-study outcome: the Figure-5-style table, the
/// ground-truth symptom ranks, and the paper-vs-measured summary line.
pub fn render_case(
    title: &str,
    paper_samples: usize,
    paper_ranks: &str,
    result: &CaseResult,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ===");
    let _ = writeln!(out);
    let _ = write!(out, "{}", result.report.table(8, 2));
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "samples:        {} measured vs {} in the paper",
        result.sample_count, paper_samples
    );
    let _ = writeln!(
        out,
        "true symptoms:  {} interval(s), ranked {:?}",
        result.buggy.len(),
        result.buggy_ranks
    );
    let _ = writeln!(out, "paper ranks:    {paper_ranks}");
    let verdict = if result.buggy.is_empty() {
        "NO SYMPTOM TRIGGERED (re-run with another seed)"
    } else if result.all_buggy_in_top(result.buggy.len().max(4)) {
        "REPRODUCED: symptoms at the very top of the ranking"
    } else if result
        .worst_buggy_rank()
        .is_some_and(|r| r <= result.sample_count / 20 + 5)
    {
        "REPRODUCED (shape): symptoms within the top ~5%"
    } else {
        "NOT REPRODUCED: symptoms buried in the ranking"
    };
    let _ = writeln!(out, "verdict:        {verdict}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentomist_apps::{run_case2, Case2Config};

    #[test]
    fn render_includes_table_and_verdict() {
        let result = run_case2(&Case2Config::default()).unwrap();
        let s = render_case("Case study II", 195, "1, 2, 3", &result);
        assert!(s.contains("Instance Index"));
        assert!(s.contains("REPRODUCED"));
        assert!(s.contains("vs 195 in the paper"));
    }
}
