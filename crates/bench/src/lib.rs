//! Shared helpers for the evaluation-table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation section (Figure 5(a)–(c) and the §VI-E detector
//! discussion); this library renders the common report format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sentomist_apps::CaseResult;
use sentomist_core::campaign::{CampaignResult, Verdict};

/// Renders one case-study outcome: the Figure-5-style table, the
/// ground-truth symptom ranks, and the paper-vs-measured summary line.
pub fn render_case(
    title: &str,
    paper_samples: usize,
    paper_ranks: &str,
    result: &CaseResult,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ===");
    let _ = writeln!(out);
    let _ = write!(out, "{}", result.report.table(8, 2));
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "samples:        {} measured vs {} in the paper",
        result.sample_count, paper_samples
    );
    let _ = writeln!(
        out,
        "true symptoms:  {} interval(s), ranked {:?}",
        result.buggy.len(),
        result.buggy_ranks
    );
    let _ = writeln!(out, "paper ranks:    {paper_ranks}");
    let verdict = if result.buggy.is_empty() {
        "NO SYMPTOM TRIGGERED (re-run with another seed)"
    } else if result.all_buggy_in_top(result.buggy.len().max(4)) {
        "REPRODUCED: symptoms at the very top of the ranking"
    } else if result
        .worst_buggy_rank()
        .is_some_and(|r| r <= result.sample_count / 20 + 5)
    {
        "REPRODUCED (shape): symptoms within the top ~5%"
    } else {
        "NOT REPRODUCED: symptoms buried in the ranking"
    };
    let _ = writeln!(out, "verdict:        {verdict}");
    out
}

/// Renders a seed-sweep campaign: one row per run plus the
/// detection-rate summary. `replay_hint` is printed verbatim as the
/// reproduce-by-seed instruction for flagged rows.
pub fn render_campaign(title: &str, result: &CampaignResult, replay_hint: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let s = result.summary();
    let _ = writeln!(out, "=== {title} ===");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>9} {:>10} {:>10} {:>17}",
        "seed", "samples", "symptoms", "verdict", "best rank", "trace digest"
    );
    for o in &result.outcomes {
        let best = o
            .buggy_ranks
            .first()
            .map_or_else(|| "-".to_string(), ToString::to_string);
        let verdict = match o.verdict {
            Verdict::Triggered => "triggered",
            Verdict::Clean => "clean",
        };
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>9} {:>10} {:>10} {:>17}",
            o.seed, o.samples, o.symptoms, verdict, best, o.trace_digest
        );
    }
    for e in &result.errors {
        let _ = writeln!(out, "{:>6} FAILED: {}", e.seed, e.message);
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "trigger rate:   {}/{} runs ({:.0}%)",
        s.triggered,
        s.runs,
        100.0 * s.trigger_rate
    );
    let _ = writeln!(
        out,
        "detection:      best symptom in top-1 for {}, top-3 for {}, top-10 for {} \
         of the {} triggered runs",
        s.hits_top1, s.hits_top3, s.hits_top10, s.triggered
    );
    let _ = writeln!(
        out,
        "intervals:      {} total ({}..{} per run, mean {:.1})",
        s.total_samples, s.min_samples, s.max_samples, s.mean_samples
    );
    let _ = writeln!(out, "replay a row:   {replay_hint}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentomist_apps::{run_case2, Case2Config};

    #[test]
    fn render_includes_table_and_verdict() {
        let result = run_case2(&Case2Config::default()).unwrap();
        let s = render_case("Case study II", 195, "1, 2, 3", &result);
        assert!(s.contains("Instance Index"));
        assert!(s.contains("REPRODUCED"));
        assert!(s.contains("vs 195 in the paper"));
    }
}
