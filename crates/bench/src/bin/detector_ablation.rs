//! Regenerates the §VI-E discussion as a measured table: every plug-in
//! outlier detector applied to all three case studies, reporting where
//! each ranks the ground-truth symptoms.
//!
//! Run with: `cargo run --release -p sentomist-bench --bin detector_ablation`

use sentomist_apps::{
    run_case1, run_case2, run_case3, Case1Config, Case2Config, Case3Config, CaseResult,
    DetectorKind,
};
use std::time::Instant;

fn report(case: &str, kind: DetectorKind, result: &CaseResult, secs: f64) {
    println!(
        "{:<8} {:<12} {:>7} {:>6} {:>9.2}s   {:?}",
        case,
        kind.name(),
        result.sample_count,
        result.buggy.len(),
        secs,
        result.buggy_ranks,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== §VI-E — detector ablation across all case studies ===\n");
    println!(
        "{:<8} {:<12} {:>7} {:>6} {:>10}   symptom ranks",
        "case", "detector", "samples", "buggy", "wall-time"
    );
    for kind in DetectorKind::all(0.05) {
        let t = Instant::now();
        let r = run_case1(&Case1Config {
            detector: kind,
            ..Case1Config::default()
        })?;
        report("case-1", kind, &r, t.elapsed().as_secs_f64());
    }
    for kind in DetectorKind::all(0.05) {
        let t = Instant::now();
        let r = run_case2(&Case2Config {
            detector: kind,
            ..Case2Config::default()
        })?;
        report("case-2", kind, &r, t.elapsed().as_secs_f64());
    }
    for kind in DetectorKind::all(0.1) {
        let t = Instant::now();
        let r = run_case3(&Case3Config {
            detector: kind,
            ..Case3Config::default()
        })?;
        report("case-3", kind, &r, t.elapsed().as_secs_f64());
    }
    println!(
        "\nThe one-class SVM (the paper's default) surfaces every symptom; \
         kNN, Mahalanobis, KDE and the one-class Kernel Fisher Discriminant \
         are competitive (KFD's feature-space whitening avoids PCA's \
         masking); plain PCA is masked on case 2, where the outliers \
         dominate its principal components."
    );
    Ok(())
}
