//! Measures the paper's §IV premise: the transient race needs many random
//! testing scenarios to trigger — triggering gets rapidly harder as the
//! sampling period D grows (the race window must outlast D) — and,
//! whenever it does trigger, Sentomist's mining puts a true symptom at
//! (or next to) the top of that run's ranking, so no trigger is wasted on
//! an unnoticed symptom.
//!
//! Run with: `cargo run --release -p sentomist-bench --bin trigger_campaign`
//! An optional first argument sets the worker-thread count (default 1);
//! the numbers in the table are identical for every thread count — only
//! the wall-clock column changes.

use sentomist_apps::experiments::run_trigger_campaign;
use sentomist_core::campaign::CampaignOptions;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()
        .map_err(|_| "usage: trigger_campaign [threads]")?
        .unwrap_or(1);
    let runs = 16;
    println!(
        "=== Trigger campaign: {runs} independent 10 s runs per period \
         ({threads} worker thread{}) ===\n",
        if threads == 1 { "" } else { "s" }
    );
    println!(
        "{:>7} {:>11} {:>10} {:>14} {:>22} {:>10}",
        "D (ms)", "runs hit", "symptoms", "P(trigger)", "mining: hits in top-3", "wall (s)"
    );
    for period in [20u32, 40, 60, 80, 100] {
        let started = Instant::now();
        let result = run_trigger_campaign(
            period,
            runs,
            1000,
            0.05,
            CampaignOptions {
                threads,
                progress: false,
            },
        )?;
        let elapsed = started.elapsed().as_secs_f64();
        for e in &result.errors {
            eprintln!("seed {} failed: {}", e.seed, e.message);
        }
        let s = result.summary();
        println!(
            "{:>7} {:>8}/{:<2} {:>10} {:>14.2} {:>18}/{:<3} {:>10.2}",
            period,
            s.triggered,
            runs,
            s.total_symptoms,
            s.trigger_rate,
            s.hits_top3,
            s.triggered,
            elapsed,
        );
    }
    println!(
        "\nReading: at D = 20 ms nearly every 10 s run hits the race; by \
         D = 80-100 ms triggering becomes rare — the transient bug needs \
         many random scenarios (the paper's case for long emulated runs). \
         Whenever a run does trigger, the mined ranking puts a true \
         symptom in its top 3."
    );
    Ok(())
}
