//! Measures the paper's §IV premise: the transient race needs many random
//! testing scenarios to trigger — triggering gets rapidly harder as the
//! sampling period D grows (the race window must outlast D) — and,
//! whenever it does trigger, Sentomist's mining puts a true symptom at
//! (or next to) the top of that run's ranking, so no trigger is wasted on
//! an unnoticed symptom.
//!
//! Run with: `cargo run --release -p sentomist-bench --bin trigger_campaign`

use sentomist_apps::experiments::run_trigger_campaign;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runs = 16;
    println!("=== Trigger campaign: {runs} independent 10 s runs per period ===\n");
    println!(
        "{:>7} {:>11} {:>10} {:>14} {:>22}",
        "D (ms)", "runs hit", "symptoms", "P(trigger)", "mining: hits in top-3"
    );
    for period in [20u32, 40, 60, 80, 100] {
        let campaign = run_trigger_campaign(period, runs, 1000, 0.05)?;
        let hit: Vec<_> = campaign.iter().filter(|r| r.symptoms > 0).collect();
        let symptoms: usize = campaign.iter().map(|r| r.symptoms).sum();
        let top3 = hit
            .iter()
            .filter(|r| r.first_symptom_rank.is_some_and(|rk| rk <= 3))
            .count();
        println!(
            "{:>7} {:>8}/{:<2} {:>10} {:>14.2} {:>18}/{:<3}",
            period,
            hit.len(),
            runs,
            symptoms,
            hit.len() as f64 / runs as f64,
            top3,
            hit.len(),
        );
    }
    println!(
        "\nReading: at D = 20 ms nearly every 10 s run hits the race; by \
         D = 80-100 ms triggering becomes rare — the transient bug needs \
         many random scenarios (the paper's case for long emulated runs). \
         Whenever a run does trigger, the mined ranking puts a true \
         symptom in its top 3."
    );
    Ok(())
}
