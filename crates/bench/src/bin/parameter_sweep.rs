//! Sensitivity of the symptom ranking to the one-class SVM's two
//! hyperparameters — ν (outlier-fraction bound) and the RBF width γ —
//! the ablation DESIGN.md calls out for the paper's (unstated) defaults.
//!
//! Run with: `cargo run --release -p sentomist-bench --bin parameter_sweep`

use mlcore::{Kernel, OcSvmConfig, OneClassSvm};
use sentomist_apps::{forwarder, Case2Config};
use sentomist_core::{harvest_set, Pipeline, SampleIndex, SampleSet};
use sentomist_trace::Recorder;
use tinyvm::isa::irq;

/// One prepared case-II sample set with its ground truth.
struct Prepared {
    samples: SampleSet,
    buggy: Vec<SampleIndex>,
}

fn prepare() -> Result<Prepared, Box<dyn std::error::Error>> {
    let config = Case2Config::default();
    let relay = forwarder::relay_program_buggy()?;
    let drop_pc = relay.label("fwd_drop").expect("fwd_drop label") as usize;
    let link = netsim::LinkConfig {
        loss_prob: config.link_loss,
        ..netsim::LinkConfig::default()
    };
    let mut sim = netsim::NetSim::new(netsim::Topology::chain(3, link)?, config.seed);
    sim.add_node(
        forwarder::sink_program()?,
        forwarder::node_config(forwarder::nodes::SINK, config.seed),
    )?;
    sim.add_node(
        relay.clone(),
        forwarder::node_config(forwarder::nodes::RELAY, config.seed + 1),
    )?;
    sim.add_node(
        forwarder::source_program(&config.params)?,
        forwarder::node_config(forwarder::nodes::SOURCE, config.seed + 2),
    )?;
    let mut recorders = vec![
        Recorder::new(sim.node(0).program().len()),
        Recorder::new(relay.len()),
        Recorder::new(sim.node(2).program().len()),
    ];
    sim.run(config.run_seconds * 1_000_000, &mut recorders)?;
    let trace = recorders.swap_remove(1).into_trace();
    let samples = harvest_set(&trace, irq::RX, |seq, _| SampleIndex::Seq(seq))?;
    let buggy = samples
        .meta
        .iter()
        .zip(samples.features.rows_iter())
        .filter(|(_, row)| row[drop_pc] > 0.0)
        .map(|(m, _)| m.index)
        .collect();
    Ok(Prepared { samples, buggy })
}

fn ranks_for(prepared: &Prepared, nu: f64, kernel: Option<Kernel>) -> Vec<usize> {
    let detector = OneClassSvm {
        config: OcSvmConfig {
            nu,
            kernel,
            ..OcSvmConfig::default()
        },
    };
    let report = Pipeline::new(Box::new(detector))
        .rank_set(prepared.samples.clone())
        .expect("pipeline runs");
    let mut ranks: Vec<usize> = prepared
        .buggy
        .iter()
        .filter_map(|&b| report.rank_of(b))
        .collect();
    ranks.sort_unstable();
    ranks
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prepared = prepare()?;
    let l = prepared.samples.len();
    println!(
        "=== Hyperparameter sweep on case study II ({l} samples, {} true drops) ===\n",
        prepared.buggy.len()
    );

    println!("--- nu sweep (RBF gamma = 1/d) ---");
    println!("{:>6} {:>8}   symptom ranks", "nu", "nu*l");
    for nu in [0.01f64, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let ranks = ranks_for(&prepared, nu, None);
        println!("{:>6} {:>8.1}   {:?}", nu, nu * l as f64, ranks);
    }

    println!("\n--- gamma sweep (nu = 0.05) ---");
    println!("{:>12}   symptom ranks", "gamma");
    let d = prepared.samples.features.cols() as f64;
    for scale in [0.01f64, 0.1, 1.0, 10.0, 100.0] {
        let gamma = scale / d;
        let ranks = ranks_for(&prepared, 0.05, Some(Kernel::Rbf { gamma }));
        println!("{:>12.5}   {:?}", gamma, ranks);
    }

    println!(
        "\nReading: γ is a free parameter — the ranking is unchanged across \
         four orders of magnitude. ν matters only through the dual mass \
         ν·l: below ~5 the dual has too little mass for ρ to exceed an \
         isolated point's self-kernel term, and the symptoms sit *on* the \
         estimated boundary instead of outside it (they rank mid-pack). \
         Any ν with ν·l ≳ 10 reproduces the paper's top-3 ranking."
    );
    Ok(())
}
