//! Regenerates Figure 5(c): the suspicion ranking of report-timer
//! intervals across the four source nodes of a 9-node collection tree
//! with a co-existing heartbeat protocol (case III).
//!
//! Paper setup: 15-second run, 95 intervals from 4 sensors; the single
//! unhandled-FAIL instance ([8, 20]) ranked 4th (two higher-ranked
//! instances were false alarms).
//!
//! Run with: `cargo run --release -p sentomist-bench --bin case_study_3`

use sentomist_apps::{run_case3, Case3Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = run_case3(&Case3Config::default())?;
    print!(
        "{}",
        sentomist_bench::render_case(
            "Figure 5(c) — case study III: unhandled send failure (timer interrupt)",
            95,
            "the hang instance [8, 20] ranked 4th",
            &result,
        )
    );
    Ok(())
}
