//! Regenerates Figure 5(c): the suspicion ranking of report-timer
//! intervals across the four source nodes of a 9-node collection tree
//! with a co-existing heartbeat protocol (case III).
//!
//! Paper setup: 15-second run, 95 intervals from 4 sensors; the single
//! unhandled-FAIL instance ([8, 20]) ranked 4th (two higher-ranked
//! instances were false alarms).
//!
//! After the canonical single-seed figure, a seed-sweep campaign reruns
//! the whole case under independent seeds and reports the detection rate.
//!
//! Run with: `cargo run --release -p sentomist-bench --bin case_study_3`
//! Optional arguments: `[threads] [seeds]` (defaults 1 and 8).

use sentomist_apps::experiments::case3_job;
use sentomist_apps::{run_case3, Case3Config};
use sentomist_core::campaign::{run_campaign, CampaignOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let n_seeds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let result = run_case3(&Case3Config::default())?;
    print!(
        "{}",
        sentomist_bench::render_case(
            "Figure 5(c) — case study III: unhandled send failure (timer interrupt)",
            95,
            "the hang instance [8, 20] ranked 4th",
            &result,
        )
    );

    let seeds: Vec<u64> = (0..n_seeds).map(|i| 100 + i).collect();
    let campaign = run_campaign(
        &seeds,
        CampaignOptions {
            threads,
            progress: true,
        },
        case3_job(Case3Config::default()),
    );
    println!();
    print!(
        "{}",
        sentomist_bench::render_campaign(
            "Case study III seed sweep",
            &campaign,
            "sentomist campaign --case 3 --replay --seed <seed>",
        )
    );
    Ok(())
}
