//! Regenerates Figure 5(b): the suspicion ranking of packet-arrival
//! intervals at the relay of a three-node forwarding chain (case II).
//!
//! Paper setup: 20-second run, 195 intervals, exactly 3 of them actively
//! dropped a packet due to the busy flag; Sentomist ranked those as the
//! top three.
//!
//! After the canonical single-seed figure, a seed-sweep campaign reruns
//! the whole case under independent seeds and reports the detection rate.
//!
//! Run with: `cargo run --release -p sentomist-bench --bin case_study_2`
//! Optional arguments: `[threads] [seeds]` (defaults 1 and 8).

use sentomist_apps::experiments::case2_job;
use sentomist_apps::{run_case2, Case2Config};
use sentomist_core::campaign::{run_campaign, CampaignOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let n_seeds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let result = run_case2(&Case2Config::default())?;
    print!(
        "{}",
        sentomist_bench::render_case(
            "Figure 5(b) — case study II: busy-flag packet drop (SPI interrupt)",
            195,
            "the 3 drop symptoms ranked 1, 2, 3",
            &result,
        )
    );

    let seeds: Vec<u64> = (0..n_seeds).map(|i| 100 + i).collect();
    let campaign = run_campaign(
        &seeds,
        CampaignOptions {
            threads,
            progress: true,
        },
        case2_job(Case2Config::default()),
    );
    println!();
    print!(
        "{}",
        sentomist_bench::render_campaign(
            "Case study II seed sweep",
            &campaign,
            "sentomist campaign --case 2 --replay --seed <seed>",
        )
    );
    Ok(())
}
