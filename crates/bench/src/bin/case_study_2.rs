//! Regenerates Figure 5(b): the suspicion ranking of packet-arrival
//! intervals at the relay of a three-node forwarding chain (case II).
//!
//! Paper setup: 20-second run, 195 intervals, exactly 3 of them actively
//! dropped a packet due to the busy flag; Sentomist ranked those as the
//! top three.
//!
//! Run with: `cargo run --release -p sentomist-bench --bin case_study_2`

use sentomist_apps::{run_case2, Case2Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = run_case2(&Case2Config::default())?;
    print!(
        "{}",
        sentomist_bench::render_case(
            "Figure 5(b) — case study II: busy-flag packet drop (SPI interrupt)",
            195,
            "the 3 drop symptoms ranked 1, 2, 3",
            &result,
        )
    );
    Ok(())
}
