//! Regenerates the paper's §VI-E emulator-fidelity argument as a measured
//! table: the same buggy workload under a cycle-accurate emulator (the
//! Avrora role) and under a TOSSIM-style zero-duration sequential event
//! model. The transient bug and its symptoms only exist under the former.
//!
//! Run with: `cargo run --release -p sentomist-bench --bin emulator_fidelity`

use sentomist_apps::experiments::run_fidelity;
use tinyvm::TimingModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== §VI-E — emulator timing fidelity (Avrora vs TOSSIM role) ===\n");
    println!(
        "{:<16} {:>4} {:>10} {:>9} {:>9} {:>12}",
        "timing model", "D", "intervals", "symptoms", "polluted", "preemption?"
    );
    for period in [20u32, 40] {
        for (name, timing) in [
            ("cycle-accurate", TimingModel::CycleAccurate),
            ("zero-cost", TimingModel::ZeroCostEvents),
        ] {
            let mut symptoms = 0;
            let mut polluted = 0;
            let mut intervals = 0;
            let mut preempted = false;
            for seed in 0..4u64 {
                let o = run_fidelity(timing, period, 10, seed)?;
                symptoms += o.symptom_intervals;
                polluted += o.polluted_packets;
                intervals += o.intervals;
                preempted |= o.any_preemption;
            }
            println!(
                "{:<16} {:>4} {:>10} {:>9} {:>9} {:>12}",
                name, period, intervals, symptoms, polluted, preempted
            );
        }
    }
    println!(
        "\nUnder the sequential zero-duration model, executions never \
         interleave: the race cannot trigger and no symptom exists to be \
         mined — the paper's reason for building on Avrora rather than \
         TOSSIM."
    );
    Ok(())
}
