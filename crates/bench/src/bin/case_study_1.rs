//! Regenerates Figure 5(a): the suspicion ranking of ADC event-handling
//! intervals in the single-hop data-collection application (case study I).
//!
//! Paper setup: five 10-second testing runs with sampling period
//! D ∈ {20, 40, 60, 80, 100} ms; 1099 intervals; the top-3 ranked
//! instances all contained the data-pollution race.
//!
//! After the canonical single-seed figure, a seed-sweep campaign reruns
//! the whole case under independent seeds and reports the detection rate.
//!
//! Run with: `cargo run --release -p sentomist-bench --bin case_study_1`
//! Optional arguments: `[threads] [seeds]` (defaults 1 and 8).

use sentomist_apps::experiments::case1_job;
use sentomist_apps::{run_case1, Case1Config};
use sentomist_core::campaign::{run_campaign, CampaignOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);
    let n_seeds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let result = run_case1(&Case1Config::default())?;
    print!(
        "{}",
        sentomist_bench::render_case(
            "Figure 5(a) — case study I: data pollution (ADC interrupt)",
            1099,
            "top-3 inspected, all three confirmed the bug",
            &result,
        )
    );

    let seeds: Vec<u64> = (0..n_seeds).map(|i| 100 + i).collect();
    let campaign = run_campaign(
        &seeds,
        CampaignOptions {
            threads,
            progress: true,
        },
        case1_job(Case1Config::default()),
    );
    println!();
    print!(
        "{}",
        sentomist_bench::render_campaign(
            "Case study I seed sweep",
            &campaign,
            "sentomist campaign --case 1 --replay --seed <seed>",
        )
    );
    Ok(())
}
