//! Regenerates Figure 5(a): the suspicion ranking of ADC event-handling
//! intervals in the single-hop data-collection application (case study I).
//!
//! Paper setup: five 10-second testing runs with sampling period
//! D ∈ {20, 40, 60, 80, 100} ms; 1099 intervals; the top-3 ranked
//! instances all contained the data-pollution race.
//!
//! Run with: `cargo run --release -p sentomist-bench --bin case_study_1`

use sentomist_apps::{run_case1, Case1Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = run_case1(&Case1Config::default())?;
    print!(
        "{}",
        sentomist_bench::render_case(
            "Figure 5(a) — case study I: data pollution (ADC interrupt)",
            1099,
            "top-3 inspected, all three confirmed the bug",
            &result,
        )
    );
    Ok(())
}
