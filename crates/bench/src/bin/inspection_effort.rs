//! Quantifies the paper's headline claim — "dramatically reduces the human
//! efforts of inspection ... otherwise we have to manually check
//! tremendous data samples, typically with brute-force inspection" — by
//! measuring how many intervals a tester inspects before reaching the bug
//! symptoms under Sentomist's ranking versus brute-force baselines.
//!
//! Run with: `cargo run --release -p sentomist-bench --bin inspection_effort`

use sentomist_apps::experiments::effort_summary;
use sentomist_apps::{run_case1, run_case2, run_case3, Case1Config, Case2Config, Case3Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Inspection effort: Sentomist ranking vs brute force ===\n");
    println!(
        "{:<8} {:>7} {:>5} {:>13} {:>11} {:>13} {:>14} {:>7} {:>7}",
        "case",
        "samples",
        "bugs",
        "ranked:first",
        "ranked:all",
        "chrono:first",
        "random:E[first]",
        "AUC",
        "AP"
    );
    let rows: Vec<(&str, sentomist_apps::CaseResult)> = vec![
        ("case-1", run_case1(&Case1Config::default())?),
        ("case-2", run_case2(&Case2Config::default())?),
        ("case-3", run_case3(&Case3Config::default())?),
    ];
    for (name, result) in &rows {
        let e = effort_summary(result);
        println!(
            "{:<8} {:>7} {:>5} {:>13} {:>11} {:>13} {:>14.1} {:>7.3} {:>7.3}",
            name,
            e.samples,
            e.positives,
            e.ranked_first.map(|v| v.to_string()).unwrap_or_default(),
            e.ranked_all.map(|v| v.to_string()).unwrap_or_default(),
            e.chrono_first.map(|v| v.to_string()).unwrap_or_default(),
            e.random_expected_first,
            e.auc,
            e.avg_precision,
        );
    }
    println!(
        "\nReading: with Sentomist a tester finds the first real symptom \
         after inspecting 1 interval; brute-force chronological or random \
         inspection costs tens to hundreds."
    );
    Ok(())
}
