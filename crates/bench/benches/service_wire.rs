//! Clean-path overhead of the wire-hardening layer.
//!
//! PR 10 armed the service path end to end: per-frame read/write
//! deadlines on the daemon, connect/read/write deadlines plus the
//! idempotency-gated retry loop on the client, and an FNV-1a payload
//! checksum on every frame. On a healthy wire none of that machinery
//! fires, so its cost must be negligible — the robustness acceptance
//! bar is ≤5% versus the legacy undeadlined client against the same
//! daemon.
//!
//! Both sides run in-process over loopback; each iteration is a full
//! connect → Ping → response → close round trip, the worst case for
//! fixed per-connection costs (deadline arming is per-socket-option
//! syscalls, checksum is per-byte).
//!
//! Run with: `cargo bench -p sentomist-bench --bench service_wire`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sentomist_service::{
    request_with_retry, Client, ClientConfig, Request, Response, RetryPolicy, Server, ServiceConfig,
};

/// Round trips per timed sample: enough to amortize scheduler noise,
/// few enough that ten samples finish quickly.
const ROUND_TRIPS: u64 = 50;

fn service_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_wire");
    group.sample_size(30);
    group.throughput(Throughput::Elements(ROUND_TRIPS));

    // Legacy path: no deadlines armed on either side, no retry loop,
    // bare one-shot client. The daemon still checksums (protocol v2 is
    // unconditional), so this isolates the deadline+retry machinery.
    {
        let server = Server::start(ServiceConfig {
            read_timeout: None,
            write_timeout: None,
            ..ServiceConfig::default()
        })
        .expect("starting undeadlined daemon");
        let addr = server.local_addr();
        group.bench_with_input(BenchmarkId::new("ping", "plain"), &(), |b, ()| {
            b.iter(|| {
                for _ in 0..ROUND_TRIPS {
                    let mut client = Client::connect(addr).expect("connect");
                    match client.request(&Request::Ping) {
                        Ok(Response::Ok(p)) => assert_eq!(p, b"pong\n"),
                        other => panic!("plain ping failed: {other:?}"),
                    }
                }
            })
        });
        server.shutdown_and_join();
    }

    // Hardened path: daemon deadlines at their shipped defaults, client
    // through `request_with_retry` with the full deadline config and a
    // live (never-firing) retry budget.
    {
        let server = Server::start(ServiceConfig::default()).expect("starting hardened daemon");
        let addr = server.local_addr().to_string();
        let config = ClientConfig::service_defaults();
        let policy = RetryPolicy::default();
        group.bench_with_input(BenchmarkId::new("ping", "hardened"), &(), |b, ()| {
            b.iter(|| {
                for _ in 0..ROUND_TRIPS {
                    let (response, stats) =
                        request_with_retry(addr.as_str(), &Request::Ping, &config, &policy)
                            .expect("hardened ping");
                    match response {
                        Response::Ok(p) => assert_eq!(p, b"pong\n"),
                        other => panic!("hardened ping failed: {other:?}"),
                    }
                    assert_eq!(stats.retries, 0, "clean wire must not retry");
                }
            })
        });
        server.shutdown_and_join();
    }

    group.finish();
}

criterion_group!(benches, service_wire);
criterion_main!(benches);
