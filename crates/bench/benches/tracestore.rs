//! Trace-store codec throughput: cost of encoding a lifecycle trace into
//! the chunked `.stc` format, of decoding it back, and of streaming
//! interval extraction straight off the encoded bytes — plus the headline
//! bytes-per-item and naive-encoding ratio figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sentomist_trace::{Recorder, Trace};
use sentomist_tracestore::{read_trace, write_trace, TraceReader};
use tinyvm::devices::NodeConfig;
use tinyvm::node::Node;

fn record_trace(sim_seconds: u64) -> Trace {
    let params = sentomist_apps::oscilloscope::OscilloscopeParams::with_period_ms(20);
    let program = sentomist_apps::oscilloscope::buggy(&params).unwrap();
    let mut node = Node::new(program.clone(), NodeConfig::default());
    let mut rec = Recorder::new(program.len());
    node.run(sim_seconds * 1_000_000, &mut rec).unwrap();
    rec.into_trace()
}

fn items(trace: &Trace) -> u64 {
    (trace.events.len() + trace.segments.len()) as u64
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracestore_encode");
    for seconds in [2u64, 10] {
        let trace = record_trace(seconds);
        group.throughput(Throughput::Elements(items(&trace)));
        group.bench_with_input(BenchmarkId::new("items", items(&trace)), &trace, |b, t| {
            b.iter(|| {
                let mut out = Vec::new();
                write_trace(&mut out, t).unwrap().encoded_bytes
            })
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracestore_decode");
    for seconds in [2u64, 10] {
        let trace = record_trace(seconds);
        let mut bytes = Vec::new();
        let stats = write_trace(&mut bytes, &trace).unwrap();
        // The headline size figures, printed once per input size.
        println!(
            "tracestore: {} items, {} encoded bytes ({:.2}/item), {:.1}% of naive",
            items(&trace),
            stats.encoded_bytes,
            stats.encoded_bytes as f64 / items(&trace) as f64,
            100.0 * stats.ratio(),
        );
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("densify", items(&trace)),
            &bytes,
            |b, bytes| b.iter(|| read_trace(&bytes[..]).unwrap().events.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("stream_intervals", items(&trace)),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    TraceReader::new(&bytes[..])
                        .unwrap()
                        .replay_online()
                        .unwrap()
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
