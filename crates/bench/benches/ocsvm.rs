//! Detector benchmarks: SMO one-class SVM solve time versus sample count
//! and ν, and a wall-time comparison of all plug-in detectors on the same
//! sample set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcore::{
    FeatureMatrix, Kernel, KnnDetector, MahalanobisDetector, OneClassSvm, OutlierDetector,
    PcaDetector, Scaler,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sentomist_core::{sample::SampleMeta, Pipeline, SampleIndex, SampleSet};
use sentomist_trace::EventInterval;

/// Synthetic instruction-counter-like samples: a dense normal cluster with
/// correlated dimensions plus a sprinkle of outliers.
fn samples(n: usize, d: usize, seed: u64) -> FeatureMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut m = FeatureMatrix::with_capacity(n, d);
    for i in 0..n {
        let outlier = i % 97 == 96;
        let row = m.add_row();
        for (j, slot) in row.iter_mut().enumerate() {
            let base = ((j * 13) % 7) as f64 * 10.0;
            let noise: f64 = rng.gen_range(-1.0..1.0);
            *slot = if outlier && j % 5 == 0 {
                base * 2.0 + 40.0 + noise
            } else {
                base + noise
            };
        }
    }
    m
}

/// RBF Gram-matrix construction — the O(n²d) kernel of every SMO solve.
fn bench_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram_construction");
    for n in [400usize, 1000] {
        let data = Scaler::fit_transform(&samples(n, 64, 7));
        let kernel = Kernel::Rbf { gamma: 1.0 / 64.0 };
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| kernel.gram(d).rows())
        });
    }
    group.finish();
}

/// The featurize→scale→detect→rank vertical on pre-built samples.
fn bench_rank_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_path");
    for n in [400usize, 1000] {
        let meta: Vec<SampleMeta> = (0..n)
            .map(|i| SampleMeta {
                index: SampleIndex::Seq(i as u32 + 1),
                interval: EventInterval {
                    irq: 1,
                    start_index: i * 4,
                    end_index: i * 4 + 3,
                    last_run_index: None,
                    start_cycle: i as u64 * 100,
                    end_cycle: i as u64 * 100 + 80,
                    task_count: 1,
                },
            })
            .collect();
        let built = SampleSet {
            meta,
            features: samples(n, 64, 9),
        };
        let pipeline = Pipeline::default_ocsvm(0.05);
        group.bench_with_input(BenchmarkId::from_parameter(n), &built, |b, s| {
            b.iter(|| pipeline.rank_set(s.clone()).unwrap().ranking.len())
        });
    }
    group.finish();
}

fn bench_ocsvm_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ocsvm_samples");
    for n in [100usize, 400, 1000] {
        let data = Scaler::fit_transform(&samples(n, 64, 1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| OneClassSvm::with_nu(0.05).score(d).unwrap().len())
        });
    }
    group.finish();
}

fn bench_ocsvm_nu(c: &mut Criterion) {
    let data = Scaler::fit_transform(&samples(400, 64, 2));
    let mut group = c.benchmark_group("ocsvm_nu");
    for nu in [0.02f64, 0.05, 0.2, 0.5] {
        group.bench_with_input(BenchmarkId::from_parameter(nu), &data, |b, d| {
            b.iter(|| OneClassSvm::with_nu(nu).score(d).unwrap().len())
        });
    }
    group.finish();
}

fn bench_detector_comparison(c: &mut Criterion) {
    let data = Scaler::fit_transform(&samples(400, 64, 3));
    let detectors: Vec<Box<dyn OutlierDetector>> = vec![
        Box::new(OneClassSvm::with_nu(0.05)),
        Box::new(PcaDetector::default()),
        Box::new(KnnDetector::default()),
        Box::new(MahalanobisDetector::default()),
    ];
    let mut group = c.benchmark_group("detector_wall_time");
    for det in detectors {
        let name = det.name();
        group.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, d| {
            b.iter(|| det.score(d).unwrap().len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_gram, bench_rank_path, bench_ocsvm_scaling, bench_ocsvm_nu, bench_detector_comparison
}
criterion_main!(benches);
