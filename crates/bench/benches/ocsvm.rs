//! Detector benchmarks: SMO one-class SVM solve time versus sample count
//! and ν, and a wall-time comparison of all plug-in detectors on the same
//! sample set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcore::{KnnDetector, MahalanobisDetector, OneClassSvm, OutlierDetector, PcaDetector, Scaler};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Synthetic instruction-counter-like samples: a dense normal cluster with
/// correlated dimensions plus a sprinkle of outliers.
fn samples(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let outlier = i % 97 == 96;
            (0..d)
                .map(|j| {
                    let base = ((j * 13) % 7) as f64 * 10.0;
                    let noise: f64 = rng.gen_range(-1.0..1.0);
                    if outlier && j % 5 == 0 {
                        base * 2.0 + 40.0 + noise
                    } else {
                        base + noise
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_ocsvm_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ocsvm_samples");
    for n in [100usize, 400, 1000] {
        let data = Scaler::fit_transform(&samples(n, 64, 1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| OneClassSvm::with_nu(0.05).score(d).unwrap().len())
        });
    }
    group.finish();
}

fn bench_ocsvm_nu(c: &mut Criterion) {
    let data = Scaler::fit_transform(&samples(400, 64, 2));
    let mut group = c.benchmark_group("ocsvm_nu");
    for nu in [0.02f64, 0.05, 0.2, 0.5] {
        group.bench_with_input(BenchmarkId::from_parameter(nu), &data, |b, d| {
            b.iter(|| OneClassSvm::with_nu(nu).score(d).unwrap().len())
        });
    }
    group.finish();
}

fn bench_detector_comparison(c: &mut Criterion) {
    let data = Scaler::fit_transform(&samples(400, 64, 3));
    let detectors: Vec<Box<dyn OutlierDetector>> = vec![
        Box::new(OneClassSvm::with_nu(0.05)),
        Box::new(PcaDetector::default()),
        Box::new(KnnDetector::default()),
        Box::new(MahalanobisDetector::default()),
    ];
    let mut group = c.benchmark_group("detector_wall_time");
    for det in detectors {
        let name = det.name();
        group.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, d| {
            b.iter(|| det.score(d).unwrap().len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_ocsvm_scaling, bench_ocsvm_nu, bench_detector_comparison
}
criterion_main!(benches);
