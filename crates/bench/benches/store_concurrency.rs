//! Multi-writer store throughput and the zero-copy re-mine win.
//!
//! Two questions, headline numbers for `BENCH_store.json`:
//!
//! 1. How does corpus ingestion scale when the seed sweep is fanned
//!    across 1/2/4/8 writer shards, each thread publishing through its
//!    own write-ahead log (no shared directory, no lock)?
//! 2. What does the borrowed-slice decode path ([`TraceImage`] /
//!    [`TraceView`]) buy over the owned streaming reader when re-mining
//!    a stored corpus?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sentomist_trace::{Recorder, Trace};
use sentomist_tracestore::{read_trace_file, CorpusIndex, TraceImage, TraceReader, TraceStore};
use std::path::PathBuf;
use tinyvm::devices::NodeConfig;
use tinyvm::node::Node;

/// One realistic lifecycle trace: the case-I oscilloscope app, 2
/// simulated seconds — the per-seed unit of work a campaign persists.
fn record_trace(seed: u64) -> Trace {
    let params = sentomist_apps::oscilloscope::OscilloscopeParams::with_period_ms(20);
    let program = sentomist_apps::oscilloscope::buggy(&params).unwrap();
    let mut node = Node::new(
        program.clone(),
        NodeConfig {
            seed,
            ..NodeConfig::default()
        },
    );
    let mut rec = Recorder::new(program.len());
    node.run(2_000_000, &mut rec).unwrap();
    rec.into_trace()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stc-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Ingest 16 pre-recorded runs through W concurrent writer threads,
/// each publishing into its own shard (W=1 writes the flat tree), then
/// merge the index. The work is identical for every W; only the
/// topology changes.
fn bench_ingest(c: &mut Criterion) {
    let seeds: Vec<u64> = (1..=16).collect();
    let traces: Vec<Trace> = seeds.iter().map(|&s| record_trace(s)).collect();
    let mut group = c.benchmark_group("store_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(seeds.len() as u64));
    for writers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("writers", writers),
            &writers,
            |b, &writers| {
                b.iter(|| {
                    let root = scratch("ingest");
                    let store = TraceStore::create(&root).unwrap();
                    std::thread::scope(|scope| {
                        for w in 0..writers {
                            let store = &store;
                            let seeds = &seeds;
                            let traces = &traces;
                            scope.spawn(move || {
                                let sink = if writers > 1 {
                                    store.shard(&format!("writer-{w:02}")).unwrap()
                                } else {
                                    store.clone()
                                };
                                for (i, &seed) in seeds.iter().enumerate() {
                                    if i % writers == w {
                                        sink.save_run(seed, "bench", 0xbead, &traces[i..=i])
                                            .unwrap();
                                    }
                                }
                            });
                        }
                    });
                    let index = CorpusIndex::merge(&store).unwrap();
                    std::fs::remove_dir_all(&root).ok();
                    index.corpus_digest()
                })
            },
        );
    }
    group.finish();
}

/// Decode a stored corpus back to dense traces: the owned streaming
/// reader (per-chunk buffer copies) versus the zero-copy image view
/// (borrowed slices, in-place varint decode).
fn bench_remine(c: &mut Criterion) {
    let root = scratch("remine");
    let store = TraceStore::create(&root).unwrap();
    let mut files = Vec::new();
    let mut items = 0u64;
    for seed in 1..=8u64 {
        let trace = record_trace(seed);
        items += (trace.events.len() + trace.segments.len()) as u64;
        let m = store.save_run(seed, "bench", 0xbead, &[trace]).unwrap();
        files.push(store.run_dir(&m.run_id).join(&m.nodes[0].file));
    }

    let mut group = c.benchmark_group("store_remine");
    group.throughput(Throughput::Elements(items));
    group.bench_function("owned_reader", |b| {
        b.iter(|| {
            let mut digest = 0u64;
            for f in &files {
                digest ^= read_trace_file(f).unwrap().digest();
            }
            digest
        })
    });
    group.bench_function("zero_copy_view", |b| {
        b.iter(|| {
            let mut digest = 0u64;
            for f in &files {
                let image = TraceImage::open(f).unwrap();
                digest ^= image.view().unwrap().to_trace().unwrap().digest();
            }
            digest
        })
    });
    group.finish();

    // Streaming interval extraction: same comparison without ever
    // densifying the trace — the replay path `trace mine` rides.
    let mut group = c.benchmark_group("store_replay");
    group.throughput(Throughput::Elements(items));
    group.bench_function("owned_reader", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for f in &files {
                n += TraceReader::open(f).unwrap().replay_online().unwrap().len();
            }
            n
        })
    });
    group.bench_function("zero_copy_view", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for f in &files {
                let image = TraceImage::open(f).unwrap();
                n += image.view().unwrap().replay_online().unwrap().len();
            }
            n
        })
    });
    group.finish();
    std::fs::remove_dir_all(&root).ok();
}

criterion_group!(benches, bench_ingest, bench_remine);
criterion_main!(benches);
