//! Cost profile of the hunt subsystem's per-seed work.
//!
//! A hunt iteration is the heaviest per-seed job in the repo: scenario
//! generation, emulation, two mining passes (live + the
//! `mining_determinism` re-mine) and the invariant registry. These
//! benchmarks split that cost so regressions are attributable:
//!
//! * `scenario_gen` — pure seeded generation across all three cases;
//!   this must stay in the nanoseconds, it runs once per seed per
//!   target and proptest hammers it;
//! * `iteration` — the full emulate→mine→re-mine→check job per case on
//!   the buggy variant, i.e. the wall-clock unit a campaign's
//!   `--iterations` knob multiplies;
//! * `invariant_check` — the registry alone on prebuilt evidence, which
//!   must be noise compared to mining.
//!
//! Run with: `cargo bench -p sentomist-bench --bench hunt`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sentomist_apps::{hunt_iteration, scenario, scenario_evidence, HuntCase, Variant};
use sentomist_core::hunt::{check_invariants, InvariantPolicy};

fn hunt_benches(c: &mut Criterion) {
    let policy = InvariantPolicy::default();

    let mut group = c.benchmark_group("hunt");

    // Seeded scenario generation: pure, total, and cheap enough that a
    // campaign's seed sweep never notices it.
    group.throughput(Throughput::Elements(64));
    group.bench_function("scenario_gen", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for seed in 0..64u64 {
                for case in HuntCase::ALL {
                    acc ^= scenario(case, Variant::Buggy, seed).node_seed;
                }
            }
            acc
        });
    });

    // The full per-seed job, one case at a time. Sample size is small:
    // each iteration emulates seconds of simulated network time.
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    for case in HuntCase::ALL {
        group.bench_with_input(
            BenchmarkId::new("iteration", case.name()),
            &case,
            |b, &case| {
                b.iter(|| {
                    hunt_iteration(case, Variant::Buggy, 0xBEEF, &policy)
                        .expect("hunt iteration succeeds")
                });
            },
        );
    }

    // The invariant registry on already-mined evidence: bookkeeping
    // only, so it should be invisible next to the mining above.
    let (record, traces) = hunt_iteration(HuntCase::Oscilloscope, Variant::Buggy, 0xBEEF, &policy)
        .expect("hunt iteration succeeds");
    drop(traces);
    let s = scenario(HuntCase::Oscilloscope, Variant::Buggy, 0xBEEF);
    let mined = sentomist_apps::mine_scenario(
        &s,
        &sentomist_apps::emulate_scenario(&s).expect("emulation succeeds"),
    )
    .expect("mining succeeds");
    let evidence = scenario_evidence(&s, &mined, true);
    group.sample_size(50);
    group.bench_function("invariant_check", |b| {
        b.iter(|| check_invariants(&evidence, &policy));
    });
    assert_eq!(record.outcome.seed, 0xBEEF);

    group.finish();
}

criterion_group!(benches, hunt_benches);
criterion_main!(benches);
