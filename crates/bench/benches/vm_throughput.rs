//! Emulator throughput: instructions retired per second of host time, for
//! a compute-bound program and for the event-driven Oscilloscope workload
//! (which sleeps between events), plus assembler speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use tinyvm::devices::NodeConfig;
use tinyvm::node::Node;
use tinyvm::NullSink;

const SPIN: &str = "\
.data acc 1
main:
 ldi r1, 0
 ldi r2, 0
outer:
 ldi r3, 1000
inner:
 add r1, r3
 subi r3, 1
 brne inner
 addi r2, 1
 cmpi r2, 200
 brne outer
 sta acc, r1
 halt
";

fn bench_cpu(c: &mut Criterion) {
    let program = Arc::new(tinyvm::assemble(SPIN).unwrap());
    let mut group = c.benchmark_group("vm");
    // Count retired instructions once so throughput is meaningful.
    let mut probe = Node::new(program.clone(), NodeConfig::default());
    probe.run(u64::MAX / 2, &mut NullSink).unwrap();
    let instructions = probe.instructions_retired();
    group.throughput(Throughput::Elements(instructions));
    group.bench_function("compute_bound_instructions", |b| {
        b.iter(|| {
            let mut node = Node::new(program.clone(), NodeConfig::default());
            node.run(u64::MAX / 2, &mut NullSink).unwrap();
            assert!(node.halted());
            node.instructions_retired()
        })
    });
    group.finish();
}

fn bench_event_driven(c: &mut Criterion) {
    let params = sentomist_apps::oscilloscope::OscilloscopeParams::with_period_ms(20);
    let program = sentomist_apps::oscilloscope::buggy(&params).unwrap();
    let mut group = c.benchmark_group("vm_event_driven");
    for seconds in [1u64, 5] {
        group.bench_with_input(
            BenchmarkId::new("oscilloscope_sim_seconds", seconds),
            &seconds,
            |b, &secs| {
                b.iter(|| {
                    let mut node = Node::new(program.clone(), NodeConfig::default());
                    node.run(secs * 1_000_000, &mut NullSink).unwrap();
                    node.instructions_retired()
                })
            },
        );
    }
    group.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let params = sentomist_apps::oscilloscope::OscilloscopeParams::default();
    // Re-generate the source each iteration? No: assembling is the cost.
    let src = {
        // Assemble once to grab a representative source via the public API.
        let _ = sentomist_apps::oscilloscope::buggy(&params).unwrap();
        // Use the stress of assembling the CTP program (the largest app).
        sentomist_apps::ctp::buggy(&sentomist_apps::ctp::CtpParams::default()).unwrap()
    };
    drop(src);
    c.bench_function("assemble_ctp_app", |b| {
        b.iter(|| sentomist_apps::ctp::buggy(&sentomist_apps::ctp::CtpParams::default()).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_cpu, bench_event_driven, bench_assembler
}
criterion_main!(benches);
