//! How campaign wall-clock time scales with the worker-thread count.
//!
//! The orchestrator's determinism contract says thread count changes only
//! *when* outcomes are produced, never their content — this bench measures
//! the "when": a short 8-seed case-I trigger sweep driven by 1, 2 and 4
//! workers. On a multi-core host the 4-thread sweep should take well under
//! half the single-thread time; on a single core all three are equal.
//!
//! Run with: `cargo bench -p sentomist-bench --bench campaign_scaling`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sentomist_apps::experiments::trigger_job;
use sentomist_core::campaign::{run_campaign, CampaignOptions};

fn campaign_scaling(c: &mut Criterion) {
    let seeds: Vec<u64> = (1000..1008).collect();
    // 2-second runs keep the bench quick while still dominating the
    // per-job time with real emulation + mining work.
    let job = trigger_job(20, 2, 0.05).expect("oscilloscope assembles");

    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(seeds.len() as u64));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_campaign(
                        &seeds,
                        CampaignOptions {
                            threads,
                            progress: false,
                        },
                        &job,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, campaign_scaling);
criterion_main!(benches);
