//! End-to-end wall time of the full Sentomist pipeline on each case study
//! (emulate → trace → anatomize → featurize → detect → rank), the numbers
//! behind the paper's "greatly speeds up debugging" claim.

use criterion::{criterion_group, criterion_main, Criterion};
use sentomist_apps::{run_case1, run_case2, run_case3, Case1Config, Case2Config, Case3Config};

fn bench_cases(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.bench_function("case1_five_runs_10s", |b| {
        b.iter(|| run_case1(&Case1Config::default()).unwrap().sample_count)
    });
    group.bench_function("case2_chain_20s", |b| {
        b.iter(|| run_case2(&Case2Config::default()).unwrap().sample_count)
    });
    group.bench_function("case3_tree_15s", |b| {
        b.iter(|| run_case3(&Case3Config::default()).unwrap().sample_count)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    targets = bench_cases
}
criterion_main!(benches);
