//! Clean-path overhead of the supervised worker pool.
//!
//! `run_supervised` buys panic isolation (`catch_unwind` per attempt), a
//! watchdog channel, retry bookkeeping and a per-seed completion
//! callback. On a healthy campaign none of that machinery fires, so its
//! cost must be negligible — the robustness acceptance bar is ≤5%
//! overhead versus the plain `run_campaign` pool on the same job.
//!
//! Two job shapes bracket the claim:
//!
//! * `synthetic` — a ~1 ms SplitMix64 spin, small enough that any
//!   per-run fixed cost would show up;
//! * `trigger` — the real case-I emulate→mine job, the shape production
//!   sweeps actually run.
//!
//! Run with: `cargo bench -p sentomist-bench --bench supervised_overhead`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sentomist_apps::experiments::trigger_job;
use sentomist_core::campaign::{run_campaign, CampaignOptions, RunOutcome, Verdict};
use sentomist_core::supervise::{adapt_seed_job, run_supervised, SupervisorOptions};
use std::sync::Arc;

/// ~1 ms of seed-dependent integer work with a data-dependent result,
/// so neither pool can skip it.
fn synthetic_job(seed: u64) -> Result<RunOutcome, String> {
    let mut x = seed;
    for _ in 0..200_000 {
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    }
    Ok(RunOutcome {
        seed,
        samples: (x % 16) as usize,
        symptoms: 0,
        buggy_ranks: vec![],
        verdict: Verdict::Clean,
        trace_digest: format!("{x:016x}"),
        wall_time_ms: 0,
    })
}

fn supervised_overhead(c: &mut Criterion) {
    let seeds: Vec<u64> = (1000..1032).collect();
    let threads = 4;

    let mut group = c.benchmark_group("supervised_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(seeds.len() as u64));

    group.bench_with_input(BenchmarkId::new("synthetic", "plain"), &(), |b, ()| {
        b.iter(|| {
            run_campaign(
                &seeds,
                CampaignOptions {
                    threads,
                    progress: false,
                },
                synthetic_job,
            )
        });
    });
    group.bench_with_input(BenchmarkId::new("synthetic", "supervised"), &(), |b, ()| {
        let job = Arc::new(adapt_seed_job(synthetic_job));
        let opts = SupervisorOptions {
            threads,
            ..SupervisorOptions::default()
        };
        b.iter(|| run_supervised(&seeds, &opts, Arc::clone(&job), |_| {}));
    });

    // The real case-I trigger sweep: emulate + mine per seed, the job
    // shape `campaign` runs in production.
    let trigger_seeds: Vec<u64> = (1000..1008).collect();
    let plain_job = trigger_job(20, 1, 0.05).expect("oscilloscope assembles");
    group.bench_with_input(BenchmarkId::new("trigger", "plain"), &(), |b, ()| {
        b.iter(|| {
            run_campaign(
                &trigger_seeds,
                CampaignOptions {
                    threads,
                    progress: false,
                },
                &plain_job,
            )
        });
    });
    group.bench_with_input(BenchmarkId::new("trigger", "supervised"), &(), |b, ()| {
        let job = Arc::new(adapt_seed_job(
            trigger_job(20, 1, 0.05).expect("oscilloscope assembles"),
        ));
        let opts = SupervisorOptions {
            threads,
            ..SupervisorOptions::default()
        };
        b.iter(|| run_supervised(&trigger_seeds, &opts, Arc::clone(&job), |_| {}));
    });

    group.finish();
}

criterion_group!(benches, supervised_overhead);
criterion_main!(benches);
