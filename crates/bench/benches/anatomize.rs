//! Anatomizer throughput: cost of the Figure-4 interval extraction and of
//! instruction-counter featurization as the trace grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sentomist_trace::{extract, CounterTable, Recorder, Trace};
use std::sync::Arc;
use tinyvm::devices::NodeConfig;
use tinyvm::node::Node;

fn record_trace(sim_seconds: u64) -> Trace {
    let params = sentomist_apps::oscilloscope::OscilloscopeParams::with_period_ms(20);
    let program = sentomist_apps::oscilloscope::buggy(&params).unwrap();
    let mut node = Node::new(program.clone(), NodeConfig::default());
    let mut rec = Recorder::new(program.len());
    node.run(sim_seconds * 1_000_000, &mut rec).unwrap();
    rec.into_trace()
}

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("anatomize_extract");
    for seconds in [2u64, 10] {
        let trace = record_trace(seconds);
        group.throughput(Throughput::Elements(trace.events.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("events", trace.events.len()),
            &trace,
            |b, t| b.iter(|| extract(t).unwrap().intervals.len()),
        );
    }
    group.finish();
}

fn bench_counters(c: &mut Criterion) {
    let trace = record_trace(10);
    let extraction = extract(&trace).unwrap();
    let mut group = c.benchmark_group("anatomize_counters");
    group.bench_function("build_prefix_table", |b| {
        b.iter(|| CounterTable::new(&trace).dimension())
    });
    let table = CounterTable::new(&trace);
    group.throughput(Throughput::Elements(extraction.intervals.len() as u64));
    group.bench_function("featurize_all_intervals", |b| {
        b.iter(|| {
            extraction
                .intervals
                .iter()
                .map(|iv| table.counter(iv)[0])
                .sum::<u64>()
        })
    });
    group.finish();
}

fn bench_recorder_overhead(c: &mut Criterion) {
    // Tracing cost: same workload with and without a recorder attached.
    let params = sentomist_apps::oscilloscope::OscilloscopeParams::with_period_ms(20);
    let program = sentomist_apps::oscilloscope::buggy(&params).unwrap();
    let mut group = c.benchmark_group("recorder_overhead");
    group.bench_function("null_sink", |b| {
        b.iter(|| {
            let mut node = Node::new(Arc::clone(&program), NodeConfig::default());
            node.run(2_000_000, &mut tinyvm::NullSink).unwrap();
            node.instructions_retired()
        })
    });
    group.bench_function("recording", |b| {
        b.iter(|| {
            let mut node = Node::new(Arc::clone(&program), NodeConfig::default());
            let mut rec = Recorder::new(program.len());
            node.run(2_000_000, &mut rec).unwrap();
            rec.into_trace().events.len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_extract, bench_counters, bench_recorder_overhead
}
criterion_main!(benches);
