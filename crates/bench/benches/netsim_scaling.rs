//! Multi-node simulation scaling: wall time of the conservative
//! synchronization engine as the network grows (grid of heartbeat nodes),
//! and the cost of link-loss modelling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::{LinkConfig, NetSim, Topology};
use std::sync::Arc;
use tinyvm::devices::NodeConfig;
use tinyvm::{NullSink, Program};

/// Every node broadcasts a beacon each ~100 ms and counts what it hears.
fn beacon_program() -> Arc<Program> {
    Arc::new(
        tinyvm::assemble(
            "\
.handler TIMER0 beat
.handler RX on_rx
.data heard 1
main:
 in r1, RAND
 ldi r2, 63
 and r1, r2
 addi r1, 390
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
beat:
 in r2, NODE_ID
 out RADIO_TX_PUSH, r2
 ldi r3, 0xFFFF
 out RADIO_SEND, r3
 reti
on_rx:
 in r1, RADIO_RX_POP
 lda r2, heard
 addi r2, 1
 sta heard, r2
 reti
",
        )
        .unwrap(),
    )
}

fn run_grid(side: u16, loss: f64, sim_cycles: u64) -> u64 {
    let program = beacon_program();
    let link = LinkConfig {
        latency_cycles: 128,
        loss_prob: loss,
    };
    let topo = Topology::grid(side, side, link).unwrap();
    let mut sim = NetSim::new(topo, 11);
    let count = side * side;
    for id in 0..count {
        sim.add_node(
            program.clone(),
            NodeConfig {
                node_id: id,
                seed: 100 + id as u64,
                ..NodeConfig::default()
            },
        )
        .unwrap();
    }
    let mut sinks = vec![NullSink; count as usize];
    sim.run(sim_cycles, &mut sinks).unwrap();
    (0..count)
        .map(|id| sim.node(id).instructions_retired())
        .sum()
}

fn bench_grid_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_grid");
    for side in [2u16, 4, 6] {
        group.bench_with_input(BenchmarkId::new("nodes", side * side), &side, |b, &side| {
            b.iter(|| run_grid(side, 0.0, 500_000))
        });
    }
    group.finish();
}

fn bench_lossy_links(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_loss");
    for loss in [0.0f64, 0.3] {
        group.bench_with_input(BenchmarkId::new("p", loss), &loss, |b, &loss| {
            b.iter(|| run_grid(4, loss, 500_000))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_grid_sizes, bench_lossy_links
}
criterion_main!(benches);
