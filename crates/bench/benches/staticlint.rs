//! Static analyzer cost on the largest bundled app (CTP): CFG
//! construction alone versus the full rule pipeline, plus the smaller
//! apps for scaling context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use staticlint::{lint, Cfg, ContextMap};

fn programs() -> Vec<(&'static str, std::sync::Arc<tinyvm::Program>)> {
    vec![
        (
            "oscilloscope",
            sentomist_apps::oscilloscope::buggy(&Default::default()).unwrap(),
        ),
        (
            "forwarder",
            sentomist_apps::forwarder::relay_program_buggy().unwrap(),
        ),
        (
            "ctp",
            sentomist_apps::ctp::buggy(&Default::default()).unwrap(),
        ),
    ]
}

fn bench_cfg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("staticlint_cfg");
    for (name, program) in programs() {
        group.throughput(Throughput::Elements(program.len() as u64));
        group.bench_with_input(BenchmarkId::new("build", name), &program, |b, p| {
            b.iter(|| {
                let cfg = Cfg::build(p);
                let ctx = ContextMap::build(p, &cfg);
                (cfg.blocks.len(), ctx.contexts.len())
            })
        });
    }
    group.finish();
}

fn bench_full_lint(c: &mut Criterion) {
    let mut group = c.benchmark_group("staticlint_lint");
    for (name, program) in programs() {
        group.throughput(Throughput::Elements(program.len() as u64));
        group.bench_with_input(BenchmarkId::new("full", name), &program, |b, p| {
            b.iter(|| lint(p).warnings.len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_cfg_build, bench_full_lint
}
criterion_main!(benches);
