//! Static analyzer cost on the largest bundled app (CTP): CFG
//! construction alone versus the full rule pipeline, plus dependence-
//! graph construction and backward slicing, with the smaller apps for
//! scaling context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use staticlint::{lint, Cfg, ContextMap, DependenceGraph};

fn programs() -> Vec<(&'static str, std::sync::Arc<tinyvm::Program>)> {
    vec![
        (
            "oscilloscope",
            sentomist_apps::oscilloscope::buggy(&Default::default()).unwrap(),
        ),
        (
            "forwarder",
            sentomist_apps::forwarder::relay_program_buggy().unwrap(),
        ),
        (
            "ctp",
            sentomist_apps::ctp::buggy(&Default::default()).unwrap(),
        ),
    ]
}

fn bench_cfg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("staticlint_cfg");
    for (name, program) in programs() {
        group.throughput(Throughput::Elements(program.len() as u64));
        group.bench_with_input(BenchmarkId::new("build", name), &program, |b, p| {
            b.iter(|| {
                let cfg = Cfg::build(p);
                let ctx = ContextMap::build(p, &cfg);
                (cfg.blocks.len(), ctx.contexts.len())
            })
        });
    }
    group.finish();
}

fn bench_full_lint(c: &mut Criterion) {
    let mut group = c.benchmark_group("staticlint_lint");
    for (name, program) in programs() {
        group.throughput(Throughput::Elements(program.len() as u64));
        group.bench_with_input(BenchmarkId::new("full", name), &program, |b, p| {
            b.iter(|| lint(p).warnings.len())
        });
    }
    group.finish();
}

fn bench_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("staticlint_slice");
    for (name, program) in programs() {
        group.throughput(Throughput::Elements(program.len() as u64));
        // Graph construction dominates; slicing from the lint-flagged
        // seeds is the query the CLI and daemon answer.
        group.bench_with_input(BenchmarkId::new("graph", name), &program, |b, p| {
            b.iter(|| DependenceGraph::build(p).cross_edges().len())
        });
        let graph = DependenceGraph::build(&program);
        let seeds = sentomist_apps::default_slice_seeds(&program);
        assert!(!seeds.is_empty(), "{name}: no lint-flagged slice seeds");
        group.bench_with_input(
            BenchmarkId::new("backward_slice", name),
            &(&graph, &seeds),
            |b, (g, s)| b.iter(|| g.backward_slice(s).unwrap().pcs.len()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_cfg_build, bench_full_lint, bench_slice
}
criterion_main!(benches);
