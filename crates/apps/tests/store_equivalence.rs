//! Store equivalence: mining a persisted corpus must reproduce live
//! mining *bit for bit*.
//!
//! Each test emulates once, persists the lifecycle traces through the
//! `.stc` codec into a [`TraceStore`], loads them back, re-mines, and
//! compares against the same golden digests that `equivalence_matrix.rs`
//! pins for the live pipeline. A single ULP of drift in one score, one
//! reordered sample, or one corrupted counter on the disk round-trip
//! changes the digest and fails the suite.

use sentomist_apps::{
    mine_case1, mine_case2, mine_case3, mine_trigger_trace, run_case1_traced, run_case2_traced,
    run_case3_traced, trigger_job_traced, Case1Config, Case2Config, Case3Config, CaseResult,
};
use sentomist_core::campaign::CampaignOptions;
use sentomist_core::{mine_store, Report};
use sentomist_trace::Trace;
use sentomist_tracestore::TraceStore;
use std::path::PathBuf;

/// The live-pipeline golden digests from `equivalence_matrix.rs`. A store
/// round-trip that changes any of these has corrupted the traces.
const GOLDEN_CASE1: &str = "b5e1c4b0205f2c4a";
const GOLDEN_CASE2: &str = "7948b906723fed9b";
const GOLDEN_CASE3: &str = "e1540603f9e1ec23";
const GOLDEN_CAMPAIGN: &str = "7b1a07b56e2d3d59";

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

fn report_digest(report: &Report) -> String {
    let mut h = Fnv::new();
    h.update(report.detector.as_bytes());
    for r in &report.ranking {
        h.update(r.index.to_string().as_bytes());
        h.update(&r.score.to_bits().to_le_bytes());
    }
    h.hex()
}

fn case_digest(result: &CaseResult) -> String {
    let mut h = Fnv::new();
    h.update(report_digest(&result.report).as_bytes());
    h.update(&(result.sample_count as u64).to_le_bytes());
    for r in &result.buggy_ranks {
        h.update(&(*r as u64).to_le_bytes());
    }
    h.update(&result.trace_digest.to_le_bytes());
    h.hex()
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sentomist-store-equiv-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Pushes `traces` through the full disk round-trip: encode into a store
/// run, then decode (digest-verified) back out.
fn round_trip(tag: &str, seed: u64, traces: &[Trace]) -> Vec<Trace> {
    let root = temp_store(tag);
    let store = TraceStore::create(&root).unwrap();
    let manifest = store.save_run(seed, tag, 0, traces).unwrap();
    let loaded = store.load_traces(&manifest).unwrap();
    let _ = std::fs::remove_dir_all(&root);
    loaded
}

#[test]
fn case1_mined_from_store_matches_live_golden() {
    let config = Case1Config::default();
    let (live, traces) = run_case1_traced(&config).unwrap();
    assert_eq!(case_digest(&live), GOLDEN_CASE1);
    let loaded = round_trip("case1", config.seed, &traces);
    let stored = mine_case1(&config, &loaded).unwrap();
    assert_eq!(
        case_digest(&stored),
        GOLDEN_CASE1,
        "case 1 rankings diverged after the store round-trip"
    );
}

#[test]
fn case2_mined_from_store_matches_live_golden() {
    let config = Case2Config::default();
    let (live, traces) = run_case2_traced(&config).unwrap();
    assert_eq!(case_digest(&live), GOLDEN_CASE2);
    let loaded = round_trip("case2", config.seed, &traces);
    let stored = mine_case2(&config, &loaded).unwrap();
    assert_eq!(
        case_digest(&stored),
        GOLDEN_CASE2,
        "case 2 rankings diverged after the store round-trip"
    );
}

#[test]
fn case3_mined_from_store_matches_live_golden() {
    let config = Case3Config::default();
    let (live, traces) = run_case3_traced(&config).unwrap();
    assert_eq!(case_digest(&live), GOLDEN_CASE3);
    let loaded = round_trip("case3", config.seed, &traces);
    let stored = mine_case3(&config, &loaded).unwrap();
    assert_eq!(
        case_digest(&stored),
        GOLDEN_CASE3,
        "case 3 rankings diverged after the store round-trip"
    );
}

#[test]
fn trigger_campaign_mined_from_store_matches_live_golden() {
    // The same 16-seed sweep `equivalence_matrix.rs` runs live, but
    // persisted seed by seed and then re-mined with `mine_store` — the
    // serialized outcome JSON must hash to the same golden digest.
    let root = temp_store("campaign");
    let store = TraceStore::create(&root).unwrap();
    let job = trigger_job_traced(20, 2, 0.05).unwrap();
    for seed in 1000u64..1016 {
        let (_, traces) = job(seed).unwrap();
        store.save_run(seed, "trigger", 0, &traces).unwrap();
    }
    let result = mine_store(
        &store,
        CampaignOptions::default(),
        |seed, traces| match traces {
            [trace] => mine_trigger_trace(seed, trace, 0.05),
            other => Err(format!("expected 1 trace, found {}", other.len())),
        },
    )
    .unwrap();
    assert!(
        result.errors.is_empty(),
        "store mining errored: {:?}",
        result.errors
    );
    let json = serde_json::to_string(&result.outcomes).unwrap();
    let mut h = Fnv::new();
    h.update(json.as_bytes());
    assert_eq!(
        h.hex(),
        GOLDEN_CAMPAIGN,
        "re-mined campaign JSON diverged from the live sweep"
    );
    let _ = std::fs::remove_dir_all(&root);
}
