//! Equivalence suite for the dense `FeatureMatrix` refactor: the matrix
//! pipeline must reproduce the ragged seed implementation's `Report`
//! rankings *byte for byte* — same sample order, same `f64` score bit
//! patterns — on all three case studies and on a 16-seed trigger
//! campaign's serialized JSON document.
//!
//! The golden digests below were captured from the pre-refactor
//! (`Vec<Vec<f64>>`-based) implementation at the seed commit; any change
//! to the numeric path that alters even one ULP of one score, or one
//! tie-break in the ranking, changes the digest. To re-capture after an
//! *intentional* numeric change, run with
//! `EQUIV_CAPTURE=1 cargo test -p sentomist-apps --test equivalence_matrix -- --nocapture`
//! and paste the printed values.

use sentomist_apps::{
    run_case1, run_case2, run_case3, trigger_job, Case1Config, Case2Config, Case3Config, CaseResult,
};
use sentomist_core::campaign::{run_campaign, CampaignOptions};
use sentomist_core::Report;

/// FNV-1a over a byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Digest of a full ranking: every entry's index label and the exact bit
/// pattern of its normalized score, in rank order.
fn report_digest(report: &Report) -> String {
    let mut h = Fnv::new();
    h.update(report.detector.as_bytes());
    for r in &report.ranking {
        h.update(r.index.to_string().as_bytes());
        h.update(&r.score.to_bits().to_le_bytes());
    }
    h.hex()
}

fn case_digest(result: &CaseResult) -> String {
    let mut h = Fnv::new();
    h.update(report_digest(&result.report).as_bytes());
    h.update(&(result.sample_count as u64).to_le_bytes());
    for r in &result.buggy_ranks {
        h.update(&(*r as u64).to_le_bytes());
    }
    h.update(&result.trace_digest.to_le_bytes());
    h.hex()
}

const GOLDEN_CASE1: &str = "b5e1c4b0205f2c4a";
const GOLDEN_CASE2: &str = "7948b906723fed9b";
const GOLDEN_CASE3: &str = "e1540603f9e1ec23";
const GOLDEN_CAMPAIGN: &str = "7b1a07b56e2d3d59";

fn check(name: &str, golden: &str, actual: &str) {
    if std::env::var("EQUIV_CAPTURE").is_ok() {
        println!("const GOLDEN_{}: &str = \"{actual}\";", name.to_uppercase());
        return;
    }
    assert_eq!(
        actual, golden,
        "{name}: ranking diverged from the ragged seed implementation"
    );
}

#[test]
fn case1_ranking_matches_seed_implementation() {
    let result = run_case1(&Case1Config::default()).unwrap();
    check("case1", GOLDEN_CASE1, &case_digest(&result));
}

#[test]
fn case2_ranking_matches_seed_implementation() {
    let result = run_case2(&Case2Config::default()).unwrap();
    check("case2", GOLDEN_CASE2, &case_digest(&result));
}

#[test]
fn case3_ranking_matches_seed_implementation() {
    let result = run_case3(&Case3Config::default()).unwrap();
    check("case3", GOLDEN_CASE3, &case_digest(&result));
}

#[test]
fn trigger_campaign_json_matches_seed_implementation() {
    // 16 seeds, 2-second runs (the CI determinism sweep's shape): the
    // serialized outcome document must be byte-identical to the seed
    // implementation's.
    let job = trigger_job(20, 2, 0.05).unwrap();
    let seeds: Vec<u64> = (0..16).map(|i| 1000 + i).collect();
    let result = run_campaign(&seeds, CampaignOptions::default(), job);
    let json = serde_json::to_string(&result.outcomes).unwrap();
    let mut h = Fnv::new();
    h.update(json.as_bytes());
    check("campaign", GOLDEN_CAMPAIGN, &h.hex());
}
