//! End-to-end checks of the three case studies: the full Sentomist
//! pipeline must rank the ground-truth bug-symptom intervals at (or very
//! near) the top, as in the paper's Figure 5 — and must stay quiet on the
//! fixed applications.

use sentomist_apps::{
    run_case1, run_case2, run_case3, Case1Config, Case2Config, Case3Config, DetectorKind,
};

#[test]
fn case1_ranks_data_pollution_on_top() {
    let result = run_case1(&Case1Config::default()).unwrap();
    // Paper scale: 1099 samples over five runs; ours lands within a few %.
    assert!(
        (1000..1300).contains(&result.sample_count),
        "sample count {}",
        result.sample_count
    );
    assert!(
        result.buggy.len() >= 3,
        "expected several polluted intervals, got {}",
        result.buggy.len()
    );
    // The paper inspected the top three instances and all confirmed the
    // bug; require the same.
    assert_eq!(
        &result.buggy_ranks[..3],
        &[1, 2, 3],
        "top-3 must all be true symptoms; ranks {:?}",
        result.buggy_ranks
    );
    // And every symptom is within the first ~2% of the ranking.
    assert!(
        result.worst_buggy_rank().unwrap() <= result.sample_count / 50 + 5,
        "worst rank {:?} of {}",
        result.worst_buggy_rank(),
        result.sample_count
    );
}

#[test]
fn case1_pollution_skews_toward_small_sampling_periods() {
    // The paper's table is dominated by run 1 (D = 20 ms): shorter
    // sampling periods make the race window easier to hit.
    let result = run_case1(&Case1Config::default()).unwrap();
    let run1 = result
        .buggy
        .iter()
        .filter(|ix| matches!(ix, sentomist_core::SampleIndex::RunSeq { run: 1, .. }))
        .count();
    assert!(
        run1 * 2 >= result.buggy.len(),
        "run 1 should contribute most symptoms: {run1}/{}",
        result.buggy.len()
    );
}

#[test]
fn case1_fixed_app_has_no_symptoms() {
    let config = Case1Config {
        use_fixed: true,
        periods_ms: vec![20, 40],
        ..Case1Config::default()
    };
    let result = run_case1(&config).unwrap();
    // The nested-interrupt pattern may still occur (interleaving is a
    // property of the workload), but no packet is ever polluted — which
    // the run_case1 oracle cross-check asserts internally. What matters
    // here: the pipeline runs clean on a healthy app.
    assert!(result.sample_count > 500);
}

#[test]
fn case2_ranks_active_drops_exactly_on_top() {
    let result = run_case2(&Case2Config::default()).unwrap();
    // Paper scale: 195 arrivals, exactly 3 buggy, ranked top-3.
    assert!(
        (180..240).contains(&result.sample_count),
        "sample count {}",
        result.sample_count
    );
    assert_eq!(result.buggy.len(), 3);
    assert_eq!(result.buggy_ranks, vec![1, 2, 3]);
}

#[test]
fn case2_fixed_relay_has_no_drop_symptoms() {
    let config = Case2Config {
        use_fixed: true,
        ..Case2Config::default()
    };
    let result = run_case2(&config).unwrap();
    assert!(result.buggy.is_empty());
    assert!(result.sample_count > 150);
}

#[test]
fn case3_ranks_the_ctp_hang_first() {
    let result = run_case3(&Case3Config::default()).unwrap();
    // Paper scale: 95 timer intervals over 4 sources; the single
    // unhandled-FAIL instance ranked 4th there, 1st here.
    assert!(
        (85..115).contains(&result.sample_count),
        "sample count {}",
        result.sample_count
    );
    assert_eq!(result.buggy.len(), 1);
    assert!(
        result.buggy_ranks[0] <= 4,
        "hang ranked {}",
        result.buggy_ranks[0]
    );
}

#[test]
fn case3_fixed_variant_keeps_collecting() {
    let config = Case3Config {
        use_fixed: true,
        ..Case3Config::default()
    };
    let result = run_case3(&config).unwrap();
    // The fixed node retries, so a FAIL is transient and its interval may
    // still be flagged — but the protocol never hangs; the dedicated app
    // tests verify liveness. Here: pipeline runs, same sample scale.
    assert!((85..115).contains(&result.sample_count));
}

#[test]
fn alternative_detectors_also_surface_case2_drops() {
    // §VI-E: the detector is a plug-in. OC-SVM, kNN and Mahalanobis all
    // put the 3 drop symptoms in their top ranks. (PCA does not: with a
    // tight normal class, the outliers themselves dominate the principal
    // components and reconstruct perfectly — the classic masking effect,
    // measured in the detector-ablation bench. The paper's default choice
    // of a one-class SVM is vindicated.)
    for kind in [
        DetectorKind::OcSvm { nu: 0.05 },
        DetectorKind::Knn,
        DetectorKind::Mahalanobis,
    ] {
        let config = Case2Config {
            detector: kind,
            ..Case2Config::default()
        };
        let result = run_case2(&config).unwrap();
        assert_eq!(result.buggy.len(), 3, "{}", kind.name());
        assert!(
            result.worst_buggy_rank().unwrap() <= 10,
            "{}: ranks {:?}",
            kind.name(),
            result.buggy_ranks
        );
    }
}

#[test]
fn pca_masks_the_case2_drops() {
    // Regression-pin the masking effect described above so the ablation
    // discussion stays truthful if detectors change.
    let config = Case2Config {
        detector: DetectorKind::Pca,
        ..Case2Config::default()
    };
    let result = run_case2(&config).unwrap();
    assert_eq!(result.buggy.len(), 3);
    assert!(
        result.buggy_ranks[0] > result.sample_count / 2,
        "PCA unexpectedly surfaced the drops: {:?}",
        result.buggy_ranks
    );
}

#[test]
fn rankings_are_reproducible() {
    let a = run_case2(&Case2Config::default()).unwrap();
    let b = run_case2(&Case2Config::default()).unwrap();
    let ia: Vec<String> = a
        .report
        .ranking
        .iter()
        .map(|r| r.index.to_string())
        .collect();
    let ib: Vec<String> = b
        .report
        .ranking
        .iter()
        .map(|r| r.index.to_string())
        .collect();
    assert_eq!(ia, ib);
}

#[test]
fn tossim_style_timing_cannot_manifest_the_race() {
    use sentomist_apps::experiments::run_fidelity;
    use tinyvm::TimingModel;
    let mut accurate_polluted = 0;
    for seed in 0..3u64 {
        let accurate = run_fidelity(TimingModel::CycleAccurate, 20, 10, seed).unwrap();
        let sequential = run_fidelity(TimingModel::ZeroCostEvents, 20, 10, seed).unwrap();
        accurate_polluted += accurate.polluted_packets;
        assert_eq!(sequential.polluted_packets, 0, "seed {seed}");
        assert_eq!(sequential.symptom_intervals, 0, "seed {seed}");
        assert!(!sequential.any_preemption, "seed {seed}");
        assert!(accurate.any_preemption, "seed {seed}");
        assert!(accurate.intervals > 400 && sequential.intervals > 400);
    }
    assert!(
        accurate_polluted > 0,
        "race never manifested even under cycle-accurate timing"
    );
}

#[test]
fn case2_drops_hide_among_genuine_wireless_losses() {
    // The default chain has 4% per-link radio loss; the mined symptoms
    // must still be exactly the *active* drops, not the channel losses.
    let result = run_case2(&Case2Config::default()).unwrap();
    assert!(result.buggy.len() >= 2);
    assert!(result.all_buggy_in_top(result.buggy.len()));
}

#[test]
fn clustered_symptoms_defeat_density_detectors_a_known_limitation() {
    // Known limitation, pinned: when the transient bug fires often enough
    // that its symptom intervals form their own dense cluster (here: 6
    // identical drop intervals under seed 5), one-class SVM, kNN and PCA
    // all absorb them as a second "normal" mode — the paper's premise
    // that transient symptoms are *rare* (Section V: "most samples are
    // normal, while just a few are abnormal") is load-bearing. The
    // global-covariance Mahalanobis detector still surfaces them.
    let base = Case2Config {
        seed: 5,
        ..Case2Config::default()
    };
    let ocsvm = run_case2(&base).unwrap();
    assert!(
        ocsvm.buggy.len() >= 5,
        "seed 5 should produce a symptom cluster, got {}",
        ocsvm.buggy.len()
    );
    assert!(
        ocsvm.buggy_ranks[0] > 10,
        "expected the OC-SVM to absorb the cluster; ranks {:?}",
        ocsvm.buggy_ranks
    );
    let maha = run_case2(&Case2Config {
        detector: DetectorKind::Mahalanobis,
        ..base
    })
    .unwrap();
    assert!(
        maha.all_buggy_in_top(maha.buggy.len() + 2),
        "Mahalanobis should still surface the cluster; ranks {:?}",
        maha.buggy_ranks
    );
}

#[test]
fn case1_multinode_pools_sensors_and_finds_the_race() {
    use sentomist_apps::experiments::{run_case1_multinode, Case1MultiConfig};
    let result = run_case1_multinode(&Case1MultiConfig::default()).unwrap();
    // 4 sensors x ~500 intervals each.
    assert!(
        (1900..2100).contains(&result.sample_count),
        "sample count {}",
        result.sample_count
    );
    assert!(
        result.buggy.len() >= 4,
        "expected several symptoms across nodes, got {}",
        result.buggy.len()
    );
    // Symptoms come from more than one sensor.
    let nodes: std::collections::BTreeSet<u16> = result
        .buggy
        .iter()
        .filter_map(|ix| match ix {
            sentomist_core::SampleIndex::NodeSeq { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    assert!(nodes.len() >= 2, "symptoms from nodes {nodes:?}");
    // Top-3 of the pooled ranking are true symptoms, and every symptom
    // sits within the top ~1.5% of 2000 pooled intervals.
    assert_eq!(&result.buggy_ranks[..3], &[1, 2, 3]);
    assert!(
        result.worst_buggy_rank().unwrap() <= 30,
        "worst rank {:?}",
        result.worst_buggy_rank()
    );
}

#[test]
fn ensemble_rescues_the_clustered_symptom_case() {
    // Extension beyond the paper: the rank-averaging committee keeps the
    // seed-5 symptom cluster (which masks the lone OC-SVM — see the
    // known-limitation test above) near the top, because its Mahalanobis
    // member still separates the cluster.
    let result = run_case2(&Case2Config {
        seed: 5,
        detector: DetectorKind::Ensemble { nu: 0.05 },
        ..Case2Config::default()
    })
    .unwrap();
    assert!(result.buggy.len() >= 5);
    assert!(
        result.worst_buggy_rank().unwrap() <= result.sample_count / 4,
        "ensemble ranks {:?} of {}",
        result.buggy_ranks,
        result.sample_count
    );
    assert!(
        result.buggy_ranks[0] <= 10,
        "best rank {:?}",
        result.buggy_ranks
    );
}

#[test]
fn case2_detection_is_robust_across_seeds() {
    // Statistical robustness, not one lucky seed: across 8 workload
    // seeds, whenever drops occur and stay rare (< 5, i.e. genuinely
    // transient), the OC-SVM ranking puts all of them within the top
    // 2*drops. The clustered-symptom regime (>= 5 identical drops) is the
    // known limitation pinned separately.
    let mut evaluated = 0;
    for seed in 0..8u64 {
        let result = run_case2(&Case2Config {
            seed,
            ..Case2Config::default()
        })
        .unwrap();
        let drops = result.buggy.len();
        if drops == 0 || drops >= 5 {
            continue;
        }
        evaluated += 1;
        assert!(
            result.all_buggy_in_top(2 * drops),
            "seed {seed}: {drops} drops ranked {:?}",
            result.buggy_ranks
        );
    }
    assert!(evaluated >= 4, "only {evaluated} seeds had rare drops");
}
