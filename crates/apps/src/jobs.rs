//! Campaign job resolution and the canonical campaign document.
//!
//! Historically this logic lived inside the `sentomist` CLI binary,
//! which made the CLI the *only* way to produce a campaign document.
//! The mining service (`sentomist-service` and its `sentomistd` daemon)
//! must answer a mine request with **exactly** the bytes `sentomist
//! trace mine --json` would print for the same corpus — byte identity is
//! the service's correctness gate — so the single source of truth moved
//! here, where both front ends link it:
//!
//! * [`Mode`] — a campaign mode with its parameters fully resolved (the
//!   trigger experiment or one of the three case studies), able to build
//!   the per-seed emulate-and-mine jobs, the store re-mining stage, the
//!   program digest and the serialized `config` block;
//! * [`Mode::from_campaign`] — resolves the identical mode back out of a
//!   stored [`CampaignManifest`], so a corpus re-mines with the
//!   parameters it was recorded under;
//! * [`campaign_document`] — the serialized campaign document, shared
//!   verbatim by `campaign --json`, `trace mine --json` and the daemon's
//!   mine responses;
//! * [`mine_corpus`] — the whole re-mine vertical (open manifest →
//!   resolve mode → sweep the store → fold stored errors → render the
//!   document), returning the exact bytes every front end must emit.

use crate::experiments::{
    case1_job_traced, case2_job_traced, case3_job_traced, mine_case1, mine_case2, mine_case3,
    mine_trigger_trace, trigger_job_traced, trigger_job_traced_ctx,
};
use crate::{ctp, forwarder, oscilloscope, Case1Config, Case2Config, Case3Config};
use sentomist_core::campaign::{CampaignResult, FailureKind, RunError, RunOutcome};
use sentomist_core::supervise::{RunContext, RunFailure};
use sentomist_core::{mine_store_with, MineOptions, QuarantinedRun};
use sentomist_trace::Trace;
use sentomist_tracestore::{CampaignManifest, TraceStore};
use serde::{Serialize, Value};
use std::error::Error;
use tinyvm::Program;

/// A typed, `Send + Sync` job-layer error: what went wrong resolving or
/// executing a campaign-shaped job. String-bodied so it crosses the
/// supervised worker pool (and the service's response path) untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError(pub String);

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for JobError {}

impl From<String> for JobError {
    fn from(message: String) -> JobError {
        JobError(message)
    }
}

impl From<&str> for JobError {
    fn from(message: &str) -> JobError {
        JobError(message.to_string())
    }
}

impl From<Box<dyn Error>> for JobError {
    fn from(e: Box<dyn Error>) -> JobError {
        JobError(e.to_string())
    }
}

impl From<sentomist_tracestore::StoreError> for JobError {
    fn from(e: sentomist_tracestore::StoreError) -> JobError {
        JobError(e.to_string())
    }
}

/// A plain per-seed campaign job: seed in, outcome out.
pub type CampaignJob = Box<dyn Fn(u64) -> Result<RunOutcome, String> + Send + Sync>;
/// A per-seed job that also hands back the run's recorded traces.
pub type TracedJob = Box<dyn Fn(u64) -> Result<(RunOutcome, Vec<Trace>), String> + Send + Sync>;
/// A supervised traced job: takes a [`RunContext`] so the watchdog can
/// cancel it cooperatively.
pub type SupervisedTracedJob =
    Box<dyn Fn(&RunContext) -> Result<(RunOutcome, Vec<Trace>), RunFailure> + Send + Sync>;
/// The mining stage alone, applied to a stored run's decoded traces.
pub type StoreMiner = Box<dyn Fn(u64, &[Trace]) -> Result<RunOutcome, String> + Send + Sync>;
/// The ordered key/value entries of a campaign document's `config` block.
pub type CampaignConfig = Vec<(String, Value)>;

/// FNV-1a over a byte string — the digest primitive run manifests and
/// program identities are keyed with.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A campaign mode with its flags fully resolved — the single source of
/// truth shared by the live `campaign` command, `trace mine` and the
/// mining daemon, so a stored corpus re-mines into the exact document
/// the live run printed.
#[derive(Debug, Clone, Copy)]
pub enum Mode {
    /// The case-I trigger experiment: one oscilloscope node per seed.
    Trigger {
        /// ADC sampling period in milliseconds.
        period: u32,
        /// Emulated seconds per run.
        seconds: u64,
        /// One-class SVM ν.
        nu: f64,
    },
    /// Case study I (data-pollution race across sampling periods).
    Case1,
    /// Case study II (busy-flag active packet drop).
    Case2,
    /// Case study III (unhandled send failure under protocol contention).
    Case3,
}

impl Mode {
    /// Resolves a mode from an optional case selector plus the trigger
    /// parameters (used when no case is selected).
    ///
    /// # Errors
    ///
    /// Unknown case selector.
    pub fn resolve(
        case: Option<&str>,
        period: u32,
        seconds: u64,
        nu: f64,
    ) -> Result<Mode, JobError> {
        match case {
            None => Ok(Mode::Trigger {
                period,
                seconds,
                nu,
            }),
            Some("1") => Ok(Mode::Case1),
            Some("2") => Ok(Mode::Case2),
            Some("3") => Ok(Mode::Case3),
            Some(other) => Err(JobError(format!("unknown case `{other}`"))),
        }
    }

    /// Resolves the identical mode back out of a stored campaign
    /// manifest, so re-mining uses the parameters the corpus was
    /// recorded under.
    ///
    /// # Errors
    ///
    /// Unknown stored mode, malformed or non-numeric parameter entries.
    pub fn from_campaign(manifest: &CampaignManifest) -> Result<Mode, JobError> {
        let mut period: u32 = 20;
        let mut seconds: u64 = 10;
        let mut nu: f64 = 0.05;
        for p in &manifest.params {
            let (k, v) = p
                .split_once('=')
                .ok_or_else(|| JobError(format!("malformed campaign param `{p}`")))?;
            let bad = |name: &str| JobError(format!("campaign param {name} wants a number: `{v}`"));
            match k {
                "period" => period = v.parse().map_err(|_| bad("period"))?,
                "seconds" => seconds = v.parse().map_err(|_| bad("seconds"))?,
                "nu" => nu = v.parse().map_err(|_| bad("nu"))?,
                // Unknown params are ignored for forward compatibility.
                _ => {}
            }
        }
        match manifest.mode.as_str() {
            "trigger" => Ok(Mode::Trigger {
                period,
                seconds,
                nu,
            }),
            "case1" => Ok(Mode::Case1),
            "case2" => Ok(Mode::Case2),
            "case3" => Ok(Mode::Case3),
            other => Err(JobError(format!("unknown stored campaign mode `{other}`"))),
        }
    }

    /// The mode's manifest name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Trigger { .. } => "trigger",
            Mode::Case1 => "case1",
            Mode::Case2 => "case2",
            Mode::Case3 => "case3",
        }
    }

    /// The mode's resolved parameters as `flag=value` strings, written
    /// to the campaign manifest. [`Mode::from_campaign`] feeds them back,
    /// so the values use the flags' own names and Rust's round-trip
    /// float formatting.
    pub fn params(self) -> Vec<String> {
        match self {
            Mode::Trigger {
                period,
                seconds,
                nu,
            } => vec![
                format!("period={period}"),
                format!("seconds={seconds}"),
                format!("nu={nu}"),
            ],
            _ => Vec::new(),
        }
    }

    /// The JSON `config` block entries for this mode. Deliberately
    /// excludes `--threads` and `--store`: neither may influence the
    /// serialized campaign document.
    pub fn config_entries(self) -> CampaignConfig {
        let entry = |k: &str, v: Value| (k.to_string(), v);
        match self {
            Mode::Trigger {
                period,
                seconds,
                nu,
            } => vec![
                entry("mode", Value::Str("trigger".into())),
                entry("period_ms", Serialize::to_value(&period)),
                entry("run_seconds", Serialize::to_value(&seconds)),
                entry("nu", Serialize::to_value(&nu)),
            ],
            _ => vec![entry("mode", Value::Str(self.name().into()))],
        }
    }

    /// The per-seed emulate-and-mine job that also hands back the run's
    /// recorded traces.
    ///
    /// # Errors
    ///
    /// Program assembly failures while building the job.
    pub fn traced_job(self) -> Result<TracedJob, JobError> {
        Ok(match self {
            Mode::Trigger {
                period,
                seconds,
                nu,
            } => Box::new(trigger_job_traced(period, seconds, nu)?),
            Mode::Case1 => Box::new(case1_job_traced(Case1Config::default())),
            Mode::Case2 => Box::new(case2_job_traced(Case2Config::default())),
            Mode::Case3 => Box::new(case3_job_traced(Case3Config::default())),
        })
    }

    /// The supervised per-seed job: takes a [`RunContext`] so the
    /// watchdog can cancel it and (trigger mode) a cycle budget can cap
    /// emulation. Trigger mode is fully cooperative; the case studies
    /// run to completion and report their errors as retryable.
    ///
    /// # Errors
    ///
    /// Program assembly failures while building the job.
    pub fn supervised_traced_job(self) -> Result<SupervisedTracedJob, JobError> {
        Ok(match self {
            Mode::Trigger {
                period,
                seconds,
                nu,
            } => Box::new(trigger_job_traced_ctx(period, seconds, nu)?),
            _ => {
                let traced = self.traced_job()?;
                Box::new(move |ctx: &RunContext| traced(ctx.seed()).map_err(RunFailure::Transient))
            }
        })
    }

    /// The per-seed plain job (traces dropped after mining).
    ///
    /// # Errors
    ///
    /// Program assembly failures while building the job.
    pub fn job(self) -> Result<CampaignJob, JobError> {
        let traced = self.traced_job()?;
        Ok(Box::new(move |seed| {
            traced(seed).map(|(outcome, _)| outcome)
        }))
    }

    /// The mining stage alone, applied to a stored run's decoded traces —
    /// the same code path [`Mode::traced_job`] runs after emulating.
    pub fn miner(self) -> StoreMiner {
        match self {
            Mode::Trigger { nu, .. } => Box::new(move |seed, traces: &[Trace]| {
                let trace = match traces {
                    [t] => t,
                    _ => {
                        return Err(format!(
                            "trigger run stores one trace, found {}",
                            traces.len()
                        ))
                    }
                };
                mine_trigger_trace(seed, trace, nu)
            }),
            Mode::Case1 => Box::new(|seed, traces| {
                mine_case1(&Case1Config::default(), traces)
                    .map(|r| r.to_outcome(seed))
                    .map_err(|e| e.to_string())
            }),
            Mode::Case2 => Box::new(|seed, traces| {
                mine_case2(&Case2Config::default(), traces)
                    .map(|r| r.to_outcome(seed))
                    .map_err(|e| e.to_string())
            }),
            Mode::Case3 => Box::new(|seed, traces| {
                mine_case3(&Case3Config::default(), traces)
                    .map(|r| r.to_outcome(seed))
                    .map_err(|e| e.to_string())
            }),
        }
    }

    /// FNV-1a digest over the disassembly of the program(s) this mode
    /// executes, recorded in every run manifest as the program identity.
    ///
    /// # Errors
    ///
    /// Program assembly failures.
    pub fn program_digest(self) -> Result<u64, JobError> {
        fn one(p: &Program) -> u64 {
            fnv64(tinyvm::disassemble(p).as_bytes())
        }
        fn chain(digests: impl IntoIterator<Item = u64>) -> u64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for d in digests {
                h = (h ^ d).wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }
        let asm = |e: tinyvm::asm::AsmError| JobError(e.to_string());
        Ok(match self {
            Mode::Trigger { period, .. } => one(&*oscilloscope::buggy(
                &oscilloscope::OscilloscopeParams::with_period_ms(period),
            )
            .map_err(asm)?),
            Mode::Case1 => {
                let config = Case1Config::default();
                let mut digests = Vec::new();
                for &ms in &config.periods_ms {
                    digests.push(one(&*oscilloscope::buggy(
                        &oscilloscope::OscilloscopeParams::with_period_ms(ms),
                    )
                    .map_err(asm)?));
                }
                chain(digests)
            }
            Mode::Case2 => {
                let config = Case2Config::default();
                chain([
                    one(&*forwarder::sink_program().map_err(asm)?),
                    one(&*forwarder::relay_program_buggy().map_err(asm)?),
                    one(&*forwarder::source_program(&config.params).map_err(asm)?),
                ])
            }
            Mode::Case3 => one(&*ctp::buggy(&Case3Config::default().params).map_err(asm)?),
        })
    }
}

/// Resolves a bundled case-study program by name — the shared resolver
/// behind `sentomist lint --app NAME` and the daemon's lint jobs.
///
/// # Errors
///
/// Unknown app name; assembly failure.
pub fn bundled_program(name: &str, fixed: bool) -> Result<std::sync::Arc<Program>, JobError> {
    let asm = |e: tinyvm::asm::AsmError| JobError(e.to_string());
    Ok(match name {
        "oscilloscope" => {
            if fixed {
                oscilloscope::fixed(&Default::default()).map_err(asm)?
            } else {
                oscilloscope::buggy(&Default::default()).map_err(asm)?
            }
        }
        "forwarder" => {
            if fixed {
                forwarder::relay_program_fixed().map_err(asm)?
            } else {
                forwarder::relay_program_buggy().map_err(asm)?
            }
        }
        "ctp" => {
            if fixed {
                ctp::fixed(&Default::default()).map_err(asm)?
            } else {
                ctp::buggy(&Default::default()).map_err(asm)?
            }
        }
        other => {
            return Err(JobError(format!(
                "unknown bundled app `{other}` (oscilloscope|forwarder|ctp)"
            )))
        }
    })
}

/// The default slice seeds of a program: every statically flagged pc
/// plus its related pcs, sorted and deduplicated — "slice backward from
/// whatever the linter flagged". Empty for a program that lints clean
/// (every fixed case-study variant).
pub fn default_slice_seeds(program: &Program) -> Vec<u16> {
    let report = staticlint::lint(program);
    let mut seeds: Vec<u16> = report
        .warnings
        .iter()
        .flat_map(|w| std::iter::once(w.pc).chain(w.related_pcs.iter().copied()))
        .collect();
    seeds.sort_unstable();
    seeds.dedup();
    seeds
}

/// Builds the slice report for a bundled case-study app: seeds from
/// `pcs`, or — when empty — the program's [`default_slice_seeds`]. A
/// program that lints clean and gets no explicit seeds yields the empty
/// report rather than an error: "nothing flagged, nothing sliced" is the
/// fixed variants' expected answer, not a failure.
///
/// # Errors
///
/// Unknown app, assembly failure, or a slice error for explicit seeds.
pub fn bundled_slice_report(
    app: &str,
    fixed: bool,
    pcs: &[u16],
) -> Result<staticlint::SliceReport, JobError> {
    let program = bundled_program(app, fixed)?;
    let seeds = if pcs.is_empty() {
        default_slice_seeds(&program)
    } else {
        pcs.to_vec()
    };
    if seeds.is_empty() {
        return Ok(staticlint::SliceReport {
            seeds,
            instructions: Vec::new(),
            cross_edges: Vec::new(),
            stats: staticlint::SliceStats {
                instructions: program.len(),
                sliced: 0,
                cross_edges: 0,
            },
        });
    }
    staticlint::slice_report(&program, &seeds).map_err(|e| JobError(e.to_string()))
}

/// The serialized slice document: pretty-printed JSON plus a trailing
/// newline — **exactly** the bytes `sentomist slice --app NAME --json`
/// prints and the daemon answers Slice requests with.
///
/// # Errors
///
/// As [`bundled_slice_report`], plus serialization failures.
pub fn slice_document(app: &str, fixed: bool, pcs: &[u16]) -> Result<String, JobError> {
    let report = bundled_slice_report(app, fixed, pcs)?;
    let mut doc = serde_json::to_string_pretty(&report).map_err(|e| JobError(e.to_string()))?;
    doc.push('\n');
    Ok(doc)
}

/// Assembles the serialized campaign document; shared verbatim by the
/// live `campaign --json`, `trace mine --json` and the mining daemon's
/// responses, which must produce byte-identical output for the same runs.
pub fn campaign_document(config: CampaignConfig, result: &CampaignResult) -> Value {
    let s = result.summary();
    Value::Map(vec![
        ("config".to_string(), Value::Map(config)),
        (
            "outcomes".to_string(),
            Serialize::to_value(&result.outcomes),
        ),
        ("summary".to_string(), Serialize::to_value(&s)),
        ("errors".to_string(), Serialize::to_value(&result.errors)),
        (
            "failures".to_string(),
            Value::Map(vec![
                ("failed".to_string(), Serialize::to_value(&s.failed)),
                ("panicked".to_string(), Serialize::to_value(&s.panicked)),
                ("timed_out".to_string(), Serialize::to_value(&s.timed_out)),
                (
                    "failed_attempts".to_string(),
                    Serialize::to_value(&s.failed_attempts),
                ),
                (
                    "failure_rate".to_string(),
                    Serialize::to_value(&s.failure_rate),
                ),
            ]),
        ),
    ])
}

/// How a corpus should be re-mined into its campaign document.
#[derive(Debug, Clone, Copy)]
pub struct CorpusMineOptions {
    /// Worker threads for the mining sweep. Never influences the
    /// document bytes.
    pub threads: usize,
    /// Emit per-run progress lines on stderr.
    pub progress: bool,
    /// Quarantine-and-continue: set corrupt runs aside instead of
    /// failing them; adds the opt-in `quarantined` document section.
    pub quarantine: bool,
}

impl Default for CorpusMineOptions {
    fn default() -> Self {
        CorpusMineOptions {
            threads: 1,
            progress: false,
            quarantine: false,
        }
    }
}

/// What [`mine_corpus`] produced: the canonical document bytes plus the
/// structured result for front ends that render their own views.
#[derive(Debug, Clone)]
pub struct MinedCorpus {
    /// The serialized campaign document: pretty-printed JSON plus a
    /// trailing newline — **exactly** the bytes `sentomist trace mine
    /// --json` prints, the service byte-identity contract.
    pub document: String,
    /// The mining result over the healthy runs (stored live failures
    /// folded back in, sorted by seed).
    pub result: CampaignResult,
    /// Runs set aside by quarantine-and-continue mining.
    pub quarantined: Vec<QuarantinedRun>,
}

/// Re-mines a stored campaign corpus into its canonical document:
/// resolve the recorded mode, sweep every stored run through the same
/// mining stage the live campaign used, fold the live campaign's
/// recorded failures back in, and render the document.
///
/// The document bytes are a pure function of the corpus content — never
/// of `threads`, the shard topology, or which front end asked.
///
/// # Errors
///
/// A store without a campaign manifest, an unresolvable stored mode, or
/// store-level listing/move failures. Per-run problems are reported
/// inside the document, never thrown.
pub fn mine_corpus(
    store: &TraceStore,
    options: &CorpusMineOptions,
) -> Result<MinedCorpus, JobError> {
    let campaign = store.campaign()?.ok_or(
        "store has no campaign.json — only corpora produced by \
         `sentomist campaign --store` can be re-mined",
    )?;
    let mode = Mode::from_campaign(&campaign)?;
    let mut config = mode.config_entries();
    config.push(("seeds".to_string(), Serialize::to_value(&campaign.seeds)));
    config.push((
        "base_seed".to_string(),
        Serialize::to_value(&campaign.base_seed),
    ));
    let report = mine_store_with(
        store,
        MineOptions {
            campaign: sentomist_core::campaign::CampaignOptions {
                threads: options.threads,
                progress: options.progress,
            },
            quarantine: options.quarantine,
        },
        mode.miner(),
    )?;
    let mut result = report.result;
    // Runs that failed during the live campaign have no run directory;
    // fold their recorded errors back in (failure typing included) so
    // the document matches the live one byte for byte.
    result
        .errors
        .extend(campaign.errors.iter().map(|e| RunError {
            seed: e.seed,
            message: e.message.clone(),
            kind: FailureKind::parse(&e.kind),
            attempts: e.attempts.max(1),
        }));
    result.errors.sort_by_key(|e| e.seed);

    let mut doc = campaign_document(config, &result);
    if options.quarantine {
        // Opt-in section: only a damaged corpus mined with --quarantine
        // diverges from the live document.
        if let Value::Map(entries) = &mut doc {
            entries.push((
                "quarantined".to_string(),
                Value::Seq(
                    report
                        .quarantined
                        .iter()
                        .map(|q| {
                            Value::Map(vec![
                                ("run_id".to_string(), Value::Str(q.run_id.clone())),
                                ("seed".to_string(), Serialize::to_value(&q.seed)),
                                ("reason".to_string(), Value::Str(q.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
    }
    let mut document = serde_json::to_string_pretty(&doc).map_err(|e| JobError(e.to_string()))?;
    document.push('\n');
    Ok(MinedCorpus {
        document,
        result,
        quarantined: report.quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_document_defaults_to_lint_flagged_seeds() {
        let doc = slice_document("forwarder", false, &[]).unwrap();
        let report: staticlint::SliceReport = serde_json::from_str(doc.trim()).unwrap();
        assert!(!report.seeds.is_empty(), "buggy relay lints dirty");
        assert!(report.stats.sliced >= report.seeds.len());
        assert!(
            report.stats.cross_edges > 0,
            "the busy-flag interleaving edge must be sliced"
        );
        // The fixed relay lints clean: empty report, not an error.
        let doc = slice_document("forwarder", true, &[]).unwrap();
        let report: staticlint::SliceReport = serde_json::from_str(doc.trim()).unwrap();
        assert!(report.seeds.is_empty());
        assert_eq!(report.stats.sliced, 0);
    }

    #[test]
    fn slice_document_propagates_bad_inputs_as_typed_errors() {
        assert!(slice_document("toaster", false, &[])
            .unwrap_err()
            .0
            .contains("unknown bundled app"));
        assert!(slice_document("ctp", false, &[u16::MAX])
            .unwrap_err()
            .0
            .contains("outside the program"));
    }

    #[test]
    fn mode_round_trips_through_a_campaign_manifest() {
        for mode in [
            Mode::Trigger {
                period: 35,
                seconds: 7,
                nu: 0.125,
            },
            Mode::Case1,
            Mode::Case2,
            Mode::Case3,
        ] {
            let manifest = CampaignManifest {
                format_version: sentomist_tracestore::MANIFEST_VERSION,
                mode: mode.name().to_string(),
                params: mode.params(),
                seeds: 4,
                base_seed: 100,
                errors: vec![],
            };
            let back = Mode::from_campaign(&manifest).unwrap();
            assert_eq!(back.name(), mode.name());
            assert_eq!(back.params(), mode.params());
        }
    }

    #[test]
    fn unknown_mode_and_malformed_params_are_typed_errors() {
        let mut manifest = CampaignManifest {
            format_version: sentomist_tracestore::MANIFEST_VERSION,
            mode: "warp".to_string(),
            params: vec![],
            seeds: 1,
            base_seed: 0,
            errors: vec![],
        };
        assert!(Mode::from_campaign(&manifest)
            .unwrap_err()
            .0
            .contains("unknown stored campaign mode"));
        manifest.mode = "trigger".to_string();
        manifest.params = vec!["no-equals-sign".to_string()];
        assert!(Mode::from_campaign(&manifest)
            .unwrap_err()
            .0
            .contains("malformed"));
        manifest.params = vec!["period=fast".to_string()];
        assert!(Mode::from_campaign(&manifest)
            .unwrap_err()
            .0
            .contains("wants a number"));
    }

    #[test]
    fn program_digest_is_stable_per_mode() {
        let a = Mode::Case2.program_digest().unwrap();
        let b = Mode::Case2.program_digest().unwrap();
        assert_eq!(a, b);
        assert_ne!(
            Mode::Case2.program_digest().unwrap(),
            Mode::Case3.program_digest().unwrap()
        );
    }
}
