//! Case study I substrate: the `Oscilloscope`-style single-hop data
//! collection application with the paper's Figure-2 data-pollution race.
//!
//! A hardware timer requests a sensor reading every `D` ms; the ADC
//! data-ready handler stores it into `packet->data[dataItem++]` and, after
//! every third reading, posts a task that transmits the three readings.
//! The race: if the send task is delayed past the next ADC interrupt (here
//! by a housekeeping task of data-dependent length clogging the FIFO
//! queue), the fourth reading overwrites `packet->data[0]` before the
//! packet leaves — silent data pollution, no crash, values still sane.
//!
//! The *fixed* variant snapshots the three readings into a separate send
//! buffer at posting time, which closes the race.

use std::sync::Arc;
use tinyvm::asm::AsmError;
use tinyvm::Program;

/// Marker word the application writes to the UART before logging the three
/// words of each transmitted packet (chosen to be outside the sensor
/// range, so readings can never alias it).
pub const PACKET_MARKER: u16 = 0xBEEF;

/// Workload parameters for one Oscilloscope run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OscilloscopeParams {
    /// Sampling period `D` in milliseconds (the paper sweeps 20..100).
    pub sample_period_ms: u32,
    /// Housekeeping timer period in milliseconds.
    pub hk_period_ms: u32,
    /// Busy-loop iterations of a common (short) housekeeping run.
    pub hk_short_iters: u16,
    /// Iterations of an occasional long run (~25 ms at 1 MHz).
    pub hk_long_iters: u16,
    /// Iterations of a rare very long run (~65 ms at 1 MHz).
    pub hk_very_long_iters: u16,
}

impl Default for OscilloscopeParams {
    fn default() -> Self {
        OscilloscopeParams {
            sample_period_ms: 20,
            hk_period_ms: 33,
            hk_short_iters: 700,
            hk_long_iters: 8_400,
            hk_very_long_iters: 21_700,
        }
    }
}

impl OscilloscopeParams {
    /// Parameters for a given sampling period, other knobs default.
    pub fn with_period_ms(sample_period_ms: u32) -> OscilloscopeParams {
        OscilloscopeParams {
            sample_period_ms,
            ..OscilloscopeParams::default()
        }
    }

    fn period_ticks(ms: u32) -> u32 {
        // 1 tick = 256 cycles = 0.256 ms at the 1 MHz default clock.
        ms * 1_000 / tinyvm::isa::port::TIMER_TICK_CYCLES as u32
    }
}

fn source(params: &OscilloscopeParams, buggy: bool) -> String {
    let period = OscilloscopeParams::period_ticks(params.sample_period_ms);
    let hk_period = OscilloscopeParams::period_ticks(params.hk_period_ms);
    let OscilloscopeParams {
        hk_short_iters,
        hk_long_iters,
        hk_very_long_iters,
        ..
    } = *params;
    // The buggy readDone stores into the live packet buffer; the fixed one
    // additionally snapshots the triple into sendbuf when posting, and the
    // send task reads the snapshot.
    let (store_target, send_source, send_epilogue) = if buggy {
        ("", "packet", "")
    } else {
        (
            "\
 lda r4, send_pending
 cmpi r4, 0
 brne rd_done          ; previous packet still queued: apply backpressure
 lda r4, packet
 sta sendbuf, r4
 lda r4, packet+1
 sta sendbuf+1, r4
 lda r4, packet+2
 sta sendbuf+2, r4
 ldi r4, 1
 sta send_pending, r4
",
            "sendbuf",
            "\
 ldi r4, 0
 sta send_pending, r4
",
        )
    };
    format!(
        "\
; Oscilloscope: single-hop data collection (paper Figure 2{variant})
.const PERIOD {period}
.const HK_PERIOD {hk_period}
.data packet 3
.data sendbuf 3
.data send_pending 1
.data dataItem 1
.data seq 1
.task send_task
.task hk_task
.handler TIMER0 on_sample_timer
.handler TIMER1 on_hk_timer
.handler ADC on_read_done

main:
 ldi r1, PERIOD
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ldi r1, HK_PERIOD
 out TIMER1_PERIOD, r1
 ldi r1, 1
 out TIMER1_CTRL, r1
 ret

on_sample_timer:
 ldi r1, 1
 out ADC_CTRL, r1
 reti

; ADC data-ready event: Read.readDone of the paper's Figure 2.
on_read_done:
 in r1, ADC_DATA
 out UART_OUT, r1
 lda r2, dataItem
 ldi r3, packet
 add r3, r2
 st [r3], r1
 addi r2, 1
 sta dataItem, r2
 cmpi r2, 3
 brne rd_done
 ldi r2, 0
 sta dataItem, r2
{store_target} post send_task
rd_done:
 reti

; Deferred packet transmission (prepareAndSendPacket).
send_task:
 ldi r9, {marker}
 out UART_OUT, r9
 lda r1, {send_source}
 out RADIO_TX_PUSH, r1
 out UART_OUT, r1
 lda r1, {send_source}+1
 out RADIO_TX_PUSH, r1
 out UART_OUT, r1
 lda r1, {send_source}+2
 out RADIO_TX_PUSH, r1
 out UART_OUT, r1
 lda r1, seq
 out RADIO_TX_PUSH, r1
 addi r1, 1
 sta seq, r1
 ldi r2, 0xFFFF
 out RADIO_SEND, r2
{send_epilogue} ret

on_hk_timer:
 post hk_task
 reti

; Housekeeping of data-dependent length: usually short, occasionally long
; enough to delay the queued send task past the next ADC interrupt.
hk_task:
 in r1, RAND
 ldi r2, 15
 and r1, r2
 cmpi r1, 0
 breq hk_maybe_long
 ldi r3, {hk_short_iters}
 jmp hk_loop
hk_maybe_long:
 in r1, RAND
 ldi r2, 3
 and r1, r2
 cmpi r1, 0
 breq hk_very_long
 ldi r3, {hk_long_iters}
 jmp hk_loop
hk_very_long:
 ldi r3, {hk_very_long_iters}
hk_loop:
 subi r3, 1
 brne hk_loop
 ret
",
        variant = if buggy { "" } else { ", fixed" },
        marker = PACKET_MARKER,
    )
}

/// Assembles the buggy Oscilloscope application.
///
/// # Errors
///
/// Returns [`AsmError`] only if the template is corrupted (covered by
/// tests; practically infallible).
pub fn buggy(params: &OscilloscopeParams) -> Result<Arc<Program>, AsmError> {
    tinyvm::assemble(&source(params, true)).map(Arc::new)
}

/// Assembles the race-free variant (send buffer snapshotted at post time).
///
/// # Errors
///
/// See [`buggy`].
pub fn fixed(params: &OscilloscopeParams) -> Result<Arc<Program>, AsmError> {
    tinyvm::assemble(&source(params, false)).map(Arc::new)
}

/// A packet reconstructed from the node's UART log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedPacket {
    /// The three data words actually transmitted.
    pub sent: [u16; 3],
    /// The three readings that *should* have been transmitted (the k-th
    /// consecutive triple of the reading stream).
    pub expected: [u16; 3],
}

impl LoggedPacket {
    /// Whether the transmitted packet differs from the sensed triple.
    pub fn polluted(&self) -> bool {
        self.sent != self.expected
    }
}

/// Parses the UART stream into readings and packets and pairs each packet
/// with its expected triple — the external, data-level pollution oracle.
pub fn parse_uart(uart: &[u16]) -> Vec<LoggedPacket> {
    let mut readings: Vec<u16> = Vec::new();
    let mut packets = Vec::new();
    let mut i = 0;
    while i < uart.len() {
        if uart[i] == PACKET_MARKER && i + 3 < uart.len() {
            let sent = [uart[i + 1], uart[i + 2], uart[i + 3]];
            let k = packets.len();
            if readings.len() >= 3 * (k + 1) {
                let expected = [readings[3 * k], readings[3 * k + 1], readings[3 * k + 2]];
                packets.push(LoggedPacket { sent, expected });
            }
            i += 4;
        } else {
            readings.push(uart[i]);
            i += 1;
        }
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyvm::devices::NodeConfig;
    use tinyvm::node::Node;
    use tinyvm::NullSink;

    #[test]
    fn both_variants_assemble() {
        for p in [20, 40, 60, 80, 100] {
            let params = OscilloscopeParams::with_period_ms(p);
            buggy(&params).unwrap();
            fixed(&params).unwrap();
        }
    }

    #[test]
    fn fixed_variant_never_sends_torn_packets() {
        // Under heavy delay the fixed app may *skip* a triple
        // (backpressure), so positional pairing is not meaningful; the
        // correctness property is that every transmitted triple is a
        // consecutive window of the reading stream — never a mix of old
        // and new readings.
        let params = OscilloscopeParams::with_period_ms(20);
        let program = fixed(&params).unwrap();
        for seed in [11u64, 12, 13] {
            let mut node = Node::new(
                program.clone(),
                NodeConfig {
                    seed,
                    ..NodeConfig::default()
                },
            );
            node.run(10_000_000, &mut NullSink).unwrap();
            let (readings, sent) = split_uart(node.uart());
            assert!(sent.len() > 100, "got {} packets", sent.len());
            for triple in &sent {
                assert!(
                    readings.windows(3).any(|w| w == triple),
                    "torn packet {triple:?} (seed {seed})"
                );
            }
        }
    }

    /// Splits a UART stream into the reading log and the sent triples.
    fn split_uart(uart: &[u16]) -> (Vec<u16>, Vec<[u16; 3]>) {
        let mut readings = Vec::new();
        let mut sent = Vec::new();
        let mut i = 0;
        while i < uart.len() {
            if uart[i] == PACKET_MARKER && i + 3 < uart.len() {
                sent.push([uart[i + 1], uart[i + 2], uart[i + 3]]);
                i += 4;
            } else {
                readings.push(uart[i]);
                i += 1;
            }
        }
        (readings, sent)
    }

    #[test]
    fn buggy_variant_pollutes_occasionally() {
        let params = OscilloscopeParams::with_period_ms(20);
        let program = buggy(&params).unwrap();
        let mut total = 0usize;
        let mut polluted = 0usize;
        for seed in 0..4u64 {
            let mut node = Node::new(
                program.clone(),
                NodeConfig {
                    seed,
                    ..NodeConfig::default()
                },
            );
            node.run(10_000_000, &mut NullSink).unwrap();
            let packets = parse_uart(node.uart());
            total += packets.len();
            polluted += packets.iter().filter(|p| p.polluted()).count();
        }
        assert!(total > 500);
        assert!(polluted > 0, "the race never triggered in 4 runs");
        assert!(
            polluted * 20 < total,
            "pollution should be transient, got {polluted}/{total}"
        );
    }

    #[test]
    fn pollution_keeps_values_in_sensor_range() {
        // The paper stresses that polluted data are "not senseless": a
        // sanity check cannot catch them.
        let params = OscilloscopeParams::with_period_ms(20);
        let program = buggy(&params).unwrap();
        let mut node = Node::new(
            program,
            NodeConfig {
                seed: 2,
                ..NodeConfig::default()
            },
        );
        node.run(10_000_000, &mut NullSink).unwrap();
        for p in parse_uart(node.uart()) {
            for w in p.sent {
                assert!((100..200).contains(&w), "sent word {w} out of range");
            }
        }
    }

    #[test]
    fn parse_uart_reconstructs_triples() {
        let uart = [
            101,
            102,
            103,
            PACKET_MARKER,
            101,
            102,
            103, // clean packet
            104,
            105,
            106,
            107,
            PACKET_MARKER,
            107,
            105,
            106, // polluted
        ];
        let packets = parse_uart(&uart);
        assert_eq!(packets.len(), 2);
        assert!(!packets[0].polluted());
        assert!(packets[1].polluted());
        assert_eq!(packets[1].expected, [104, 105, 106]);
        assert_eq!(packets[1].sent, [107, 105, 106]);
    }
}
