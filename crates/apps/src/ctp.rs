//! Case study III substrate: tree data collection (CTP-style) co-existing
//! with a heartbeat protocol, with the unhandled-send-failure hang.
//!
//! Nine nodes form a binary tree rooted at node 0. Source nodes report a
//! sensor reading toward the root during a random "event of interest"
//! window, driven by a report timer; every node also broadcasts a
//! heartbeat beacon each 500 ms, driven by a second timer. Both protocols
//! share the single radio chip.
//!
//! The bug, as in the paper (and the real `tinyos-devel` thread it cites):
//! the collection protocol assumes it is the only radio client, marks its
//! link busy *before* asking the chip to transmit, and does not handle the
//! `FAIL` status returned when the chip is already occupied by a heartbeat
//! transmission — the busy mark is never cleared, no retry is scheduled,
//! and the node's collection path silently hangs for the rest of the run.
//!
//! The *fixed* variant clears the busy mark on failure so the next timer
//! tick retries.

use std::sync::Arc;
use tinyvm::asm::AsmError;
use tinyvm::devices::NodeConfig;
use tinyvm::Program;

/// Number of nodes in the experiment.
pub const NODE_COUNT: u16 = 9;

/// The collection root.
pub const ROOT: u16 = 0;

/// The four reporting (source) nodes — leaves of the tree, so their data
/// travels multiple hops.
pub const SOURCES: [u16; 4] = [4, 5, 7, 8];

/// Parent of a node in the binary collection tree.
pub fn parent_of(node: u16) -> u16 {
    if node == 0 {
        0
    } else {
        (node - 1) / 2
    }
}

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtpParams {
    /// Heartbeat period in timer ticks (1953 ≈ 500 ms).
    pub hb_period_ticks: u16,
    /// Base report period in ticks; each node adds `rand & 127`.
    pub report_base_ticks: u16,
    /// Heartbeat padding words (beacon airtime ≈ `2 + pad` words).
    pub hb_pad_words: u16,
}

impl Default for CtpParams {
    fn default() -> Self {
        CtpParams {
            hb_period_ticks: 1953,   // 500 ms
            report_base_ticks: 2300, // ~589 ms + per-node jitter
            hb_pad_words: 22,
        }
    }
}

fn source(params: &CtpParams, buggy: bool) -> String {
    let CtpParams {
        hb_period_ticks,
        report_base_ticks,
        hb_pad_words,
    } = *params;
    let fail_handling = if buggy {
        "\
ctp_fail:
; BUG (unhandled failure): the chip was busy — here transmitting a
; heartbeat — and rejected the send. CTP assumes it is the sole radio
; client and never checks for this: ctp_busy stays set forever, no retry
; is scheduled, and this node's collection protocol hangs.
 lda r12, fails
 addi r12, 1
 sta fails, r12
 ret"
    } else {
        "\
ctp_fail:
; FIXED: clear the busy mark so the next report-timer tick retries.
 lda r12, fails
 addi r12, 1
 sta fails, r12
 ldi r12, 0
 sta ctp_busy, r12
 ret"
    };
    format!(
        "\
; CTP-style collection + heartbeat protocol sharing one radio chip.
.const HB_PERIOD {hb_period_ticks}
.data rpt_start 1
.data rpt_end 1
.data fire_cnt 1
.data ctp_busy 1
.data hb_busy 1
.data tx_owner 1
.data fails 1
.data seq 1
.data fwd_buf 3
.data hb_seen 1
.data is_source 1
.data parent 1
.task ctp_task
.task hb_task
.task fwd_task
.handler TIMER0 on_report_timer
.handler TIMER1 on_hb_timer
.handler RX on_rx
.handler TXDONE on_txdone

main:
 in r1, NODE_ID
 cmpi r1, 0
 breq parent_done
 mov r2, r1
 subi r2, 1
 shr r2, 1
 sta parent, r2
parent_done:
 ldi r3, 0
 cmpi r1, 4
 breq src_yes
 cmpi r1, 5
 breq src_yes
 cmpi r1, 7
 breq src_yes
 cmpi r1, 8
 breq src_yes
 jmp src_done
src_yes:
 ldi r3, 1
src_done:
 sta is_source, r3
 in r4, RAND
 ldi r5, 7
 and r4, r5
 sta rpt_start, r4
 in r6, RAND
 ldi r5, 7
 and r6, r5
 addi r6, 10
 add r6, r4
 sta rpt_end, r6
 in r7, RAND
 ldi r5, 127
 and r7, r5
 addi r7, {report_base_ticks}
 out TIMER0_PERIOD, r7
 ldi r5, 1
 out TIMER0_CTRL, r5
 ldi r7, HB_PERIOD
 out TIMER1_PERIOD, r7
 out TIMER1_CTRL, r5
 ret

on_report_timer:
 post ctp_task
 reti

on_hb_timer:
 post hb_task
 reti

; The analyzed event procedure: CTP's periodic report path.
ctp_task:
 lda r1, is_source
 cmpi r1, 0
 breq ctp_ret
 lda r1, fire_cnt
 mov r2, r1
 addi r2, 1
 sta fire_cnt, r2
 lda r3, rpt_start
 cmp r1, r3
 brltu ctp_ret
 lda r3, rpt_end
 cmp r1, r3
 brgeu ctp_ret
 lda r4, ctp_busy
 cmpi r4, 0
 brne ctp_ret
 ldi r5, 1
 out RADIO_TX_PUSH, r5
 in r6, NODE_ID
 out RADIO_TX_PUSH, r6
 lda r7, seq
 out RADIO_TX_PUSH, r7
 addi r7, 1
 sta seq, r7
 in r8, RAND
 out RADIO_TX_PUSH, r8
 ldi r4, 1
 sta ctp_busy, r4
 lda r9, parent
 out RADIO_SEND, r9
 in r10, RADIO_STATUS
 ldi r11, 2
 and r10, r11
 cmpi r10, 0
 breq ctp_ok
{fail_handling}
ctp_ok:
 ldi r10, 1
 sta tx_owner, r10
 ret
ctp_ret:
 ret

hb_task:
 lda r1, hb_busy
 cmpi r1, 0
 brne hb_ret
 ldi r2, 2
 out RADIO_TX_PUSH, r2
 in r3, NODE_ID
 out RADIO_TX_PUSH, r3
 ldi r4, {hb_pad_words}
hb_pad_loop:
 out RADIO_TX_PUSH, r4
 subi r4, 1
 brne hb_pad_loop
 ldi r5, 1
 sta hb_busy, r5
 ldi r6, 0xFFFF
 out RADIO_SEND, r6
 in r7, RADIO_STATUS
 ldi r8, 2
 and r7, r8
 cmpi r7, 0
 breq hb_ok
 ldi r5, 0
 sta hb_busy, r5
 ret
hb_ok:
 ldi r7, 2
 sta tx_owner, r7
 ret
hb_ret:
 ret

on_txdone:
 lda r1, tx_owner
 cmpi r1, 1
 brne txd_hb
 ldi r2, 0
 sta ctp_busy, r2
 jmp txd_done
txd_hb:
 cmpi r1, 2
 brne txd_done
 ldi r2, 0
 sta hb_busy, r2
txd_done:
 ldi r1, 0
 sta tx_owner, r1
 reti

on_rx:
 in r1, RADIO_RX_POP
 cmpi r1, 2
 breq rx_hb
 in r2, RADIO_RX_POP
 in r3, RADIO_RX_POP
 in r4, RADIO_RX_POP
 sta fwd_buf, r2
 sta fwd_buf+1, r3
 sta fwd_buf+2, r4
 in r5, NODE_ID
 cmpi r5, 0
 brne rx_relay
 out UART_OUT, r2
 out UART_OUT, r3
 reti
rx_relay:
 post fwd_task
 reti
rx_hb:
 in r2, RADIO_RX_POP
 out RADIO_RX_DROP, r0
 lda r3, hb_seen
 addi r3, 1
 sta hb_seen, r3
 reti

; Well-behaved forwarding toward the root (not the analyzed procedure;
; chip-busy losses here look like ordinary wireless losses).
fwd_task:
 in r1, RADIO_STATUS
 ldi r2, 1
 and r1, r2
 cmpi r1, 0
 brne fwd_skip
 ldi r3, 1
 out RADIO_TX_PUSH, r3
 lda r4, fwd_buf
 out RADIO_TX_PUSH, r4
 lda r4, fwd_buf+1
 out RADIO_TX_PUSH, r4
 lda r4, fwd_buf+2
 out RADIO_TX_PUSH, r4
 lda r5, parent
 out RADIO_SEND, r5
fwd_skip:
 ret
"
    )
}

/// Assembles the buggy collection node program.
///
/// # Errors
///
/// Returns [`AsmError`] only if the template is corrupted.
pub fn buggy(params: &CtpParams) -> Result<Arc<Program>, AsmError> {
    tinyvm::assemble(&source(params, true)).map(Arc::new)
}

/// Assembles the fixed variant (clears the busy mark on send failure).
///
/// # Errors
///
/// Returns [`AsmError`] only if the template is corrupted.
pub fn fixed(params: &CtpParams) -> Result<Arc<Program>, AsmError> {
    tinyvm::assemble(&source(params, false)).map(Arc::new)
}

/// Builds the 9-node tree topology.
///
/// # Errors
///
/// [`netsim::TopologyError`] only if the compile-time tree constants are
/// corrupted (an out-of-range or self-referential parent id).
pub fn topology() -> Result<netsim::Topology, netsim::TopologyError> {
    let mut topo = netsim::Topology::new(NODE_COUNT);
    for n in 1..NODE_COUNT {
        topo.connect(n, parent_of(n), netsim::LinkConfig::default())?;
    }
    Ok(topo)
}

/// Node configuration for each tree member.
pub fn node_config(id: u16, seed: u64) -> NodeConfig {
    NodeConfig {
        node_id: id,
        seed: seed.wrapping_add(id as u64 * 7919),
        ..NodeConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::NetSim;
    use tinyvm::NullSink;

    fn run_tree(program: Arc<Program>, seed: u64, cycles: u64) -> NetSim {
        let mut sim = NetSim::new(topology().expect("static tree topology"), seed);
        for id in 0..NODE_COUNT {
            sim.add_node(program.clone(), node_config(id, seed))
                .unwrap();
        }
        let mut sinks = vec![NullSink; NODE_COUNT as usize];
        sim.run(cycles, &mut sinks).unwrap();
        sim
    }

    fn fails_of(sim: &NetSim, id: u16) -> u16 {
        let node = sim.node(id);
        let addr = node.program().label("fails").unwrap();
        node.mem()[addr as usize]
    }

    fn seq_of(sim: &NetSim, id: u16) -> u16 {
        let node = sim.node(id);
        let addr = node.program().label("seq").unwrap();
        node.mem()[addr as usize]
    }

    #[test]
    fn programs_assemble() {
        buggy(&CtpParams::default()).unwrap();
        fixed(&CtpParams::default()).unwrap();
    }

    #[test]
    fn tree_topology_shape() {
        assert_eq!(parent_of(8), 3);
        assert_eq!(parent_of(3), 1);
        assert_eq!(parent_of(1), 0);
        let t = topology().expect("static tree topology");
        assert!(t.link(8, 3).is_some());
        assert!(t.link(8, 0).is_none());
    }

    #[test]
    fn data_reaches_the_root() {
        let sim = run_tree(buggy(&CtpParams::default()).unwrap(), 3, 15_000_000);
        let root_log = sim.node(ROOT).uart();
        assert!(
            root_log.len() >= 20,
            "root logged only {} words",
            root_log.len()
        );
        // Origins logged at even offsets must be source ids.
        for pair in root_log.chunks(2) {
            assert!(
                SOURCES.contains(&pair[0]),
                "origin {} not a source",
                pair[0]
            );
        }
    }

    #[test]
    fn contention_eventually_hangs_a_buggy_node() {
        let mut hang_seen = false;
        for seed in 0..6u64 {
            let sim = run_tree(buggy(&CtpParams::default()).unwrap(), seed, 15_000_000);
            for &s in &SOURCES {
                if fails_of(&sim, s) > 0 {
                    hang_seen = true;
                    // Hung: exactly one failure, then the busy mark blocks
                    // every later attempt.
                    assert_eq!(fails_of(&sim, s), 1, "node {s} kept retrying?");
                }
            }
        }
        assert!(hang_seen, "no contention hang in 6 seeds");
    }

    #[test]
    fn fixed_variant_retries_and_keeps_reporting() {
        for seed in 0..6u64 {
            let buggy_sim = run_tree(buggy(&CtpParams::default()).unwrap(), seed, 15_000_000);
            let fixed_sim = run_tree(fixed(&CtpParams::default()).unwrap(), seed, 15_000_000);
            for &s in &SOURCES {
                if fails_of(&buggy_sim, s) > 0 {
                    // Same seed, same contention; the fixed node must send
                    // at least as many reports as the hung one.
                    assert!(
                        seq_of(&fixed_sim, s) >= seq_of(&buggy_sim, s),
                        "node {s}: fixed sent fewer reports than buggy"
                    );
                }
            }
        }
    }
}
