//! # sentomist-apps — case-study applications and experiment drivers
//!
//! The three evaluation case studies of ["Sentomist: Unveiling Transient
//! Sensor Network Bugs via Symptom
//! Mining"](https://doi.org/10.1109/ICDCS.2010.75), rebuilt as TinyVM
//! assembly programs with the paper's transient bugs faithfully injected:
//!
//! * [`oscilloscope`] — case I: the Figure-2 data-pollution race in a
//!   single-hop data-collection application (ADC interrupt);
//! * [`forwarder`] — case II: the busy-flag active packet drop in a
//!   multi-hop forwarding relay (radio/SPI interrupt);
//! * [`ctp`] — case III: the unhandled send-failure hang when a CTP-style
//!   collection protocol and a heartbeat protocol contend for one radio
//!   chip (timer interrupt).
//!
//! Each module also ships a *fixed* variant of its application, and
//! [`experiments`] drives the full Sentomist pipeline over each scenario
//! with machine-checkable ground-truth oracles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctp;
pub mod experiments;
pub mod forwarder;
pub mod jobs;
pub mod oscilloscope;
pub mod scenario;

pub use experiments::{
    case1_job, case1_job_traced, case2_job, case2_job_traced, case3_job, case3_job_traced,
    mine_case1, mine_case2, mine_case3, mine_trigger_trace, run_case1, run_case1_traced, run_case2,
    run_case2_traced, run_case3, run_case3_traced, run_trigger_campaign, trigger_job,
    trigger_job_traced, Case1Config, Case2Config, Case3Config, CaseResult, DetectorKind,
};
pub use jobs::{
    bundled_program, bundled_slice_report, campaign_document, default_slice_seeds, fnv64,
    mine_corpus, slice_document, CampaignJob, CorpusMineOptions, JobError, MinedCorpus, Mode,
    StoreMiner, SupervisedTracedJob, TracedJob,
};
pub use scenario::{
    emulate_scenario, hunt_iteration, mine_scenario, mined_matches, scenario, scenario_evidence,
    scenario_program, HuntCase, HuntScenario, MinedScenario, ScenarioParams, Variant,
};
