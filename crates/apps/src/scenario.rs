//! Seeded scenario generation for the hunt subsystem.
//!
//! A scenario is one concrete mutation of a case study: workload timing,
//! interrupt-schedule knobs, per-hop link loss/latency, app parameters
//! and the detector's ν, all drawn from a [`splitmix64`] stream keyed by
//! the scenario seed — so [`scenario`] is a *pure function* of
//! `(case, variant, seed)` and every run is replayable from its seed
//! alone. The buggy and fixed variants of the same seed see the
//! identical workload (draws are salted by case only); the variant
//! merely selects which program runs.
//!
//! [`hunt_iteration`] is the full per-seed job the hunt campaign fans
//! out: emulate the scenario, mine it, re-mine it, assemble
//! [`Evidence`] and check the [invariant
//! registry](sentomist_core::hunt). Granular pieces
//! ([`emulate_scenario`], [`mine_scenario`]) are public for callers that
//! persist traces to a store between the steps.

use crate::experiments::{
    chain_digest, contains_nested_int, CaseResult, DetectorKind, CYCLES_PER_SECOND,
};
use crate::{ctp, forwarder, oscilloscope};
use netsim::{LinkConfig, NetSim, Topology};
use sentomist_core::hunt::{check_invariants, Evidence, InvariantPolicy, IterationRecord};
use sentomist_core::supervise::splitmix64;
use sentomist_core::{
    causal_chain, corroborate_with_chain, harvest_set, localize_set, CausalChain, SampleIndex,
    SampleSet,
};
use sentomist_trace::{Recorder, Trace};
use staticlint::lint;
use std::sync::Arc;
use tinyvm::devices::{AdcConfig, NodeConfig};
use tinyvm::isa::irq;
use tinyvm::node::Node;
use tinyvm::Program;

/// z-score threshold for localizing a flagged interval (the CLI's
/// default): modest on purpose — corroboration then filters the hits
/// against the static warnings.
const LOCALIZE_MIN_Z: f64 = 1.0;

/// A counted splitmix64 draw stream: every value is a pure function of
/// `(key, draw ordinal)`, so inserting a draw never shifts later ones
/// read through a different helper.
struct Draws {
    key: u64,
    counter: u64,
}

impl Draws {
    fn new(seed: u64, salt: u64) -> Draws {
        Draws {
            key: splitmix64(seed ^ salt),
            counter: 0,
        }
    }

    fn next(&mut self) -> u64 {
        self.counter += 1;
        splitmix64(
            self.key
                .wrapping_add(self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next() % (hi - lo + 1)
    }

    /// Uniform draw from `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform pick from a non-empty slice.
    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[(self.next() % options.len() as u64) as usize]
    }
}

/// Which case study a scenario mutates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuntCase {
    /// Case I: the oscilloscope data-pollution race (single node).
    Oscilloscope,
    /// Case II: the forwarder's busy-flag active drop (3-node chain).
    Forwarder,
    /// Case III: the CTP unhandled send failure (9-node tree).
    Ctp,
}

impl HuntCase {
    /// Every case, in case-number order.
    pub const ALL: [HuntCase; 3] = [HuntCase::Oscilloscope, HuntCase::Forwarder, HuntCase::Ctp];

    /// The target name used in stores and reports.
    pub fn name(self) -> &'static str {
        match self {
            HuntCase::Oscilloscope => "oscilloscope",
            HuntCase::Forwarder => "forwarder",
            HuntCase::Ctp => "ctp",
        }
    }

    /// The paper's case number (1–3).
    pub fn number(self) -> u8 {
        match self {
            HuntCase::Oscilloscope => 1,
            HuntCase::Forwarder => 2,
            HuntCase::Ctp => 3,
        }
    }

    /// Inverse of [`HuntCase::number`].
    pub fn from_number(n: u64) -> Option<HuntCase> {
        HuntCase::ALL
            .into_iter()
            .find(|c| u64::from(c.number()) == n)
    }

    /// Per-case draw-stream salt: distinct so the same seed yields
    /// independent mutations in each case.
    fn salt(self) -> u64 {
        match self {
            HuntCase::Oscilloscope => 0x5EA7_0001_0000_0001,
            HuntCase::Forwarder => 0x5EA7_0002_0000_0002,
            HuntCase::Ctp => 0x5EA7_0003_0000_0003,
        }
    }

    /// How a triggered symptom of this case reads in violation messages.
    pub fn symptom_note(self) -> &'static str {
        match self {
            HuntCase::Oscilloscope => "nested ADC interrupt",
            HuntCase::Forwarder => "active packet drop at fwd_drop",
            HuntCase::Ctp => "CTP send failure at ctp_fail",
        }
    }

    /// The routine carrying the injected bug — the site a reconstructed
    /// causal chain must cover on a triggered run.
    pub fn bug_site_routine(self) -> &'static str {
        match self {
            HuntCase::Oscilloscope => "on_read_done",
            HuntCase::Forwarder => "fwd_drop",
            HuntCase::Ctp => "ctp_fail",
        }
    }
}

/// Which program variant a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The paper's injected transient bug.
    Buggy,
    /// The race-free repair.
    Fixed,
}

impl Variant {
    /// The variant name used in stores and reports.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Buggy => "buggy",
            Variant::Fixed => "fixed",
        }
    }

    /// Whether this is the fixed variant.
    pub fn is_fixed(self) -> bool {
        self == Variant::Fixed
    }
}

/// The mutated per-case knobs of one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioParams {
    /// Case I knobs: app timing plus the ADC interrupt schedule.
    Oscilloscope {
        /// Application workload parameters.
        params: oscilloscope::OscilloscopeParams,
        /// ADC conversion latency/jitter (the interrupt-schedule knob).
        adc: AdcConfig,
    },
    /// Case II knobs: source workload plus per-hop link conditions.
    Forwarder {
        /// Source workload parameters.
        params: forwarder::ForwarderParams,
        /// Link sink—relay.
        downlink: LinkConfig,
        /// Link relay—source.
        uplink: LinkConfig,
    },
    /// Case III knobs: protocol timing.
    Ctp {
        /// Protocol timing parameters.
        params: ctp::CtpParams,
    },
}

/// One fully instantiated hunt scenario — everything a run needs, all of
/// it derived from `(case, variant, seed)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HuntScenario {
    /// The case study under mutation.
    pub case: HuntCase,
    /// Which program variant runs.
    pub variant: Variant,
    /// The scenario seed (`campaign_seed + iteration`).
    pub seed: u64,
    /// Derived RNG seed for the emulated node(s)/simulation.
    pub node_seed: u64,
    /// Emulated duration in simulated seconds.
    pub run_seconds: u64,
    /// Detector ν.
    pub nu: f64,
    /// The mutated knobs.
    pub params: ScenarioParams,
}

/// Generates the scenario for `(case, variant, seed)` — a total, pure
/// function: same inputs, same scenario, on every call, thread and
/// machine. Draws are salted by case only, so the buggy and fixed
/// variants of one seed exercise the identical workload.
pub fn scenario(case: HuntCase, variant: Variant, seed: u64) -> HuntScenario {
    let mut d = Draws::new(seed, case.salt());
    let (params, run_seconds, nu) = match case {
        HuntCase::Oscilloscope => {
            let params = oscilloscope::OscilloscopeParams {
                sample_period_ms: d.in_range(10, 60) as u32,
                hk_period_ms: d.in_range(25, 50) as u32,
                hk_short_iters: d.in_range(400, 1200) as u16,
                hk_long_iters: d.in_range(6_000, 12_000) as u16,
                hk_very_long_iters: d.in_range(15_000, 30_000) as u16,
            };
            let adc = AdcConfig::with_timing(d.in_range(100, 400), d.in_range(0, 256));
            (
                ScenarioParams::Oscilloscope { params, adc },
                d.in_range(2, 4),
                d.pick(&[0.03, 0.05, 0.08]),
            )
        }
        HuntCase::Forwarder => {
            let params = forwarder::ForwarderParams {
                gap_base_ticks: d.in_range(150, 350) as u16,
                gap_jitter_mask: d.pick(&[127, 255, 511]),
                burst_mask: d.pick(&[15, 31, 63]),
                quick_gap_ticks: d.in_range(16, 32) as u16,
            };
            let link = |d: &mut Draws| LinkConfig {
                latency_cycles: d.in_range(64, 2_000),
                loss_prob: d.unit() * 0.10,
            };
            let downlink = link(&mut d);
            let uplink = link(&mut d);
            (
                ScenarioParams::Forwarder {
                    params,
                    downlink,
                    uplink,
                },
                d.in_range(6, 10),
                d.pick(&[0.03, 0.05, 0.08]),
            )
        }
        HuntCase::Ctp => {
            let params = ctp::CtpParams {
                hb_period_ticks: d.in_range(1_800, 2_199) as u16,
                report_base_ticks: d.in_range(2_100, 2_599) as u16,
                hb_pad_words: d.in_range(16, 32) as u16,
            };
            (
                ScenarioParams::Ctp { params },
                d.in_range(6, 9),
                d.pick(&[0.08, 0.10, 0.12]),
            )
        }
    };
    HuntScenario {
        case,
        variant,
        seed,
        node_seed: d.next(),
        run_seconds,
        nu,
        params,
    }
}

/// The program under test of a scenario — the one that carries (or
/// fixes) the injected bug and that lint/localization reason about:
/// the oscilloscope app, the forwarder *relay*, or the CTP node program.
///
/// # Errors
///
/// Assembly errors, rendered as text.
pub fn scenario_program(s: &HuntScenario) -> Result<Arc<Program>, String> {
    let program = match (&s.params, s.variant) {
        (ScenarioParams::Oscilloscope { params, .. }, Variant::Buggy) => {
            oscilloscope::buggy(params)
        }
        (ScenarioParams::Oscilloscope { params, .. }, Variant::Fixed) => {
            oscilloscope::fixed(params)
        }
        (ScenarioParams::Forwarder { .. }, Variant::Buggy) => forwarder::relay_program_buggy(),
        (ScenarioParams::Forwarder { .. }, Variant::Fixed) => forwarder::relay_program_fixed(),
        (ScenarioParams::Ctp { params }, Variant::Buggy) => ctp::buggy(params),
        (ScenarioParams::Ctp { params }, Variant::Fixed) => ctp::fixed(params),
    };
    program.map_err(|e| format!("assembling {} program: {e}", s.case.name()))
}

/// Emulates one scenario, returning the recorded traces in node-id
/// order (case I records a single node).
///
/// # Errors
///
/// Assembly and emulation faults, rendered as text.
pub fn emulate_scenario(s: &HuntScenario) -> Result<Vec<Trace>, String> {
    let cycles = s.run_seconds * CYCLES_PER_SECOND;
    match &s.params {
        ScenarioParams::Oscilloscope { adc, .. } => {
            let program = scenario_program(s)?;
            let mut node = Node::new(
                program.clone(),
                NodeConfig {
                    seed: s.node_seed,
                    adc: *adc,
                    ..NodeConfig::default()
                },
            );
            let mut recorder = Recorder::new(program.len());
            node.run(cycles, &mut recorder)
                .map_err(|e| format!("oscilloscope emulation: {e}"))?;
            Ok(vec![recorder.into_trace()])
        }
        ScenarioParams::Forwarder {
            params,
            downlink,
            uplink,
        } => {
            let relay = scenario_program(s)?;
            let topo = Topology::chain_with(&[*downlink, *uplink])
                .map_err(|e| format!("forwarder topology: {e}"))?;
            let mut sim = NetSim::new(topo, s.node_seed);
            let fail = |e| format!("forwarder simulation: {e}");
            sim.add_node(
                forwarder::sink_program().map_err(|e| fail(format!("{e}")))?,
                forwarder::node_config(forwarder::nodes::SINK, s.node_seed),
            )
            .map_err(|e| fail(format!("{e}")))?;
            sim.add_node(
                relay.clone(),
                forwarder::node_config(forwarder::nodes::RELAY, s.node_seed + 1),
            )
            .map_err(|e| fail(format!("{e}")))?;
            sim.add_node(
                forwarder::source_program(params).map_err(|e| fail(format!("{e}")))?,
                forwarder::node_config(forwarder::nodes::SOURCE, s.node_seed + 2),
            )
            .map_err(|e| fail(format!("{e}")))?;
            let mut recorders = vec![
                Recorder::new(sim.node(0).program().len()),
                Recorder::new(relay.len()),
                Recorder::new(sim.node(2).program().len()),
            ];
            sim.run(cycles, &mut recorders)
                .map_err(|e| fail(format!("{e}")))?;
            Ok(recorders.into_iter().map(Recorder::into_trace).collect())
        }
        ScenarioParams::Ctp { .. } => {
            let program = scenario_program(s)?;
            let topo = ctp::topology().map_err(|e| format!("ctp topology: {e}"))?;
            let mut sim = NetSim::new(topo, s.node_seed);
            for id in 0..ctp::NODE_COUNT {
                sim.add_node(program.clone(), ctp::node_config(id, s.node_seed))
                    .map_err(|e| format!("ctp node {id}: {e}"))?;
            }
            let mut recorders: Vec<Recorder> = (0..ctp::NODE_COUNT)
                .map(|_| Recorder::new(program.len()))
                .collect();
            sim.run(cycles, &mut recorders)
                .map_err(|e| format!("ctp simulation: {e}"))?;
            Ok(recorders.into_iter().map(Recorder::into_trace).collect())
        }
    }
}

/// One mined scenario run: the case result plus the extra evidence the
/// invariant registry consumes.
#[derive(Debug, Clone)]
pub struct MinedScenario {
    /// Ranking, oracle hits and trace digest.
    pub result: CaseResult,
    /// Samples with a negative normalized score.
    pub negative_scores: usize,
    /// The ν the detector actually ran with: the scenario's draw,
    /// clamped up on small sample sets (OC-SVM requires `ν·l ≥ 1`).
    pub effective_nu: f64,
    /// Static-analyzer warning count on the program under test.
    pub static_warnings: usize,
    /// Whether localizing the top suspect implicated a statically
    /// flagged site: the best-ranked ground-truth symptom on triggered
    /// runs, the top-ranked negative outlier on clean fixed runs (the
    /// false-positive probe). `None` when there was nothing to localize.
    pub corroborated: Option<bool>,
    /// The causal chain reconstructed for the localized suspect's
    /// interval, when one exists (fixed variants lint clean, so their
    /// chains are pruned away by construction).
    pub chain: Option<CausalChain>,
    /// Whether the chain covers the case's injected bug routine.
    pub chain_contains_bug_site: bool,
}

/// Whether a chain's evidence touches `routine`: a hop endpoint inside
/// it, or an executed-slice pc enclosed by it.
fn chain_covers_routine(chain: &CausalChain, program: &Program, routine: &str) -> bool {
    chain.touches_routine(routine)
        || chain
            .sliced_executed
            .iter()
            .any(|&pc| program.enclosing_label(pc) == Some(routine))
}

/// Harvests, oracles and ranks one scenario's traces — deterministic for
/// given `(scenario, traces)`, and shared by the live path and
/// store-replayed re-mining (which is exactly what the
/// `mining_determinism` invariant exploits).
///
/// # Errors
///
/// Wrong trace count, extraction and pipeline errors, as text.
pub fn mine_scenario(s: &HuntScenario, traces: &[Trace]) -> Result<MinedScenario, String> {
    let program = scenario_program(s)?;
    let (set, buggy) = match &s.params {
        ScenarioParams::Oscilloscope { .. } => {
            let [trace] = traces else {
                return Err(format!(
                    "oscilloscope scenario expects 1 trace, got {}",
                    traces.len()
                ));
            };
            let set = harvest_set(trace, irq::ADC, |seq, _| SampleIndex::Seq(seq))
                .map_err(|e| format!("harvesting ADC intervals: {e}"))?;
            let buggy: Vec<SampleIndex> = set
                .meta
                .iter()
                .filter(|m| contains_nested_int(trace, &m.interval, irq::ADC))
                .map(|m| m.index)
                .collect();
            (set, buggy)
        }
        ScenarioParams::Forwarder { .. } => {
            if traces.len() != 3 {
                return Err(format!(
                    "forwarder scenario expects 3 traces, got {}",
                    traces.len()
                ));
            }
            let drop_pc = program.label("fwd_drop");
            let set = harvest_set(&traces[1], irq::RX, |seq, _| SampleIndex::Seq(seq))
                .map_err(|e| format!("harvesting relay RX intervals: {e}"))?;
            let buggy: Vec<SampleIndex> = match drop_pc {
                Some(pc) => set
                    .meta
                    .iter()
                    .zip(set.features.rows_iter())
                    .filter(|(_, row)| row[pc as usize] > 0.0)
                    .map(|(m, _)| m.index)
                    .collect(),
                None => Vec::new(), // the fixed relay has no drop branch
            };
            (set, buggy)
        }
        ScenarioParams::Ctp { .. } => {
            if traces.len() != ctp::NODE_COUNT as usize {
                return Err(format!(
                    "ctp scenario expects {} traces, got {}",
                    ctp::NODE_COUNT,
                    traces.len()
                ));
            }
            let fail_pc = program
                .label("ctp_fail")
                .ok_or("ctp program lacks the ctp_fail label")? as usize;
            let mut all = SampleSet::empty();
            let mut buggy = Vec::new();
            for (id, trace) in traces.iter().enumerate() {
                let node = id as u16;
                if !ctp::SOURCES.contains(&node) {
                    continue;
                }
                let set = harvest_set(trace, irq::TIMER0, |seq, _| SampleIndex::NodeSeq {
                    node,
                    seq,
                })
                .map_err(|e| format!("harvesting node {node} report intervals: {e}"))?;
                for (m, row) in set.meta.iter().zip(set.features.rows_iter()) {
                    if row[fail_pc] > 0.0 {
                        buggy.push(m.index);
                    }
                }
                all.append(&set);
            }
            (all, buggy)
        }
    };
    // The repaired variants make the oracle events harmless by
    // construction (no pollution, failure handled), so a fixed run has
    // no ground-truth symptom intervals — mirroring case II, whose fixed
    // relay has no drop branch to hit at all.
    let buggy = if s.variant.is_fixed() {
        Vec::new()
    } else {
        buggy
    };
    let trace_digest = chain_digest(traces.iter().map(Trace::digest));
    let sample_count = set.len();
    // OC-SVM requires ν·l ≥ 1; short runs clamp ν up deterministically.
    let effective_nu = s.nu.max(2.0 / sample_count.max(2) as f64).min(1.0);
    let report = DetectorKind::OcSvm { nu: effective_nu }
        .pipeline()
        .rank_set(set.clone())
        .map_err(|e| format!("ranking {} samples: {e}", sample_count))?;
    let negative_scores = report.ranking.iter().filter(|r| r.score < 0.0).count();
    let lint_report = lint(&program);
    let result = CaseResult::new(report, sample_count, buggy, trace_digest);
    // Corroboration: localize the top suspect and join its implicated
    // instructions against the static warnings. On triggered runs the
    // suspect is the best-ranked ground-truth symptom; on clean fixed
    // runs it is the top-ranked negative outlier, probing the pipeline
    // for an end-to-end false positive.
    let flagged_index = match result.buggy_ranks.first() {
        Some(&best_rank) => Some(result.report.ranking[best_rank - 1].index),
        None if s.variant.is_fixed() => result
            .report
            .ranking
            .first()
            .filter(|r| r.score < 0.0)
            .map(|r| r.index),
        None => None,
    };
    let (corroborated, chain) = match flagged_index {
        None => (None, None),
        Some(flagged_index) => {
            let flagged_row = set
                .meta
                .iter()
                .position(|m| m.index == flagged_index)
                .ok_or("ranked sample missing from its own set")?;
            let hits = localize_set(&set, flagged_row, &program, LOCALIZE_MIN_Z);
            // Causal reconstruction: slice backward from the deviating
            // pcs and intersect with the flagged interval's execution,
            // on the trace of the node that produced the sample.
            let trace = match (&s.params, flagged_index) {
                (ScenarioParams::Oscilloscope { .. }, _) => &traces[0],
                (ScenarioParams::Forwarder { .. }, _) => &traces[1],
                (ScenarioParams::Ctp { .. }, SampleIndex::NodeSeq { node, .. }) => traces
                    .get(node as usize)
                    .ok_or("flagged sample names a node without a trace")?,
                (ScenarioParams::Ctp { .. }, _) => &traces[0],
            };
            let interval = set.meta[flagged_row].interval;
            let seeds: Vec<u16> = hits.iter().map(|h| h.pc).collect();
            let chain = causal_chain(&program, trace, &interval, &seeds, &lint_report)
                .map_err(|e| format!("reconstructing the causal chain: {e}"))?;
            let corroborated = corroborate_with_chain(&hits, &lint_report, chain.as_ref())
                .iter()
                .any(|c| c.corroborated());
            (Some(corroborated), chain)
        }
    };
    let chain_contains_bug_site = chain
        .as_ref()
        .is_some_and(|c| chain_covers_routine(c, &program, s.case.bug_site_routine()));
    Ok(MinedScenario {
        result,
        negative_scores,
        effective_nu,
        static_warnings: lint_report.warnings.len(),
        corroborated,
        chain,
        chain_contains_bug_site,
    })
}

/// Assembles the invariant registry's [`Evidence`] for one mined run.
pub fn scenario_evidence(
    s: &HuntScenario,
    mined: &MinedScenario,
    remine_matches: bool,
) -> Evidence {
    Evidence {
        outcome: mined.result.to_outcome(s.seed),
        fixed_variant: s.variant.is_fixed(),
        negative_scores: mined.negative_scores,
        nu: mined.effective_nu,
        static_warnings: mined.static_warnings,
        corroborated: mined.corroborated,
        remine_matches,
        chain_emitted: mined.corroborated.map(|_| mined.chain.is_some()),
        chain_contains_bug_site: mined.chain_contains_bug_site,
        symptom_note: s.case.symptom_note().to_string(),
    }
}

/// Whether two mining passes over the same traces agree exactly — the
/// `mining_determinism` predicate.
pub fn mined_matches(s: &HuntScenario, a: &MinedScenario, b: &MinedScenario) -> bool {
    a.result.to_outcome(s.seed) == b.result.to_outcome(s.seed)
        && a.negative_scores == b.negative_scores
        && a.effective_nu == b.effective_nu
        && a.static_warnings == b.static_warnings
        && a.corroborated == b.corroborated
        && a.chain == b.chain
}

/// The complete per-seed hunt job: generate the scenario, emulate it,
/// mine it twice (live + re-mine, feeding `mining_determinism`), check
/// every applicable invariant, and return the iteration record along
/// with the recorded traces for optional persistence.
///
/// # Errors
///
/// Emulation/mining failures, as text — deterministic for a seed, so
/// callers should treat them as fatal rather than retryable.
pub fn hunt_iteration(
    case: HuntCase,
    variant: Variant,
    seed: u64,
    policy: &InvariantPolicy,
) -> Result<(IterationRecord, Vec<Trace>), String> {
    let s = scenario(case, variant, seed);
    let traces = emulate_scenario(&s)?;
    let mined = mine_scenario(&s, &traces)?;
    let remined = mine_scenario(&s, &traces)?;
    let remine_matches = mined_matches(&s, &mined, &remined);
    let evidence = scenario_evidence(&s, &mined, remine_matches);
    let (checked, violations) = check_invariants(&evidence, policy);
    Ok((
        IterationRecord {
            seed,
            outcome: evidence.outcome,
            checked,
            violations,
        },
        traces,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_pure_and_variant_independent() {
        for case in HuntCase::ALL {
            for seed in [0u64, 1, 0xBEEF, u64::MAX] {
                let a = scenario(case, Variant::Buggy, seed);
                let b = scenario(case, Variant::Buggy, seed);
                assert_eq!(a, b, "{case:?} seed {seed} not pure");
                let fixed = scenario(case, Variant::Fixed, seed);
                assert_eq!(
                    (a.node_seed, a.run_seconds, a.nu, a.params),
                    (fixed.node_seed, fixed.run_seconds, fixed.nu, fixed.params),
                    "{case:?} seed {seed}: variant changed the workload"
                );
            }
        }
    }

    #[test]
    fn draws_differ_across_cases_and_seeds() {
        let a = scenario(HuntCase::Oscilloscope, Variant::Buggy, 7);
        let b = scenario(HuntCase::Oscilloscope, Variant::Buggy, 8);
        assert_ne!(a.node_seed, b.node_seed);
        let c = scenario(HuntCase::Forwarder, Variant::Buggy, 7);
        assert_ne!(a.node_seed, c.node_seed);
    }

    #[test]
    fn a_small_oscilloscope_iteration_round_trips() {
        let policy = InvariantPolicy::default();
        let (record, traces) =
            hunt_iteration(HuntCase::Oscilloscope, Variant::Buggy, 3, &policy).unwrap();
        assert_eq!(record.seed, 3);
        assert_eq!(traces.len(), 1);
        assert!(record.outcome.samples > 0);
        // Mining the same traces again agrees with itself.
        let s = scenario(HuntCase::Oscilloscope, Variant::Buggy, 3);
        let m1 = mine_scenario(&s, &traces).unwrap();
        let m2 = mine_scenario(&s, &traces).unwrap();
        assert!(mined_matches(&s, &m1, &m2));
    }
}
