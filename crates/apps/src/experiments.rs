//! The paper's three evaluation case studies as runnable experiments.
//!
//! Each `run_case*` function executes the workload on the emulator,
//! anatomizes the traces into event-handling intervals, featurizes them as
//! instruction counters, ranks them with a plug-in detector, and — unlike
//! the paper, which relied on manual inspection — also computes the
//! ground-truth set of bug-symptom intervals from independent oracles, so
//! the ranking quality is machine-checkable.

use crate::{ctp, forwarder, oscilloscope};
use mlcore::{
    EnsembleDetector, KdeDetector, KfdDetector, KnnDetector, MahalanobisDetector, PcaDetector,
};
use sentomist_core::campaign::{
    run_campaign, CampaignOptions, CampaignResult, RunOutcome, Verdict,
};
use sentomist_core::supervise::{RunContext, RunFailure};
use sentomist_core::{harvest_set, Pipeline, Report, SampleIndex, SampleSet};
use sentomist_trace::{EventInterval, Recorder, Trace};
use std::error::Error;
use tinyvm::devices::NodeConfig;
use tinyvm::isa::irq;
use tinyvm::node::Node;
use tinyvm::LifecycleItem;

/// Simulated clock rate (cycles per second).
pub const CYCLES_PER_SECOND: u64 = tinyvm::isa::DEFAULT_CLOCK_HZ;

/// Which plug-in detector to use (paper §VI-E: the detector is a plug-in).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorKind {
    /// One-class SVM with the given ν (the paper's default).
    OcSvm {
        /// ν parameter.
        nu: f64,
    },
    /// PCA reconstruction error.
    Pca,
    /// kNN mean distance.
    Knn,
    /// Mahalanobis distance with shrinkage.
    Mahalanobis,
    /// Parzen-window kernel density.
    Kde,
    /// One-class Kernel Fisher Discriminant.
    Kfd,
    /// Rank-averaging committee (OC-SVM + Mahalanobis + kNN).
    Ensemble {
        /// ν for the OC-SVM member.
        nu: f64,
    },
}

impl DetectorKind {
    /// All detector kinds, for ablation sweeps.
    pub fn all(nu: f64) -> [DetectorKind; 7] {
        [
            DetectorKind::OcSvm { nu },
            DetectorKind::Pca,
            DetectorKind::Knn,
            DetectorKind::Mahalanobis,
            DetectorKind::Kde,
            DetectorKind::Kfd,
            DetectorKind::Ensemble { nu },
        ]
    }

    /// Builds the pipeline for this detector.
    pub fn pipeline(self) -> Pipeline {
        match self {
            DetectorKind::OcSvm { nu } => Pipeline::default_ocsvm(nu),
            DetectorKind::Pca => Pipeline::new(Box::new(PcaDetector::default())),
            DetectorKind::Knn => Pipeline::new(Box::new(KnnDetector::default())),
            DetectorKind::Mahalanobis => Pipeline::new(Box::new(MahalanobisDetector::default())),
            DetectorKind::Kde => Pipeline::new(Box::new(KdeDetector::default())),
            DetectorKind::Kfd => Pipeline::new(Box::new(KfdDetector::default())),
            DetectorKind::Ensemble { nu } => {
                Pipeline::new(Box::new(EnsembleDetector::committee(nu)))
            }
        }
    }

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::OcSvm { .. } => "ocsvm",
            DetectorKind::Pca => "pca",
            DetectorKind::Knn => "knn",
            DetectorKind::Mahalanobis => "mahalanobis",
            DetectorKind::Kde => "kde",
            DetectorKind::Kfd => "kfd",
            DetectorKind::Ensemble { .. } => "ensemble",
        }
    }
}

/// Outcome of one case study.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The suspicion ranking (Figure-5 table material).
    pub report: Report,
    /// Total samples mined.
    pub sample_count: usize,
    /// Ground-truth bug-symptom samples (oracle-flagged), in sample order.
    pub buggy: Vec<SampleIndex>,
    /// 1-based ranks of the buggy samples, ascending.
    pub buggy_ranks: Vec<usize>,
    /// FNV-1a digest chained over every recorded trace of the case (node
    /// order) — the campaign replay-verification token.
    pub trace_digest: u64,
}

impl CaseResult {
    pub(crate) fn new(
        report: Report,
        sample_count: usize,
        buggy: Vec<SampleIndex>,
        trace_digest: u64,
    ) -> CaseResult {
        let mut buggy_ranks: Vec<usize> =
            buggy.iter().filter_map(|&ix| report.rank_of(ix)).collect();
        buggy_ranks.sort_unstable();
        CaseResult {
            report,
            sample_count,
            buggy,
            buggy_ranks,
            trace_digest,
        }
    }

    /// Condenses this case outcome into a campaign [`RunOutcome`].
    pub fn to_outcome(&self, seed: u64) -> RunOutcome {
        RunOutcome {
            seed,
            samples: self.sample_count,
            symptoms: self.buggy.len(),
            buggy_ranks: self.buggy_ranks.clone(),
            verdict: if self.buggy.is_empty() {
                Verdict::Clean
            } else {
                Verdict::Triggered
            },
            trace_digest: format!("{:016x}", self.trace_digest),
            wall_time_ms: 0,
        }
    }

    /// Whether every ground-truth buggy sample ranks within the top `k`.
    pub fn all_buggy_in_top(&self, k: usize) -> bool {
        !self.buggy_ranks.is_empty() && self.buggy_ranks.iter().all(|&r| r <= k)
    }

    /// The worst (largest) rank of a buggy sample.
    pub fn worst_buggy_rank(&self) -> Option<usize> {
        self.buggy_ranks.last().copied()
    }
}

/// True when `interval` contains a *nested* interrupt of the same line —
/// the paper's outlier pattern for case study I ("ADC interrupt, posting
/// a task, interrupt exit, ADC interrupt, interrupt exit, running the
/// task").
pub(crate) fn contains_nested_int(trace: &Trace, interval: &EventInterval, line: u8) -> bool {
    (interval.start_index + 1..interval.end_index)
        .any(|i| trace.events[i].item == LifecycleItem::Int(line))
}

/// Chains per-trace digests (in a fixed order) into one case-level
/// digest, FNV-1a style.
pub(crate) fn chain_digest(digests: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in digests {
        h = (h ^ d).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Case study I: data pollution in single-hop data collection
// ---------------------------------------------------------------------

/// Configuration for case study I.
#[derive(Debug, Clone)]
pub struct Case1Config {
    /// Sampling periods `D` (ms), one testing run each (paper: 20..100).
    pub periods_ms: Vec<u32>,
    /// Duration of each testing run in simulated seconds (paper: 10 s).
    pub run_seconds: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Detector plug-in.
    pub detector: DetectorKind,
    /// Use the fixed (race-free) application instead of the buggy one.
    pub use_fixed: bool,
}

impl Default for Case1Config {
    fn default() -> Self {
        Case1Config {
            periods_ms: vec![20, 40, 60, 80, 100],
            run_seconds: 10,
            seed: 45,
            detector: DetectorKind::OcSvm { nu: 0.05 },
            use_fixed: false,
        }
    }
}

/// Emulates case study I's testing runs: one trace per sampling period,
/// plus the total count of polluted UART packets (the independent data
/// oracle).
fn case1_emulate(config: &Case1Config) -> Result<(Vec<Trace>, usize), Box<dyn Error>> {
    let mut traces = Vec::with_capacity(config.periods_ms.len());
    let mut polluted_packets = 0usize;
    for (r, &period) in config.periods_ms.iter().enumerate() {
        let params = oscilloscope::OscilloscopeParams::with_period_ms(period);
        let program = if config.use_fixed {
            oscilloscope::fixed(&params)?
        } else {
            oscilloscope::buggy(&params)?
        };
        let mut node = Node::new(
            program.clone(),
            NodeConfig {
                seed: config.seed.wrapping_add(r as u64),
                ..NodeConfig::default()
            },
        );
        let mut recorder = Recorder::new(program.len());
        node.run(config.run_seconds * CYCLES_PER_SECOND, &mut recorder)?;
        polluted_packets += oscilloscope::parse_uart(node.uart())
            .iter()
            .filter(|p| p.polluted())
            .count();
        traces.push(recorder.into_trace());
    }
    Ok((traces, polluted_packets))
}

/// Mines case study I from its recorded traces (one per sampling period,
/// in `periods_ms` order). This is the single mining code path shared by
/// the live [`run_case1`] and store-replayed re-mining, which is what
/// makes re-ranking a stored corpus bit-identical to the live run.
///
/// # Errors
///
/// Propagates trace extraction and pipeline errors.
pub fn mine_case1(config: &Case1Config, traces: &[Trace]) -> Result<CaseResult, Box<dyn Error>> {
    let mut all_samples = SampleSet::empty();
    let mut buggy: Vec<SampleIndex> = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    for (r, trace) in traces.iter().enumerate() {
        digests.push(trace.digest());
        let run_no = r as u32 + 1;
        let set = harvest_set(trace, irq::ADC, |seq, _| SampleIndex::RunSeq {
            run: run_no,
            seq,
        })?;
        for m in &set.meta {
            if contains_nested_int(trace, &m.interval, irq::ADC) {
                buggy.push(m.index);
            }
        }
        all_samples.append(&set);
    }
    let sample_count = all_samples.len();
    let report = config.detector.pipeline().rank_set(all_samples)?;
    Ok(CaseResult::new(
        report,
        sample_count,
        buggy,
        chain_digest(digests),
    ))
}

/// Runs case study I and ranks the ADC event-handling intervals.
///
/// Ground truth: an interval is a bug symptom iff another ADC interrupt
/// fired inside it (the data race's only trigger pattern); the UART data
/// oracle (actual packet pollution) is checked for agreement.
///
/// # Errors
///
/// Propagates VM faults, trace extraction and pipeline errors.
pub fn run_case1(config: &Case1Config) -> Result<CaseResult, Box<dyn Error>> {
    run_case1_traced(config).map(|(result, _)| result)
}

/// Like [`run_case1`], but also hands back the recorded traces (one per
/// sampling period) so callers can persist them to a trace store.
///
/// # Errors
///
/// Propagates VM faults, trace extraction and pipeline errors.
pub fn run_case1_traced(config: &Case1Config) -> Result<(CaseResult, Vec<Trace>), Box<dyn Error>> {
    let (traces, polluted_packets) = case1_emulate(config)?;
    let result = mine_case1(config, &traces)?;
    // Cross-check the two independent oracles: every polluted packet stems
    // from a nested-interrupt interval. (The trace oracle can flag one
    // extra interval at the horizon whose packet never got sent.)
    debug_assert!(
        result.buggy.len() >= polluted_packets,
        "oracles disagree: {} intervals vs {} polluted packets",
        result.buggy.len(),
        polluted_packets
    );
    Ok((result, traces))
}

// ---------------------------------------------------------------------
// Case study II: packet loss in multi-hop forwarding
// ---------------------------------------------------------------------

/// Configuration for case study II.
#[derive(Debug, Clone)]
pub struct Case2Config {
    /// Workload parameters.
    pub params: forwarder::ForwarderParams,
    /// Test duration in simulated seconds (paper: 20 s).
    pub run_seconds: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Detector plug-in.
    pub detector: DetectorKind,
    /// Use the fixed relay instead of the buggy one.
    pub use_fixed: bool,
    /// Independent per-packet radio loss probability on every link — the
    /// "common wireless losses" the paper says the bug hides among.
    pub link_loss: f64,
}

impl Default for Case2Config {
    fn default() -> Self {
        Case2Config {
            params: forwarder::ForwarderParams::default(),
            run_seconds: 20,
            seed: 4,
            detector: DetectorKind::OcSvm { nu: 0.05 },
            use_fixed: false,
            link_loss: 0.04,
        }
    }
}

/// Emulates case study II: a 3-node chain (sink, relay, source), returning
/// the traces in node-id order.
fn case2_emulate(config: &Case2Config) -> Result<Vec<Trace>, Box<dyn Error>> {
    let relay = if config.use_fixed {
        forwarder::relay_program_fixed()?
    } else {
        forwarder::relay_program_buggy()?
    };
    let link = netsim::LinkConfig {
        loss_prob: config.link_loss,
        ..netsim::LinkConfig::default()
    };
    let mut sim = netsim::NetSim::new(netsim::Topology::chain(3, link)?, config.seed);
    sim.add_node(
        forwarder::sink_program()?,
        forwarder::node_config(forwarder::nodes::SINK, config.seed),
    )?;
    sim.add_node(
        relay.clone(),
        forwarder::node_config(forwarder::nodes::RELAY, config.seed + 1),
    )?;
    sim.add_node(
        forwarder::source_program(&config.params)?,
        forwarder::node_config(forwarder::nodes::SOURCE, config.seed + 2),
    )?;
    let mut recorders = vec![
        Recorder::new(sim.node(0).program().len()),
        Recorder::new(relay.len()),
        Recorder::new(sim.node(2).program().len()),
    ];
    sim.run(config.run_seconds * CYCLES_PER_SECOND, &mut recorders)?;
    Ok(recorders.into_iter().map(Recorder::into_trace).collect())
}

/// Mines case study II from its recorded traces (sink, relay, source in
/// node-id order); shared by [`run_case2`] and store-replayed re-mining.
///
/// # Errors
///
/// Fails on a wrong trace count; propagates assembly, extraction and
/// pipeline errors.
pub fn mine_case2(config: &Case2Config, traces: &[Trace]) -> Result<CaseResult, Box<dyn Error>> {
    if traces.len() != 3 {
        return Err(format!("case II expects 3 node traces, got {}", traces.len()).into());
    }
    // Re-assemble the relay only to locate the ground-truth drop label;
    // assembly is deterministic, so the label matches the recorded run.
    let relay = if config.use_fixed {
        forwarder::relay_program_fixed()?
    } else {
        forwarder::relay_program_buggy()?
    };
    let drop_pc = relay.label("fwd_drop");
    let trace_digest = chain_digest(traces.iter().map(Trace::digest));
    let relay_trace = &traces[1];
    let set = harvest_set(relay_trace, irq::RX, |seq, _| SampleIndex::Seq(seq))?;
    let buggy: Vec<SampleIndex> = match drop_pc {
        Some(pc) => set
            .meta
            .iter()
            .zip(set.features.rows_iter())
            .filter(|(_, row)| row[pc as usize] > 0.0)
            .map(|(m, _)| m.index)
            .collect(),
        None => Vec::new(), // fixed relay has no drop branch to hit
    };
    let sample_count = set.len();
    let report = config.detector.pipeline().rank_set(set)?;
    Ok(CaseResult::new(report, sample_count, buggy, trace_digest))
}

/// Runs case study II and ranks the relay's packet-arrival intervals.
///
/// Ground truth: an interval is a bug symptom iff the relay executed its
/// active-drop branch during it (located by the `fwd_drop` label).
///
/// # Errors
///
/// Propagates simulation, extraction and pipeline errors.
pub fn run_case2(config: &Case2Config) -> Result<CaseResult, Box<dyn Error>> {
    run_case2_traced(config).map(|(result, _)| result)
}

/// Like [`run_case2`], but also hands back the three recorded node traces
/// for persistence.
///
/// # Errors
///
/// Propagates simulation, extraction and pipeline errors.
pub fn run_case2_traced(config: &Case2Config) -> Result<(CaseResult, Vec<Trace>), Box<dyn Error>> {
    let traces = case2_emulate(config)?;
    let result = mine_case2(config, &traces)?;
    Ok((result, traces))
}

// ---------------------------------------------------------------------
// Case study III: unhandled failure from two co-existing protocols
// ---------------------------------------------------------------------

/// Configuration for case study III.
#[derive(Debug, Clone)]
pub struct Case3Config {
    /// Workload parameters.
    pub params: ctp::CtpParams,
    /// Test duration in simulated seconds (paper: 15 s).
    pub run_seconds: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Detector plug-in.
    pub detector: DetectorKind,
    /// Use the fixed variant instead of the buggy one.
    pub use_fixed: bool,
}

impl Default for Case3Config {
    fn default() -> Self {
        Case3Config {
            params: ctp::CtpParams::default(),
            run_seconds: 15,
            seed: 3,
            detector: DetectorKind::OcSvm { nu: 0.1 },
            use_fixed: false,
        }
    }
}

/// Runs case study III and ranks the report-timer intervals of the four
/// source nodes (pooled, as in the paper's 95-sample table).
///
/// Ground truth: an interval is a bug symptom iff the CTP send-failure
/// branch executed during it (located by the `ctp_fail` label).
///
/// # Errors
///
/// Propagates simulation, extraction and pipeline errors.
pub fn run_case3(config: &Case3Config) -> Result<CaseResult, Box<dyn Error>> {
    run_case3_traced(config).map(|(result, _)| result)
}

/// Emulates case study III: all CTP nodes on the paper's topology,
/// returning one trace per node in id order.
fn case3_emulate(config: &Case3Config) -> Result<Vec<Trace>, Box<dyn Error>> {
    let program = if config.use_fixed {
        ctp::fixed(&config.params)?
    } else {
        ctp::buggy(&config.params)?
    };
    let mut sim = netsim::NetSim::new(ctp::topology()?, config.seed);
    for id in 0..ctp::NODE_COUNT {
        sim.add_node(program.clone(), ctp::node_config(id, config.seed))?;
    }
    let mut recorders: Vec<Recorder> = (0..ctp::NODE_COUNT)
        .map(|_| Recorder::new(program.len()))
        .collect();
    sim.run(config.run_seconds * CYCLES_PER_SECOND, &mut recorders)?;
    Ok(recorders.into_iter().map(Recorder::into_trace).collect())
}

/// Mines case study III from its recorded traces (one per node, in node-id
/// order); shared by [`run_case3`] and store-replayed re-mining.
///
/// # Errors
///
/// Fails on a wrong trace count; propagates assembly, extraction and
/// pipeline errors.
pub fn mine_case3(config: &Case3Config, traces: &[Trace]) -> Result<CaseResult, Box<dyn Error>> {
    if traces.len() != ctp::NODE_COUNT as usize {
        return Err(format!(
            "case III expects {} node traces, got {}",
            ctp::NODE_COUNT,
            traces.len()
        )
        .into());
    }
    // Re-assemble only to locate the ground-truth failure label;
    // assembly is deterministic, so the label matches the recorded run.
    let program = if config.use_fixed {
        ctp::fixed(&config.params)?
    } else {
        ctp::buggy(&config.params)?
    };
    let fail_pc = program
        .label("ctp_fail")
        .ok_or("ctp program lacks the ctp_fail label")? as usize;
    let trace_digest = chain_digest(traces.iter().map(Trace::digest));
    let mut all_samples = SampleSet::empty();
    let mut buggy = Vec::new();
    for (id, trace) in traces.iter().enumerate() {
        let node = id as u16;
        if !ctp::SOURCES.contains(&node) {
            continue;
        }
        let set = harvest_set(trace, irq::TIMER0, |seq, _| SampleIndex::NodeSeq {
            node,
            seq,
        })?;
        for (m, row) in set.meta.iter().zip(set.features.rows_iter()) {
            if row[fail_pc] > 0.0 {
                buggy.push(m.index);
            }
        }
        all_samples.append(&set);
    }
    let sample_count = all_samples.len();
    let report = config.detector.pipeline().rank_set(all_samples)?;
    Ok(CaseResult::new(report, sample_count, buggy, trace_digest))
}

/// Like [`run_case3`], but also hands back every node's recorded trace
/// for persistence.
///
/// # Errors
///
/// Propagates simulation, extraction and pipeline errors.
pub fn run_case3_traced(config: &Case3Config) -> Result<(CaseResult, Vec<Trace>), Box<dyn Error>> {
    let traces = case3_emulate(config)?;
    let result = mine_case3(config, &traces)?;
    Ok((result, traces))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_kinds_build_pipelines() {
        for kind in DetectorKind::all(0.1) {
            let p = kind.pipeline();
            assert_eq!(p.detector_name(), kind.name());
        }
    }

    #[test]
    fn case_result_rank_bookkeeping() {
        use sentomist_core::{RankedSample, Report};
        use sentomist_trace::EventInterval;
        let iv = EventInterval {
            irq: 0,
            start_index: 0,
            end_index: 1,
            last_run_index: None,
            start_cycle: 0,
            end_cycle: 1,
            task_count: 0,
        };
        let report = Report {
            detector: "test".into(),
            ranking: (1..=5)
                .map(|i| RankedSample {
                    index: SampleIndex::Seq(i),
                    score: i as f64,
                    interval: iv,
                })
                .collect(),
        };
        let result = CaseResult::new(report, 5, vec![SampleIndex::Seq(2), SampleIndex::Seq(1)], 0);
        assert_eq!(result.buggy_ranks, vec![1, 2]);
        assert!(result.all_buggy_in_top(2));
        assert!(!result.all_buggy_in_top(1));
        assert_eq!(result.worst_buggy_rank(), Some(2));
    }
}

// ---------------------------------------------------------------------
// Emulator-fidelity study (§VI-E: why Avrora, not TOSSIM)
// ---------------------------------------------------------------------

/// Outcome of running case study I's workload under one timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FidelityOutcome {
    /// Packets whose content was polluted by the race.
    pub polluted_packets: usize,
    /// ADC intervals containing a nested ADC interrupt (the symptom).
    pub symptom_intervals: usize,
    /// Total ADC intervals observed.
    pub intervals: usize,
    /// Whether any handler nesting occurred at all in the trace.
    pub any_preemption: bool,
}

/// Runs the case-I workload (one testing run) under the given timing
/// model. Under [`tinyvm::TimingModel::CycleAccurate`] (the Avrora-like
/// default) the data race manifests; under
/// [`tinyvm::TimingModel::ZeroCostEvents`] (the TOSSIM-style sequential
/// abstraction) event executions never overlap, so neither the symptom
/// nor the pollution can appear — reproducing the paper's argument for a
/// cycle-accurate emulator.
///
/// # Errors
///
/// Propagates VM faults and extraction errors.
pub fn run_fidelity(
    timing: tinyvm::TimingModel,
    period_ms: u32,
    run_seconds: u64,
    seed: u64,
) -> Result<FidelityOutcome, Box<dyn Error>> {
    let params = oscilloscope::OscilloscopeParams::with_period_ms(period_ms);
    let program = oscilloscope::buggy(&params)?;
    let mut node = Node::new(
        program.clone(),
        NodeConfig {
            seed,
            timing,
            ..NodeConfig::default()
        },
    );
    let mut recorder = Recorder::new(program.len());
    node.run(run_seconds * CYCLES_PER_SECOND, &mut recorder)?;
    let polluted = oscilloscope::parse_uart(node.uart())
        .iter()
        .filter(|p| p.polluted())
        .count();
    let trace = recorder.into_trace();
    let set = harvest_set(&trace, irq::ADC, |seq, _| SampleIndex::Seq(seq))?;
    let symptom_intervals = set
        .meta
        .iter()
        .filter(|m| contains_nested_int(&trace, &m.interval, irq::ADC))
        .count();
    let mut depth = 0usize;
    let mut any_preemption = false;
    for e in &trace.events {
        match e.item {
            LifecycleItem::Int(_) => {
                depth += 1;
                if depth > 1 {
                    any_preemption = true;
                }
            }
            LifecycleItem::Reti => depth -= 1,
            _ => {}
        }
    }
    Ok(FidelityOutcome {
        polluted_packets: polluted,
        symptom_intervals,
        intervals: set.len(),
        any_preemption,
    })
}

// ---------------------------------------------------------------------
// Inspection-effort study: the paper's headline claim, quantified
// ---------------------------------------------------------------------

/// How much manual inspection a tester spends before reaching the bug
/// symptoms, under Sentomist's ranking versus the baselines the paper
/// argues against (chronological brute-force scanning; random sampling).
#[derive(Debug, Clone, PartialEq)]
pub struct EffortSummary {
    /// Total intervals available for inspection.
    pub samples: usize,
    /// True bug-symptom intervals.
    pub positives: usize,
    /// Inspections until the *first* symptom, following the ranking.
    pub ranked_first: Option<usize>,
    /// Inspections until *all* symptoms, following the ranking.
    pub ranked_all: Option<usize>,
    /// Inspections until the first symptom when scanning chronologically
    /// (the brute-force trace inspection the paper contrasts against).
    pub chrono_first: Option<usize>,
    /// Expected inspections until the first symptom under uniformly
    /// random inspection order.
    pub random_expected_first: f64,
    /// ROC-AUC of the suspicion ranking against ground truth.
    pub auc: f64,
    /// Average precision of the ranking against ground truth.
    pub avg_precision: f64,
}

fn chronology_key(ix: &SampleIndex) -> (u32, u32) {
    match *ix {
        SampleIndex::RunSeq { run, seq } => (run, seq),
        SampleIndex::Seq(s) => (0, s),
        SampleIndex::NodeSeq { node, seq } => (node as u32, seq),
    }
}

/// Computes the inspection-effort summary of a case-study outcome.
pub fn effort_summary(result: &CaseResult) -> EffortSummary {
    use mlcore::evaluation as ev;
    let relevant = |ix: &SampleIndex| result.buggy.contains(ix);
    let ranked: Vec<SampleIndex> = result.report.ranking.iter().map(|r| r.index).collect();
    let mut chrono = ranked.clone();
    chrono.sort_by_key(chronology_key);
    EffortSummary {
        samples: result.sample_count,
        positives: result.buggy.len(),
        ranked_first: ev::inspections_until_first(&ranked, relevant),
        ranked_all: ev::inspections_until_all(&ranked, relevant),
        chrono_first: ev::inspections_until_first(&chrono, relevant),
        random_expected_first: ev::expected_random_inspections(
            result.sample_count,
            result.buggy.len(),
        ),
        auc: ev::roc_auc(&ranked, relevant),
        avg_precision: ev::average_precision(&ranked, relevant),
    }
}

// ---------------------------------------------------------------------
// Trigger campaign: how hard is the bug to hit, and does mining find it
// whenever it is hit? (paper §IV: "the bug is not easy to be triggered
// unless we generate a variety of random interleaving scenarios")
// ---------------------------------------------------------------------

/// Builds a reusable per-seed campaign job for the case-I trigger
/// experiment: one `run_seconds`-second run of the buggy Oscilloscope at
/// sampling period `period_ms`, mined in isolation with an OC-SVM(ν).
///
/// The program is assembled once, up front; the returned closure only
/// shares that immutable program, so `run_campaign` can drive it from any
/// number of worker threads.
///
/// # Errors
///
/// Fails if the Oscilloscope program does not assemble.
pub fn trigger_job(
    period_ms: u32,
    run_seconds: u64,
    nu: f64,
) -> Result<impl Fn(u64) -> Result<RunOutcome, String> + Send + Sync, Box<dyn Error>> {
    let job = trigger_job_traced(period_ms, run_seconds, nu)?;
    Ok(move |seed: u64| job(seed).map(|(outcome, _)| outcome))
}

/// Like [`trigger_job`], but the returned closure also hands back the
/// recorded trace so a campaign can persist it to a trace store.
///
/// # Errors
///
/// Fails if the Oscilloscope program does not assemble.
#[allow(clippy::type_complexity)]
pub fn trigger_job_traced(
    period_ms: u32,
    run_seconds: u64,
    nu: f64,
) -> Result<impl Fn(u64) -> Result<(RunOutcome, Vec<Trace>), String> + Send + Sync, Box<dyn Error>>
{
    let params = oscilloscope::OscilloscopeParams::with_period_ms(period_ms);
    let program = oscilloscope::buggy(&params)?;
    Ok(move |seed: u64| {
        let mut node = Node::new(
            program.clone(),
            NodeConfig {
                seed,
                ..NodeConfig::default()
            },
        );
        let mut recorder = Recorder::new(program.len());
        node.run(run_seconds * CYCLES_PER_SECOND, &mut recorder)
            .map_err(|e| e.to_string())?;
        let trace = recorder.into_trace();
        let outcome = mine_trigger_trace(seed, &trace, nu)?;
        Ok((outcome, vec![trace]))
    })
}

/// Cycles emulated between supervisor checks in
/// [`trigger_job_traced_ctx`]. Small enough that a watchdog cancellation
/// or cycle-budget exhaustion is honored promptly, large enough that the
/// checks cost nothing against real emulation work.
const SUPERVISE_SLICE_CYCLES: u64 = 1_000_000;

/// Like [`trigger_job_traced`], but cooperative with the supervised
/// runner: the emulation advances in [`SUPERVISE_SLICE_CYCLES`] slices and
/// checks the [`RunContext`] between slices, so a watchdog cancellation
/// stops a runaway run mid-flight and an optional cycle budget caps how
/// long the run may emulate. Slicing does not change the machine state —
/// the recorded trace is bit-identical to a single `Node::run` call.
///
/// Machine faults and mining failures are deterministic for a given seed,
/// so they surface as [`RunFailure::Fatal`] (retrying cannot help);
/// budget/cancellation stops are [`RunFailure::TimedOut`].
///
/// # Errors
///
/// Fails if the Oscilloscope program does not assemble.
#[allow(clippy::type_complexity)]
pub fn trigger_job_traced_ctx(
    period_ms: u32,
    run_seconds: u64,
    nu: f64,
) -> Result<
    impl Fn(&RunContext) -> Result<(RunOutcome, Vec<Trace>), RunFailure> + Send + Sync,
    Box<dyn Error>,
> {
    let params = oscilloscope::OscilloscopeParams::with_period_ms(period_ms);
    let program = oscilloscope::buggy(&params)?;
    Ok(move |ctx: &RunContext| {
        let seed = ctx.seed();
        let limit = run_seconds * CYCLES_PER_SECOND;
        let cap = ctx.cycle_budget().unwrap_or(u64::MAX).min(limit);
        let mut node = Node::new(
            program.clone(),
            NodeConfig {
                seed,
                ..NodeConfig::default()
            },
        );
        let mut recorder = Recorder::new(program.len());
        loop {
            if ctx.cancelled() {
                return Err(RunFailure::TimedOut(format!(
                    "cancelled by the watchdog at cycle {}",
                    node.cycle()
                )));
            }
            let next = node.cycle().saturating_add(SUPERVISE_SLICE_CYCLES).min(cap);
            node.advance(next, &mut recorder)
                .map_err(|e| RunFailure::Fatal(e.to_string()))?;
            if node.cycle() >= cap || node.halted() {
                break;
            }
        }
        if cap < limit && !node.halted() {
            return Err(RunFailure::TimedOut(format!(
                "cycle budget {cap} exhausted before the {limit}-cycle run finished"
            )));
        }
        node.finish(&mut recorder);
        let trace = recorder.into_trace();
        let outcome = mine_trigger_trace(seed, &trace, nu).map_err(RunFailure::Fatal)?;
        Ok((outcome, vec![trace]))
    })
}

/// Mines one recorded trigger-run trace into its campaign outcome — the
/// single code path behind both the live [`trigger_job`] and re-mining a
/// stored corpus, which is what makes store-based re-ranking bit-identical
/// to the live campaign.
///
/// # Errors
///
/// Extraction and pipeline failures are reported as strings, matching the
/// campaign job contract.
pub fn mine_trigger_trace(seed: u64, trace: &Trace, nu: f64) -> Result<RunOutcome, String> {
    let trace_digest = trace.digest();
    let set =
        harvest_set(trace, irq::ADC, |seq, _| SampleIndex::Seq(seq)).map_err(|e| e.to_string())?;
    let buggy: Vec<SampleIndex> = set
        .meta
        .iter()
        .filter(|m| contains_nested_int(trace, &m.interval, irq::ADC))
        .map(|m| m.index)
        .collect();
    let sample_count = set.len();
    let mut buggy_ranks: Vec<usize> = if buggy.is_empty() {
        Vec::new()
    } else {
        let report = Pipeline::default_ocsvm(nu)
            .rank_set(set)
            .map_err(|e| e.to_string())?;
        buggy.iter().filter_map(|&b| report.rank_of(b)).collect()
    };
    buggy_ranks.sort_unstable();
    Ok(RunOutcome {
        seed,
        samples: sample_count,
        symptoms: buggy.len(),
        buggy_ranks,
        verdict: if buggy.is_empty() {
            Verdict::Clean
        } else {
            Verdict::Triggered
        },
        trace_digest: format!("{trace_digest:016x}"),
        wall_time_ms: 0,
    })
}

/// Runs `runs` independent case-I testing runs (sampling period
/// `period_ms`, 10 s each, seeds `base_seed..base_seed + runs`) and mines
/// each in isolation — measuring both the per-run trigger probability of
/// the race and the per-run mining success. Work is spread over
/// `options.threads` workers; the result is deterministic regardless of
/// the thread count.
///
/// # Errors
///
/// Fails if the Oscilloscope program does not assemble; per-seed VM,
/// extraction and pipeline failures land in the result's `errors` list.
pub fn run_trigger_campaign(
    period_ms: u32,
    runs: u64,
    base_seed: u64,
    nu: f64,
    options: CampaignOptions,
) -> Result<CampaignResult, Box<dyn Error>> {
    let job = trigger_job(period_ms, 10, nu)?;
    let seeds: Vec<u64> = (0..runs).map(|i| base_seed + i).collect();
    Ok(run_campaign(&seeds, options, job))
}

/// Wraps case study I as a per-seed campaign job: each seed reruns the
/// whole case (every sampling period) with the configuration's seed
/// replaced.
pub fn case1_job(config: Case1Config) -> impl Fn(u64) -> Result<RunOutcome, String> + Send + Sync {
    move |seed| {
        let mut c = config.clone();
        c.seed = seed;
        run_case1(&c)
            .map(|r| r.to_outcome(seed))
            .map_err(|e| e.to_string())
    }
}

/// Wraps case study II (CTP in-network aggregation) as a per-seed
/// campaign job.
pub fn case2_job(config: Case2Config) -> impl Fn(u64) -> Result<RunOutcome, String> + Send + Sync {
    move |seed| {
        let mut c = config.clone();
        c.seed = seed;
        run_case2(&c)
            .map(|r| r.to_outcome(seed))
            .map_err(|e| e.to_string())
    }
}

/// Wraps case study III (packet forwarder overflow) as a per-seed
/// campaign job.
pub fn case3_job(config: Case3Config) -> impl Fn(u64) -> Result<RunOutcome, String> + Send + Sync {
    move |seed| {
        let mut c = config.clone();
        c.seed = seed;
        run_case3(&c)
            .map(|r| r.to_outcome(seed))
            .map_err(|e| e.to_string())
    }
}

/// Trace-returning variant of [`case1_job`], for campaigns that persist
/// their runs to a trace store.
pub fn case1_job_traced(
    config: Case1Config,
) -> impl Fn(u64) -> Result<(RunOutcome, Vec<Trace>), String> + Send + Sync {
    move |seed| {
        let mut c = config.clone();
        c.seed = seed;
        run_case1_traced(&c)
            .map(|(r, traces)| (r.to_outcome(seed), traces))
            .map_err(|e| e.to_string())
    }
}

/// Trace-returning variant of [`case2_job`].
pub fn case2_job_traced(
    config: Case2Config,
) -> impl Fn(u64) -> Result<(RunOutcome, Vec<Trace>), String> + Send + Sync {
    move |seed| {
        let mut c = config.clone();
        c.seed = seed;
        run_case2_traced(&c)
            .map(|(r, traces)| (r.to_outcome(seed), traces))
            .map_err(|e| e.to_string())
    }
}

/// Trace-returning variant of [`case3_job`].
pub fn case3_job_traced(
    config: Case3Config,
) -> impl Fn(u64) -> Result<(RunOutcome, Vec<Trace>), String> + Send + Sync {
    move |seed| {
        let mut c = config.clone();
        c.seed = seed;
        run_case3_traced(&c)
            .map(|(r, traces)| (r.to_outcome(seed), traces))
            .map_err(|e| e.to_string())
    }
}

// ---------------------------------------------------------------------
// Case study I, multi-node form: several sensors + a sink (the paper's
// literal setup: "several sensor nodes monitor temperature and report
// the readings to a data sink in a single hop manner")
// ---------------------------------------------------------------------

/// Configuration for the multi-node variant of case study I.
#[derive(Debug, Clone)]
pub struct Case1MultiConfig {
    /// Number of sensing nodes (the sink is node 0 in addition).
    pub sensors: u16,
    /// Sampling period D in milliseconds (one value; samples are pooled
    /// across nodes and indexed `[node, seq]`).
    pub period_ms: u32,
    /// Run duration in simulated seconds.
    pub run_seconds: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Detector plug-in.
    pub detector: DetectorKind,
}

impl Default for Case1MultiConfig {
    fn default() -> Self {
        Case1MultiConfig {
            sensors: 4,
            period_ms: 20,
            run_seconds: 10,
            seed: 42,
            detector: DetectorKind::OcSvm { nu: 0.05 },
        }
    }
}

/// Runs the multi-node single-hop variant of case study I: `sensors`
/// nodes run the buggy Oscilloscope program and broadcast packets a sink
/// overhears; ADC intervals are pooled across the sensing nodes.
///
/// # Errors
///
/// Propagates simulation, extraction and pipeline errors.
pub fn run_case1_multinode(config: &Case1MultiConfig) -> Result<CaseResult, Box<dyn Error>> {
    let params = oscilloscope::OscilloscopeParams::with_period_ms(config.period_ms);
    let sensor_program = oscilloscope::buggy(&params)?;
    let sink_program = crate::forwarder::sink_program()?;
    let node_count = config.sensors + 1;
    let topo = netsim::Topology::star(node_count, netsim::LinkConfig::default())?;
    let mut sim = netsim::NetSim::new(topo, config.seed);
    sim.add_node(
        sink_program.clone(),
        NodeConfig {
            node_id: 0,
            seed: config.seed,
            ..NodeConfig::default()
        },
    )?;
    for id in 1..node_count {
        sim.add_node(
            sensor_program.clone(),
            NodeConfig {
                node_id: id,
                seed: config.seed.wrapping_add(id as u64 * 101),
                ..NodeConfig::default()
            },
        )?;
    }
    let mut recorders: Vec<Recorder> = (0..node_count)
        .map(|id| {
            if id == 0 {
                Recorder::new(sink_program.len())
            } else {
                Recorder::new(sensor_program.len())
            }
        })
        .collect();
    sim.run(config.run_seconds * CYCLES_PER_SECOND, &mut recorders)?;

    let mut all_samples = SampleSet::empty();
    let mut buggy = Vec::new();
    let traces: Vec<Trace> = recorders.into_iter().map(Recorder::into_trace).collect();
    let trace_digest = chain_digest(traces.iter().map(Trace::digest));
    for (id, trace) in traces.iter().enumerate().skip(1) {
        let node = id as u16;
        let set = harvest_set(trace, irq::ADC, |seq, _| SampleIndex::NodeSeq { node, seq })?;
        for m in &set.meta {
            if contains_nested_int(trace, &m.interval, irq::ADC) {
                buggy.push(m.index);
            }
        }
        all_samples.append(&set);
    }
    let sample_count = all_samples.len();
    let report = config.detector.pipeline().rank_set(all_samples)?;
    Ok(CaseResult::new(report, sample_count, buggy, trace_digest))
}
