//! Case study II substrate: multi-hop packet forwarding
//! (`BlinkToRadio`-style) with the busy-flag active-drop bug.
//!
//! A source node sends sequence-numbered packets to a relay with
//! randomized gaps (occasionally back-to-back); the relay's packet-arrival
//! event procedure forwards each packet to the sink. The bug, as in the
//! paper: instead of queueing while a previous transmission (RTS/CTS/data/
//! ACK exchange) is still in flight, the relay **actively drops** the
//! packet when its software busy flag is set. The drop is silent and looks
//! exactly like an ordinary wireless loss from the outside.
//!
//! The *fixed* relay holds one pending packet and transmits it from the
//! send-done handler, closing the loss window.

use std::sync::Arc;
use tinyvm::asm::AsmError;
use tinyvm::devices::{NodeConfig, RadioConfig};
use tinyvm::Program;

/// Node ids of the three-node chain.
pub mod nodes {
    /// The data sink.
    pub const SINK: u16 = 0;
    /// The intermediate (analyzed) relay.
    pub const RELAY: u16 = 1;
    /// The traffic source.
    pub const SOURCE: u16 = 2;
}

/// Workload parameters for the forwarding experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwarderParams {
    /// Base inter-send gap in timer ticks (~0.256 ms each).
    pub gap_base_ticks: u16,
    /// Mask for the uniform random extra gap (`rand & mask` ticks).
    pub gap_jitter_mask: u16,
    /// A back-to-back (quick) gap occurs when `rand & burst_mask == 0`.
    pub burst_mask: u16,
    /// The quick gap, in ticks (must undercut the relay's TX duration).
    pub quick_gap_ticks: u16,
}

impl Default for ForwarderParams {
    fn default() -> Self {
        ForwarderParams {
            gap_base_ticks: 250,  // 64 ms
            gap_jitter_mask: 255, // + 0..65 ms
            burst_mask: 63,       // ~1/64 of gaps are quick
            quick_gap_ticks: 24,  // 6.1 ms
        }
    }
}

/// Radio timing of the source: fast enough that a quick gap does not
/// overrun its own transmitter.
pub fn source_radio() -> RadioConfig {
    RadioConfig {
        overhead_cycles: 1_000,
        per_word_cycles: 200,
        handshake_cycles: 3_000,
    }
}

/// Radio timing of the relay: the full CSMA control exchange makes its
/// forward transmissions long enough for quick arrivals to find the busy
/// flag set.
pub fn relay_radio() -> RadioConfig {
    RadioConfig {
        overhead_cycles: 2_000,
        per_word_cycles: 500,
        handshake_cycles: 8_000,
    }
}

/// Node configuration for each chain member, with per-role radio timing.
pub fn node_config(id: u16, seed: u64) -> NodeConfig {
    let radio = match id {
        x if x == nodes::SOURCE => source_radio(),
        x if x == nodes::RELAY => relay_radio(),
        _ => RadioConfig::default(),
    };
    NodeConfig {
        node_id: id,
        seed,
        radio,
        ..NodeConfig::default()
    }
}

/// Assembles the traffic source.
///
/// # Errors
///
/// Returns [`AsmError`] only if the template is corrupted.
pub fn source_program(params: &ForwarderParams) -> Result<Arc<Program>, AsmError> {
    let ForwarderParams {
        gap_base_ticks,
        gap_jitter_mask,
        burst_mask,
        quick_gap_ticks,
    } = *params;
    let relay = nodes::RELAY;
    let src = format!(
        "\
; Traffic source: randomized inter-send gaps, occasionally back-to-back.
.data seq 1
.handler TIMER0 on_gap
main:
 ldi r1, {gap_base_ticks}
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
on_gap:
 lda r1, seq
 out RADIO_TX_PUSH, r1
 addi r1, 1
 sta seq, r1
 ldi r2, {relay}
 out RADIO_SEND, r2
 in r3, RAND
 ldi r4, {burst_mask}
 and r3, r4
 cmpi r3, 0
 breq quick_gap
 in r3, RAND
 ldi r4, {gap_jitter_mask}
 and r3, r4
 addi r3, {gap_base_ticks}
 jmp arm_timer
quick_gap:
 ldi r3, {quick_gap_ticks}
arm_timer:
 out TIMER0_PERIOD, r3
 ldi r4, 1
 out TIMER0_CTRL, r4
 reti
"
    );
    tinyvm::assemble(&src).map(Arc::new)
}

fn relay_source(buggy: bool) -> String {
    let sink = nodes::SINK;
    if buggy {
        format!(
            "\
; Relay with the busy-flag active-drop bug (paper case study II).
.data buf 1
.data busy 1
.data drops 1
.task fwd_task
.handler RX on_rx
.handler TXDONE on_txdone
main:
 ret
on_rx:
 in r1, RADIO_RX_POP
 sta buf, r1
 post fwd_task
 reti
fwd_task:
 lda r1, busy
 cmpi r1, 0
 brne fwd_drop
 lda r1, buf
 out RADIO_TX_PUSH, r1
 ldi r2, {sink}
 out RADIO_SEND, r2
 ldi r1, 1
 sta busy, r1
 ret
fwd_drop:
; BUG: the protocol should queue the packet until the busy flag clears;
; instead it actively drops it (AMSend.send rejected, packet gone).
 lda r2, drops
 addi r2, 1
 sta drops, r2
 ret
on_txdone:
 ldi r1, 0
 sta busy, r1
 reti
"
        )
    } else {
        format!(
            "\
; Fixed relay: one-deep pending buffer drained from sendDone.
.data buf 1
.data busy 1
.data pending 1
.data pending_val 1
.data drops 1
.task fwd_task
.handler RX on_rx
.handler TXDONE on_txdone
main:
 ret
on_rx:
 in r1, RADIO_RX_POP
 sta buf, r1
 post fwd_task
 reti
fwd_task:
 lda r1, busy
 cmpi r1, 0
 brne fwd_defer
 lda r1, buf
 out RADIO_TX_PUSH, r1
 ldi r2, {sink}
 out RADIO_SEND, r2
 ldi r1, 1
 sta busy, r1
 ret
fwd_defer:
 lda r2, buf
 sta pending_val, r2
 ldi r2, 1
 sta pending, r2
 ret
on_txdone:
 lda r1, pending
 cmpi r1, 0
 breq txd_idle
 ldi r1, 0
 sta pending, r1
 lda r2, pending_val
 out RADIO_TX_PUSH, r2
 ldi r3, {sink}
 out RADIO_SEND, r3
 reti
txd_idle:
 ldi r1, 0
 sta busy, r1
 reti
"
        )
    }
}

/// Assembles the buggy relay.
///
/// # Errors
///
/// Returns [`AsmError`] only if the template is corrupted.
pub fn relay_program_buggy() -> Result<Arc<Program>, AsmError> {
    tinyvm::assemble(&relay_source(true)).map(Arc::new)
}

/// Assembles the fixed relay (defers instead of dropping).
///
/// # Errors
///
/// Returns [`AsmError`] only if the template is corrupted.
pub fn relay_program_fixed() -> Result<Arc<Program>, AsmError> {
    tinyvm::assemble(&relay_source(false)).map(Arc::new)
}

/// Assembles the sink, which logs every received word to its UART.
///
/// # Errors
///
/// Returns [`AsmError`] only if the template is corrupted.
pub fn sink_program() -> Result<Arc<Program>, AsmError> {
    tinyvm::assemble(
        "\
.handler RX on_rx
main:
 ret
on_rx:
 in r1, RADIO_RX_POP
 out UART_OUT, r1
 reti
",
    )
    .map(Arc::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkConfig, NetSim, Topology};
    use tinyvm::NullSink;

    fn chain() -> Topology {
        Topology::chain(3, LinkConfig::default()).unwrap()
    }

    fn run_chain(relay: Arc<Program>, seed: u64, cycles: u64) -> NetSim {
        let mut sim = NetSim::new(chain(), seed);
        sim.add_node(sink_program().unwrap(), node_config(nodes::SINK, seed))
            .unwrap();
        sim.add_node(relay, node_config(nodes::RELAY, seed + 1))
            .unwrap();
        sim.add_node(
            source_program(&ForwarderParams::default()).unwrap(),
            node_config(nodes::SOURCE, seed + 2),
        )
        .unwrap();
        let mut sinks = vec![NullSink, NullSink, NullSink];
        sim.run(cycles, &mut sinks).unwrap();
        sim
    }

    fn drops_of(sim: &NetSim) -> u16 {
        let node = sim.node(nodes::RELAY);
        let addr = node.program().label("drops").unwrap();
        node.mem()[addr as usize]
    }

    #[test]
    fn programs_assemble() {
        source_program(&ForwarderParams::default()).unwrap();
        relay_program_buggy().unwrap();
        relay_program_fixed().unwrap();
        sink_program().unwrap();
    }

    #[test]
    fn buggy_relay_drops_on_bursts() {
        let mut total_drops = 0u32;
        for seed in 0..3 {
            let sim = run_chain(relay_program_buggy().unwrap(), seed, 20_000_000);
            total_drops += u32::from(drops_of(&sim));
        }
        assert!(total_drops > 0, "the drop bug never triggered");
        assert!(total_drops < 60, "drops should be rare, got {total_drops}");
    }

    #[test]
    fn fixed_relay_forwards_everything() {
        let sim = run_chain(relay_program_fixed().unwrap(), 5, 20_000_000);
        assert_eq!(drops_of(&sim), 0);
        // Every packet the relay heard eventually reaches the sink
        // (except boundary stragglers at the horizon).
        let relay_heard = sim
            .deliveries()
            .iter()
            .filter(|d| d.to == nodes::RELAY && !d.dropped)
            .count();
        let sink_heard = sim.node(nodes::SINK).uart().len();
        assert!(
            sink_heard + 3 >= relay_heard,
            "sink got {sink_heard}, relay heard {relay_heard}"
        );
    }

    #[test]
    fn buggy_relay_loses_exactly_the_dropped_seqs() {
        let sim = run_chain(relay_program_buggy().unwrap(), 9, 20_000_000);
        let drops = drops_of(&sim) as usize;
        let relay_heard = sim
            .deliveries()
            .iter()
            .filter(|d| d.to == nodes::RELAY && !d.dropped)
            .count();
        let sink_heard = sim.node(nodes::SINK).uart().len();
        // heard = forwarded + dropped (± horizon stragglers).
        assert!(
            sink_heard + drops <= relay_heard && sink_heard + drops + 3 >= relay_heard,
            "heard {relay_heard}, forwarded {sink_heard}, dropped {drops}"
        );
    }

    #[test]
    fn traffic_volume_matches_paper_scale() {
        // ~195 packet arrivals at the relay in 20 simulated seconds.
        let sim = run_chain(relay_program_buggy().unwrap(), 1, 20_000_000);
        let relay_heard = sim
            .deliveries()
            .iter()
            .filter(|d| d.to == nodes::RELAY && !d.dropped)
            .count();
        assert!(
            (140..280).contains(&relay_heard),
            "got {relay_heard} arrivals"
        );
    }
}
