//! Execution contexts and context reachability.
//!
//! A `TinyVM` program runs in one of three kinds of context: `main`, a
//! posted task body, or an interrupt handler. Main and tasks are *base*
//! contexts — the scheduler runs at most one of them at a time, to
//! completion — while a handler for line *n* can preempt any base context
//! and any handler of a *different* line (handlers run with interrupts
//! enabled; only the in-service line is masked). Those are the only
//! concurrent pairs, so every interleaving warning involves at least one
//! interrupt context.

use crate::cfg::Cfg;
use tinyvm::Program;

/// Human-readable names of the interrupt lines, by number.
pub fn irq_name(n: u8) -> &'static str {
    match n {
        0 => "TIMER0",
        1 => "TIMER1",
        2 => "ADC",
        3 => "RX",
        4 => "TXDONE",
        _ => "IRQ?",
    }
}

/// One execution context of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Context {
    /// The `main` routine (runs once, then the scheduler).
    Main,
    /// The body of task `program.tasks[i]`.
    Task(usize),
    /// The handler vectored to interrupt line `n`.
    Irq(u8),
}

impl Context {
    /// Whether this is an interrupt context.
    pub fn is_irq(&self) -> bool {
        matches!(self, Context::Irq(_))
    }

    /// Whether this is a task context.
    pub fn is_task(&self) -> bool {
        matches!(self, Context::Task(_))
    }

    /// Whether two *distinct* contexts can interleave at instruction
    /// granularity: at least one must be an interrupt, and two handlers
    /// of the same line never nest.
    pub fn concurrent_with(&self, other: &Context) -> bool {
        match (self, other) {
            (Context::Irq(a), Context::Irq(b)) => a != b,
            (Context::Irq(_), _) | (_, Context::Irq(_)) => true,
            _ => false,
        }
    }

    /// Whether this context can preempt `other` mid-instruction-sequence
    /// (base contexts never preempt anything).
    pub fn preempts(&self, other: &Context) -> bool {
        match self {
            Context::Irq(n) => *other != Context::Irq(*n),
            _ => false,
        }
    }

    /// Display name, e.g. `main`, `task send_task`, `irq ADC`.
    pub fn describe(&self, program: &Program) -> String {
        match self {
            Context::Main => "main".to_string(),
            Context::Task(i) => format!("task {}", program.tasks[*i].name),
            Context::Irq(n) => format!("irq {}", irq_name(*n)),
        }
    }
}

/// All contexts of a program with their entry points and per-context
/// block reachability.
#[derive(Debug, Clone)]
pub struct ContextMap {
    /// Contexts in deterministic order: main, tasks in declaration
    /// order, then vectored interrupt lines in line order.
    pub contexts: Vec<(Context, u16)>,
    /// `reach[c][b]`: block `b` is reachable from context `c`'s entry.
    pub reach: Vec<Vec<bool>>,
}

impl ContextMap {
    /// Enumerates contexts and computes each one's reachable block set.
    pub fn build(program: &Program, cfg: &Cfg) -> ContextMap {
        let mut contexts: Vec<(Context, u16)> = vec![(Context::Main, program.entry)];
        for (i, task) in program.tasks.iter().enumerate() {
            contexts.push((Context::Task(i), task.entry));
        }
        for (n, vector) in program.vectors.iter().enumerate() {
            if let Some(entry) = vector {
                contexts.push((Context::Irq(n as u8), *entry));
            }
        }
        let reach = contexts
            .iter()
            .map(|&(_, entry)| cfg.reachable_from(entry))
            .collect();
        ContextMap { contexts, reach }
    }

    /// Indices of contexts in which block `b` is reachable.
    pub fn owners_of(&self, b: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.contexts.len()).filter(move |&c| self.reach[c][b])
    }

    /// Whether block `b` is reachable from any context.
    pub fn reachable_anywhere(&self, b: usize) -> bool {
        self.reach.iter().any(|r| r[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_model() {
        let m = Context::Main;
        let t = Context::Task(0);
        let a = Context::Irq(2);
        let b = Context::Irq(3);
        assert!(!m.concurrent_with(&t));
        assert!(m.concurrent_with(&a));
        assert!(t.concurrent_with(&a));
        assert!(a.concurrent_with(&b));
        assert!(!a.concurrent_with(&Context::Irq(2)));
        assert!(a.preempts(&t));
        assert!(a.preempts(&b));
        assert!(!t.preempts(&a));
        assert!(!a.preempts(&Context::Irq(2)));
    }

    #[test]
    fn contexts_enumerated_with_reachability() {
        let p = tinyvm::assemble(
            "\
.handler TIMER0 h
.task t
main:
 ret
h:
 post t
 reti
t:
 nop
 ret
",
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        let map = ContextMap::build(&p, &cfg);
        assert_eq!(map.contexts.len(), 3);
        assert_eq!(map.contexts[0].0, Context::Main);
        assert_eq!(map.contexts[1].0, Context::Task(0));
        assert_eq!(map.contexts[2].0, Context::Irq(0));
        // The task body is not reachable from the handler (post is not a
        // control transfer).
        let task_entry_block = cfg.block_of(p.label("t").unwrap());
        assert!(map.reach[1][task_entry_block]);
        assert!(!map.reach[2][task_entry_block]);
        assert!(!map.reach[0][task_entry_block]);
    }
}
