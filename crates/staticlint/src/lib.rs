//! Static interleaving analysis for `TinyVM` programs.
//!
//! Sentomist's dynamic side mines emulation traces for symptom outliers;
//! this crate is the static counterpart. It decodes an assembled
//! [`tinyvm::Program`] into basic blocks ([`cfg`]), enumerates the
//! program's execution contexts and what each can reach ([`context`]),
//! abstractly interprets every block's data-memory accesses
//! ([`access`]), and runs a set of interleaving rules ([`rules`]) that
//! understand the platform's concurrency model: only interrupts preempt,
//! so every transient bug involves an interrupt-context access racing a
//! base context or another handler.
//!
//! The entry point is [`lint`]:
//!
//! ```
//! let program = tinyvm::assemble(
//!     "main:\n halt\ndead:\n nop\n halt\n",
//! )
//! .unwrap();
//! let report = staticlint::lint(&program);
//! assert_eq!(report.warnings.len(), 1);
//! assert_eq!(report.warnings[0].kind, staticlint::WarningKind::UnreachableCode);
//! ```
//!
//! Warnings are typed ([`WarningKind`]), anchored to instruction
//! addresses with source lines and enclosing labels, and serializable —
//! the CLI pins them as golden JSON fixtures, and
//! `core::localize::corroborate` joins them against dynamically
//! implicated instructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::must_use_candidate,
    clippy::missing_panics_doc,
    clippy::module_name_repetitions,
    clippy::cast_possible_truncation,
    clippy::similar_names,
    clippy::too_many_lines
)]

pub mod access;
pub mod cfg;
pub mod context;
pub mod report;
pub mod rules;
pub mod slice;

pub use access::{data_objects, Access, DataObject, Loc};
pub use cfg::{BasicBlock, Cfg};
pub use context::{Context, ContextMap};
pub use report::{LintReport, LintStats, Warning, WarningKind};
pub use rules::lint;
pub use slice::{
    slice_report, CrossDep, CrossEdgeReport, DependenceGraph, Slice, SliceError, SliceReport,
    SliceStats, SlicedInstruction,
};
