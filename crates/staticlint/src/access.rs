//! Data-memory access extraction: per-block abstract interpretation of
//! register contents, producing resolved read/write sets, guard tests,
//! and posted-task sites.
//!
//! The evaluator is deliberately block-local: every block is evaluated
//! once with all registers unknown at entry. That is enough to resolve
//! the idioms `TinyVM` programs actually use — `ldi`/`sta` constant stores,
//! `lda base; ldi idx; add; st [r]` indexed buffer writes, and the
//! `lda flag; cmpi k; brcc` guard pattern — without a whole-program value
//! analysis. Where resolution fails, accesses degrade soundly to
//! object-imprecise or unknown locations.

use crate::cfg::BasicBlock;
use tinyvm::isa::NUM_REGS;
use tinyvm::{Op, Program};

/// A contiguous labeled data-memory object (the extent of one `.data` or
/// `.word` declaration: from its address to the next data label, the last
/// one extending to the end of the data segment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataObject {
    /// Declaring label.
    pub name: String,
    /// First data-memory word.
    pub start: u16,
    /// Number of words.
    pub size: u16,
}

impl DataObject {
    /// Whether `word` lies inside the object.
    pub fn contains(&self, word: u16) -> bool {
        word >= self.start && word < self.start + self.size
    }
}

/// Derives the labeled data objects of a program, sorted by address.
pub fn data_objects(program: &Program) -> Vec<DataObject> {
    let mut addrs: Vec<(u16, &str)> = program
        .data_labels()
        .iter()
        .filter_map(|name| program.label(name).map(|addr| (addr, name.as_str())))
        .collect();
    addrs.sort_unstable();
    let mut objects = Vec::with_capacity(addrs.len());
    for (i, &(start, name)) in addrs.iter().enumerate() {
        let end = addrs
            .get(i + 1)
            .map_or(program.data_size, |&(next, _)| next);
        if end > start {
            objects.push(DataObject {
                name: name.to_string(),
                start,
                size: end - start,
            });
        }
    }
    objects
}

/// Abstract register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Unknown.
    Top,
    /// Exactly this constant.
    Const(u16),
    /// `base + unknown`: a value computed from the constant `base` (a
    /// buffer address, typically) plus an unresolved index. Resolving a
    /// memory operand through `Near(b)` yields the *object containing
    /// `b`* with an imprecise offset — a heuristic that matches the
    /// indexed-store idiom, documented as such.
    Near(u16),
}

fn abs_add(a: AbsVal, b: AbsVal) -> AbsVal {
    use AbsVal::{Const, Near, Top};
    match (a, b) {
        (Const(x), Const(y)) => Const(x.wrapping_add(y)),
        (Const(x) | Near(x), Near(y)) | (Near(x), Const(y)) => Near(x.wrapping_add(y)),
        (Const(x) | Near(x), Top) | (Top, Const(x) | Near(x)) => Near(x),
        (Top, Top) => Top,
    }
}

fn abs_sub(a: AbsVal, b: AbsVal) -> AbsVal {
    use AbsVal::{Const, Near, Top};
    match (a, b) {
        (Const(x), Const(y)) => Const(x.wrapping_sub(y)),
        (Near(x), Const(y)) => Near(x.wrapping_sub(y)),
        _ => Top,
    }
}

/// Where a memory operand landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// Exactly this data-memory word.
    Word(u16),
    /// Somewhere inside object `objects[i]`, offset unresolved.
    Object(usize),
    /// Could be anywhere.
    Unknown,
}

/// One resolved data-memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Instruction index.
    pub pc: u16,
    /// Store (`true`) or load.
    pub write: bool,
    /// Resolved location.
    pub loc: Loc,
    /// For writes: the abstract stored value.
    pub value: AbsVal,
    /// For writes: `Some(w)` when the stored value was computed from a
    /// load of word `w` — i.e. this store completes a read-modify-write
    /// of `w` when `loc` is `Word(w)`.
    pub rmw_of: Option<u16>,
}

/// A block terminator branching on an equality test of one data word
/// against a constant: `lda r, G; cmpi r, k; breq/brne ...`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Guard {
    /// The branch instruction.
    pub pc: u16,
    /// The tested data word.
    pub word: u16,
    /// The compared constant.
    pub k: u16,
    /// `true` for `breq` (the branch-taken side has `word == k`),
    /// `false` for `brne` (the fallthrough side has `word == k`).
    pub eq_on_target: bool,
    /// Block index of the fallthrough successor, if inside the program.
    pub fall: Option<usize>,
    /// Block index of the branch-target successor, if inside the program.
    pub target: Option<usize>,
}

impl Guard {
    /// Successor block on whose side `word == k` holds, and the opposite
    /// (`word != k`) side.
    pub fn eq_side(&self) -> Option<usize> {
        if self.eq_on_target {
            self.target
        } else {
            self.fall
        }
    }

    /// See [`Guard::eq_side`].
    pub fn ne_side(&self) -> Option<usize> {
        if self.eq_on_target {
            self.fall
        } else {
            self.target
        }
    }
}

/// Everything the rules need to know about one basic block.
#[derive(Debug, Clone, Default)]
pub struct BlockFacts {
    /// Data-memory accesses in instruction order.
    pub accesses: Vec<Access>,
    /// The terminating guard test, if the block ends in one.
    pub guard: Option<Guard>,
    /// `post` sites: `(pc, task index)`.
    pub posts: Vec<(u16, usize)>,
}

/// Per-register evaluator state.
#[derive(Clone)]
struct RegState {
    value: [AbsVal; NUM_REGS],
    /// `Some(w)`: the register still holds exactly the value loaded from
    /// word `w` (for guard detection).
    direct: [Option<u16>; NUM_REGS],
    /// Words whose loaded values flowed into the register (for RMW
    /// detection). Kept tiny; blocks touch a handful of words.
    taint: [Vec<u16>; NUM_REGS],
}

impl RegState {
    fn top() -> RegState {
        RegState {
            value: [AbsVal::Top; NUM_REGS],
            direct: [None; NUM_REGS],
            taint: std::array::from_fn(|_| Vec::new()),
        }
    }

    fn clobber(&mut self, r: usize, value: AbsVal) {
        self.value[r] = value;
        self.direct[r] = None;
        self.taint[r].clear();
    }

    fn merge_taint(&mut self, dst: usize, src: usize) {
        if dst == src {
            return;
        }
        let (a, b) = if dst < src {
            let (lo, hi) = self.taint.split_at_mut(src);
            (&mut lo[dst], &hi[0])
        } else {
            let (lo, hi) = self.taint.split_at_mut(dst);
            (&mut hi[0], &lo[src])
        };
        for &w in b {
            if !a.contains(&w) {
                a.push(w);
            }
        }
    }
}

fn resolve(base: AbsVal, off: i8, objects: &[DataObject]) -> Loc {
    let off = i16::from(off).cast_unsigned(); // two's-complement add
    match base {
        AbsVal::Const(c) => Loc::Word(c.wrapping_add(off)),
        AbsVal::Near(c) => {
            let probe = c.wrapping_add(off);
            objects
                .iter()
                .position(|o| o.contains(probe))
                .map_or(Loc::Unknown, Loc::Object)
        }
        AbsVal::Top => Loc::Unknown,
    }
}

/// Evaluates one basic block with all registers unknown at entry.
pub fn eval_block(program: &Program, objects: &[DataObject], block: &BasicBlock) -> BlockFacts {
    let mut st = RegState::top();
    let mut facts = BlockFacts::default();
    // Pending flag source: set by `cmpi r, k` while `r` still holds a
    // direct load of some word; cleared by any other flag-setting op.
    let mut flag_test: Option<(u16, u16)> = None;
    for pc in block.pcs() {
        let op = &program.ops[pc as usize];
        match *op {
            Op::Ldi(r, k) => st.clobber(r.index(), AbsVal::Const(k)),
            Op::Mov(d, s) => {
                let (d, s) = (d.index(), s.index());
                st.value[d] = st.value[s];
                st.direct[d] = st.direct[s];
                let t = st.taint[s].clone();
                st.taint[d] = t;
            }
            Op::Lda(r, addr) => {
                facts.accesses.push(Access {
                    pc,
                    write: false,
                    loc: Loc::Word(addr),
                    value: AbsVal::Top,
                    rmw_of: None,
                });
                let r = r.index();
                st.clobber(r, AbsVal::Top);
                st.direct[r] = Some(addr);
                st.taint[r].push(addr);
            }
            Op::Ld(r, base, off) => {
                let loc = resolve(st.value[base.index()], off, objects);
                facts.accesses.push(Access {
                    pc,
                    write: false,
                    loc,
                    value: AbsVal::Top,
                    rmw_of: None,
                });
                let r = r.index();
                st.clobber(r, AbsVal::Top);
                if let Loc::Word(w) = loc {
                    st.direct[r] = Some(w);
                    st.taint[r].push(w);
                }
            }
            Op::Sta(addr, r) => {
                let r = r.index();
                facts.accesses.push(Access {
                    pc,
                    write: true,
                    loc: Loc::Word(addr),
                    value: st.value[r],
                    rmw_of: st.taint[r].contains(&addr).then_some(addr),
                });
            }
            Op::St(base, off, r) => {
                let loc = resolve(st.value[base.index()], off, objects);
                let r = r.index();
                let rmw_of = match loc {
                    Loc::Word(w) => st.taint[r].contains(&w).then_some(w),
                    _ => None,
                };
                facts.accesses.push(Access {
                    pc,
                    write: true,
                    loc,
                    value: st.value[r],
                    rmw_of,
                });
            }
            Op::Add(d, s) => {
                let v = abs_add(st.value[d.index()], st.value[s.index()]);
                st.merge_taint(d.index(), s.index());
                st.value[d.index()] = v;
                st.direct[d.index()] = None;
                flag_test = None;
            }
            Op::Sub(d, s) => {
                let v = abs_sub(st.value[d.index()], st.value[s.index()]);
                st.merge_taint(d.index(), s.index());
                st.value[d.index()] = v;
                st.direct[d.index()] = None;
                flag_test = None;
            }
            Op::Addi(r, k) => {
                let r = r.index();
                st.value[r] = abs_add(st.value[r], AbsVal::Const(k));
                st.direct[r] = None;
                flag_test = None;
            }
            Op::Subi(r, k) => {
                let r = r.index();
                st.value[r] = abs_sub(st.value[r], AbsVal::Const(k));
                st.direct[r] = None;
                flag_test = None;
            }
            Op::And(d, s) | Op::Or(d, s) | Op::Xor(d, s) | Op::Mul(d, s) => {
                let v = match (st.value[d.index()], st.value[s.index()]) {
                    (AbsVal::Const(x), AbsVal::Const(y)) => AbsVal::Const(match *op {
                        Op::And(_, _) => x & y,
                        Op::Or(_, _) => x | y,
                        Op::Xor(_, _) => x ^ y,
                        _ => x.wrapping_mul(y),
                    }),
                    _ => AbsVal::Top,
                };
                st.merge_taint(d.index(), s.index());
                st.value[d.index()] = v;
                st.direct[d.index()] = None;
                flag_test = None;
            }
            Op::Shl(r, k) | Op::Shr(r, k) => {
                let r = r.index();
                st.value[r] = match st.value[r] {
                    AbsVal::Const(x) => AbsVal::Const(if matches!(op, Op::Shl(_, _)) {
                        x.wrapping_shl(u32::from(k))
                    } else {
                        x.wrapping_shr(u32::from(k))
                    }),
                    _ => AbsVal::Top,
                };
                st.direct[r] = None;
                flag_test = None;
            }
            Op::Cmp(_, _) => flag_test = None,
            Op::Cmpi(r, k) => {
                flag_test = st.direct[r.index()].map(|w| (w, k));
            }
            Op::In(r, _) | Op::Pop(r) => st.clobber(r.index(), AbsVal::Top),
            Op::Post(task) => facts.posts.push((pc, task.index())),
            Op::Br(cond, _) => {
                use tinyvm::isa::Cond;
                if let (Some((word, k)), Cond::Eq | Cond::Ne) = (flag_test, cond) {
                    // Successor wiring is filled in by the caller, which
                    // knows block indices; record the raw facts here.
                    facts.guard = Some(Guard {
                        pc,
                        word,
                        k,
                        eq_on_target: cond == Cond::Eq,
                        fall: None,
                        target: None,
                    });
                }
            }
            Op::Nop
            | Op::Halt
            | Op::Sleep
            | Op::Jmp(_)
            | Op::Call(_)
            | Op::Ret
            | Op::Reti
            | Op::Push(_)
            | Op::Out(_, _)
            | Op::Sei
            | Op::Cli => {}
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;

    fn facts_of(src: &str) -> (Program, Cfg, Vec<BlockFacts>) {
        let p = tinyvm::assemble(src).unwrap();
        let cfg = Cfg::build(&p);
        let objects = data_objects(&p);
        let facts = cfg
            .blocks
            .iter()
            .map(|b| eval_block(&p, &objects, b))
            .collect();
        (p, cfg, facts)
    }

    #[test]
    fn data_objects_have_extents() {
        let p = tinyvm::assemble(".data buf 3\n.data flag 1\n.word seq 7\nmain:\n ret\n").unwrap();
        let objs = data_objects(&p);
        assert_eq!(objs.len(), 3);
        assert_eq!(
            (objs[0].name.as_str(), objs[0].start, objs[0].size),
            ("buf", 0, 3)
        );
        assert_eq!(
            (objs[1].name.as_str(), objs[1].start, objs[1].size),
            ("flag", 3, 1)
        );
        assert_eq!(
            (objs[2].name.as_str(), objs[2].start, objs[2].size),
            ("seq", 4, 1)
        );
    }

    #[test]
    fn constant_store_and_rmw_are_recognized() {
        let (_, _, facts) = facts_of(
            "\
.data c 1
main:
 ldi r1, 5
 sta c, r1
 lda r2, c
 addi r2, 1
 sta c, r2
 ret
",
        );
        let f = &facts[0];
        assert_eq!(f.accesses.len(), 3);
        assert_eq!(f.accesses[0].value, AbsVal::Const(5));
        assert_eq!(f.accesses[0].rmw_of, None);
        assert!(!f.accesses[1].write);
        assert_eq!(f.accesses[2].rmw_of, Some(0));
    }

    #[test]
    fn indexed_store_resolves_to_object() {
        let (_, _, facts) = facts_of(
            "\
.data buf 3
.data idx 1
main:
 lda r2, idx
 ldi r3, buf
 add r3, r2
 st [r3], r1
 ret
",
        );
        let f = &facts[0];
        let store = f.accesses.iter().find(|a| a.write).unwrap();
        assert_eq!(store.loc, Loc::Object(0));
    }

    #[test]
    fn guard_pattern_is_detected() {
        let (p, cfg, facts) = facts_of(
            "\
.data flag 1
main:
 lda r1, flag
 cmpi r1, 0
 brne out
 nop
out:
 ret
",
        );
        let g = facts[cfg.block_of(p.entry)].guard.unwrap();
        assert_eq!(g.word, 0);
        assert_eq!(g.k, 0);
        assert!(!g.eq_on_target);
    }

    #[test]
    fn clobbered_register_breaks_guard() {
        let (p, cfg, facts) = facts_of(
            "\
.data flag 1
main:
 lda r1, flag
 addi r1, 1
 cmpi r1, 0
 brne out
 nop
out:
 ret
",
        );
        assert!(facts[cfg.block_of(p.entry)].guard.is_none());
    }
}
