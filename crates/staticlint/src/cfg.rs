//! Basic-block decoding and the control-flow graph.
//!
//! Blocks partition the whole instruction range `0..program.len()` —
//! including code unreachable from any context, which the linter reports
//! separately. Leaders are the program entry points (main, task entries,
//! interrupt vectors), every control-transfer target, and the instruction
//! after every control transfer. `Post` is *not* a control transfer: the
//! posted task runs in its own context later, so no CFG edge connects the
//! posting site to the task body.

use tinyvm::{Op, Program};

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index of the block.
    pub start: u16,
    /// One past the last instruction index of the block.
    pub end: u16,
    /// Successor blocks (indices into [`Cfg::blocks`]), deduplicated.
    pub succs: Vec<usize>,
}

impl BasicBlock {
    /// Instruction indices of the block.
    pub fn pcs(&self) -> impl Iterator<Item = u16> {
        self.start..self.end
    }
}

/// The control-flow graph of a program: blocks in ascending address
/// order, partitioning `0..program.len()` exactly.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks sorted by `start`; `blocks[i].end == blocks[i+1].start`.
    pub blocks: Vec<BasicBlock>,
    block_of: Vec<usize>,
}

impl Cfg {
    /// Decodes `program` into basic blocks and wires successor edges.
    ///
    /// Call instructions get both the call target and the return
    /// continuation as successors (callees are assumed to return), so a
    /// context's reachable set includes the routines it calls. Branch or
    /// jump targets outside the program simply contribute no edge.
    pub fn build(program: &Program) -> Cfg {
        let n = program.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
            };
        }
        let mut leader = vec![false; n];
        leader[0] = true;
        let mut mark = |pc: u16| {
            if (pc as usize) < n {
                leader[pc as usize] = true;
            }
        };
        mark(program.entry);
        for task in &program.tasks {
            mark(task.entry);
        }
        for vector in program.vectors.iter().flatten() {
            mark(*vector);
        }
        for (pc, op) in program.ops.iter().enumerate() {
            match op {
                Op::Jmp(t) | Op::Br(_, t) | Op::Call(t) => {
                    if (*t as usize) < n {
                        leader[*t as usize] = true;
                    }
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Op::Ret | Op::Reti | Op::Halt if pc + 1 < n => leader[pc + 1] = true,
                _ => {}
            }
        }

        let starts: Vec<usize> = (0..n).filter(|&pc| leader[pc]).collect();
        let mut block_of = vec![0usize; n];
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(starts.len());
        for (i, &start) in starts.iter().enumerate() {
            let end = starts.get(i + 1).copied().unwrap_or(n);
            for slot in &mut block_of[start..end] {
                *slot = i;
            }
            blocks.push(BasicBlock {
                start: start as u16,
                end: end as u16,
                succs: Vec::new(),
            });
        }

        for block in &mut blocks {
            let last_pc = block.end as usize - 1;
            let last = &program.ops[last_pc];
            let mut succs: Vec<usize> = Vec::with_capacity(2);
            let push = |succs: &mut Vec<usize>, pc: usize| {
                if pc < n {
                    let b = block_of[pc];
                    if !succs.contains(&b) {
                        succs.push(b);
                    }
                }
            };
            match last {
                Op::Jmp(t) => push(&mut succs, *t as usize),
                Op::Br(_, t) => {
                    push(&mut succs, last_pc + 1);
                    push(&mut succs, *t as usize);
                }
                Op::Call(t) => {
                    push(&mut succs, *t as usize);
                    push(&mut succs, last_pc + 1);
                }
                Op::Ret | Op::Reti | Op::Halt => {}
                _ => push(&mut succs, last_pc + 1),
            }
            block.succs = succs;
        }

        Cfg { blocks, block_of }
    }

    /// The block containing instruction `pc`.
    pub fn block_of(&self, pc: u16) -> usize {
        self.block_of[pc as usize]
    }

    /// Whether the block ends in an explicit control transfer that leaves
    /// the context (no successors): `ret`, `reti`, `halt`, or falling off
    /// the end of the program.
    pub fn is_exit(&self, block: usize) -> bool {
        self.blocks[block].succs.is_empty()
    }

    /// Per-block reachability from the block containing `entry_pc`,
    /// following successor edges.
    pub fn reachable_from(&self, entry_pc: u16) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![self.block_of(entry_pc)];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            stack.extend(self.blocks[b].succs.iter().copied());
        }
        seen
    }

    /// Reachability from `from` restricted to blocks where `within` is
    /// true; `from` itself is only included if revisitable.
    pub fn reachable_within(&self, from: usize, within: &[bool]) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if !within[from] {
            return seen;
        }
        let mut stack = vec![from];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            stack.extend(self.blocks[b].succs.iter().copied().filter(|&s| within[s]));
        }
        seen
    }

    /// Reachability from `entry_pc`'s block with `excluded` removed from
    /// the graph — the workhorse of the dominance test (`excluded`
    /// dominates `b` iff `b` becomes unreachable without it).
    pub fn reachable_excluding(&self, entry_pc: u16, excluded: usize) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let entry = self.block_of(entry_pc);
        if entry == excluded {
            return seen;
        }
        let mut stack = vec![entry];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            stack.extend(
                self.blocks[b]
                    .succs
                    .iter()
                    .copied()
                    .filter(|&s| s != excluded),
            );
        }
        seen
    }

    /// Whether `block` lies on a cycle of the subgraph induced by
    /// `within` (it can reach itself through at least one edge).
    pub fn in_cycle(&self, block: usize, within: &[bool]) -> bool {
        if !within[block] {
            return false;
        }
        let mut seen = vec![false; self.blocks.len()];
        let mut stack: Vec<usize> = self.blocks[block]
            .succs
            .iter()
            .copied()
            .filter(|&s| within[s])
            .collect();
        while let Some(b) = stack.pop() {
            if b == block {
                return true;
            }
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            stack.extend(self.blocks[b].succs.iter().copied().filter(|&s| within[s]));
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_of(src: &str) -> (Program, Cfg) {
        let p = tinyvm::assemble(src).unwrap();
        let c = Cfg::build(&p);
        (p, c)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (p, c) = cfg_of("main:\n nop\n nop\n halt\n");
        assert_eq!(c.blocks.len(), 1);
        assert_eq!(c.blocks[0].start, 0);
        assert_eq!(c.blocks[0].end, p.len() as u16);
        assert!(c.blocks[0].succs.is_empty());
    }

    #[test]
    fn branch_splits_blocks_and_wires_both_edges() {
        let (_, c) = cfg_of("main:\n cmpi r1, 0\n breq skip\n nop\nskip:\n halt\n");
        // Blocks: [0,2) test+branch, [2,3) nop, [3,4) halt.
        assert_eq!(c.blocks.len(), 3);
        assert_eq!(c.blocks[0].succs, vec![1, 2]);
        assert_eq!(c.blocks[1].succs, vec![2]);
        assert!(c.blocks[2].succs.is_empty());
    }

    #[test]
    fn call_has_target_and_continuation_successors() {
        let (_, c) = cfg_of("main:\n call sub\n halt\nsub:\n ret\n");
        assert_eq!(c.blocks[0].succs, vec![2, 1]);
    }

    #[test]
    fn blocks_partition_instructions() {
        let (p, c) =
            cfg_of("main:\n jmp go\nother:\n nop\n ret\ngo:\n cmpi r1, 1\n brne other\n halt\n");
        let mut covered = vec![0u8; p.len()];
        for b in &c.blocks {
            for pc in b.pcs() {
                covered[pc as usize] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let (_, c) = cfg_of("main:\nspin:\n subi r1, 1\n brne spin\n halt\n");
        let within = vec![true; c.blocks.len()];
        let spin = c.block_of(0);
        assert!(c.in_cycle(spin, &within));
        assert!(!c.in_cycle(c.block_of(2), &within));
    }
}
