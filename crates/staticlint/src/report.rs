//! Typed lint warnings and the serializable report.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The category of a [`Warning`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WarningKind {
    /// A data object written by one context and read by a concurrent one
    /// with no protection, where at least one writing path publishes the
    /// object only partially (torn publication).
    UnprotectedSharedWrite,
    /// A load–modify–store of a shared word that an interrupt handler
    /// writing the same word can preempt mid-sequence.
    RmwAcrossContexts,
    /// A guarded task discards handler-produced work on its reject path
    /// without recording it anywhere — an *active drop*.
    ActiveDrop,
    /// A busy flag acquired on this path can leak: an exit neither
    /// releases it nor hands ownership to the releasing context.
    BusyFlagLeak,
    /// A `post` inside a loop of an interrupt handler can flood the
    /// task queue within one activation.
    PostInLoop,
    /// Instructions unreachable from every context entry.
    UnreachableCode,
}

impl WarningKind {
    /// Short stable identifier (used in tables and fixtures).
    pub fn slug(&self) -> &'static str {
        match self {
            WarningKind::UnprotectedSharedWrite => "unprotected-shared-write",
            WarningKind::RmwAcrossContexts => "rmw-across-contexts",
            WarningKind::ActiveDrop => "active-drop",
            WarningKind::BusyFlagLeak => "busy-flag-leak",
            WarningKind::PostInLoop => "post-in-loop",
            WarningKind::UnreachableCode => "unreachable-code",
        }
    }
}

impl fmt::Display for WarningKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// One finding of the static analyzer, anchored to an instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Warning {
    /// Category.
    pub kind: WarningKind,
    /// Primary anchor instruction.
    pub pc: u16,
    /// 1-based assembly source line of the anchor, if known.
    pub source_line: Option<u32>,
    /// Enclosing code label of the anchor, if any.
    pub routine: Option<String>,
    /// The data object involved, if the finding concerns one.
    pub object: Option<String>,
    /// Display names of the contexts involved.
    pub contexts: Vec<String>,
    /// Other implicated instructions (the conflicting accesses, the
    /// whole offending path, ...), sorted ascending. The corroboration
    /// join on the dynamic side matches against these too.
    pub related_pcs: Vec<u16>,
    /// Human-readable explanation.
    pub message: String,
}

/// Sizing statistics of the analyzed program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintStats {
    /// Instructions analyzed.
    pub instructions: usize,
    /// Basic blocks decoded.
    pub blocks: usize,
    /// Execution contexts (main + tasks + vectored handlers).
    pub contexts: usize,
    /// Labeled data objects.
    pub data_objects: usize,
}

/// The full result of linting one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    /// Findings, sorted by `(pc, kind)` — deterministic for a given
    /// program.
    pub warnings: Vec<Warning>,
    /// Program statistics.
    pub stats: LintStats,
}

impl LintReport {
    /// Warnings of one category.
    pub fn of_kind(&self, kind: WarningKind) -> impl Iterator<Item = &Warning> {
        self.warnings.iter().filter(move |w| w.kind == kind)
    }

    /// Renders a fixed-width text table of the findings.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<26} {:>5} {:>5}  {:<16} message",
            "kind", "pc", "line", "routine"
        );
        for w in &self.warnings {
            let line = w
                .source_line
                .map_or_else(|| "-".to_string(), |l| l.to_string());
            let _ = writeln!(
                out,
                "{:<26} {:>5} {:>5}  {:<16} {}",
                w.kind.slug(),
                w.pc,
                line,
                w.routine.as_deref().unwrap_or("-"),
                w.message
            );
        }
        let _ = writeln!(
            out,
            "{} warning(s) over {} instructions, {} blocks, {} contexts, {} data objects",
            self.warnings.len(),
            self.stats.instructions,
            self.stats.blocks,
            self.stats.contexts,
            self.stats.data_objects
        );
        out
    }
}
