//! Static dependence slicing: def/use chains, cross-context write→read
//! edges, and backward slices from arbitrary seed instructions.
//!
//! This pass layers a *dependence graph* over the analyses the linter
//! already computes — the CFG ([`crate::cfg`]), the execution contexts
//! and their reachability ([`crate::context`]), and the per-block
//! abstract accesses ([`crate::access`]):
//!
//! * **Register chains.** A classic reaching-definitions dataflow (one
//!   bit-set of defining pcs per register per block, plus a pseudo
//!   register for the condition flags) connects every register *use* to
//!   the definitions that can reach it, across block boundaries. Branch
//!   instructions use the flags, flag-setting compares use their
//!   operands, so a `lda r, flag; cmpi r, k; brne …` guard chains the
//!   branch all the way back to the guarded word.
//! * **Shared-object chains.** Every resolved data-memory read depends
//!   on the writes of an overlapping location that can flow to it
//!   *within one context* (same block and earlier, a loop-carried write
//!   in a cycling block, or a write in a block that reaches the reader's
//!   block inside some context's region).
//! * **Cross-context edges.** A write in context `A` and a read of an
//!   overlapping location in context `B` form an *interleaving edge*
//!   only when the reachability analysis proves both sites executable in
//!   a pair of contexts that [`Context::concurrent_with`] allows to
//!   interleave — the pruning step that keeps the graph honest about the
//!   handlers-preempt-everything-but-their-own-line model.
//!
//! A [`DependenceGraph::backward_slice`] from any seed pc walks both
//! edge kinds in reverse, so the slice of a symptom site contains the
//! handler writes that can corrupt it even though no CFG path connects
//! the two contexts. Slices are deterministic (sorted outputs, no hash
//! iteration) and monotone under seed-set union — both properties are
//! pinned by property tests.
//!
//! Precision notes, documented rather than hidden: accesses that resolve
//! to [`Loc::Unknown`] contribute no dependence edges (the block-local
//! evaluator resolves every idiom the bundled programs use, so this
//! under-approximation is empty in practice). Control dependence is
//! modeled one branch-predecessor level per block — each instruction
//! depends on the conditional terminators of its block's predecessors,
//! and the flags chain carries the guard back to its data sources —
//! rather than via full post-dominance frontiers; a block entered only
//! through an unconditional jump inherits no control edge from the
//! jump's own guards.

use crate::access::{data_objects, eval_block, Access, DataObject, Loc};
use crate::cfg::Cfg;
use crate::context::{Context, ContextMap};
use serde::{Deserialize, Serialize};
use std::fmt;
use tinyvm::isa::NUM_REGS;
use tinyvm::{Op, Program};

/// Slot index of the condition-flags pseudo register.
const FLAGS: usize = NUM_REGS;
/// Tracked definition slots: the register file plus the flags.
const SLOTS: usize = NUM_REGS + 1;

/// Every way building or querying a slice can fail. Typed — the slicing
/// layer upholds the same zero-panic bar as the trace store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceError {
    /// A seed pc lies outside the program text.
    PcOutOfRange {
        /// The offending seed.
        pc: u16,
        /// Program length it exceeded.
        len: usize,
    },
    /// A seed pc sits in a block no context can reach; its slice would
    /// assert dependence on code that never executes.
    UnreachableSeed {
        /// The offending seed.
        pc: u16,
    },
    /// No seed pcs were supplied.
    EmptySeeds,
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::PcOutOfRange { pc, len } => {
                write!(f, "seed pc {pc} outside the program (len {len})")
            }
            SliceError::UnreachableSeed { pc } => {
                write!(f, "seed pc {pc} is unreachable from every context")
            }
            SliceError::EmptySeeds => f.write_str("no seed pcs to slice from"),
        }
    }
}

impl std::error::Error for SliceError {}

/// One cross-context write→read dependence edge: context `writer` can
/// interleave with context `reader` and publish `object` (or a raw word)
/// between the reader's instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossDep {
    /// The writing instruction.
    pub write_pc: u16,
    /// The reading instruction.
    pub read_pc: u16,
    /// The shared data object, when the location lies in a labeled one.
    pub object: Option<String>,
    /// A context that can execute the write.
    pub writer: Context,
    /// A concurrent context that can execute the read.
    pub reader: Context,
}

/// The static dependence graph of one program.
#[derive(Debug, Clone)]
pub struct DependenceGraph {
    program_len: usize,
    /// `deps[pc]`: sorted, deduplicated pcs that `pc` data-depends on
    /// within a single context (register chains + same-context memory
    /// flow).
    deps: Vec<Vec<u16>>,
    /// Cross-context interleaving edges, sorted by `(read_pc, write_pc)`.
    cross: Vec<CrossDep>,
    /// Edge indices into `cross`, grouped by reading pc.
    cross_by_read: Vec<Vec<usize>>,
    /// Whether each pc lies in a block some context can reach.
    reachable_pc: Vec<bool>,
}

/// A computed backward slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// The seed pcs, sorted and deduplicated.
    pub seeds: Vec<u16>,
    /// Every pc in the slice (seeds included), sorted ascending.
    pub pcs: Vec<u16>,
    /// The cross-context edges the slice traversed, sorted by
    /// `(read_pc, write_pc)`.
    pub cross: Vec<CrossDep>,
}

impl Slice {
    /// Whether `pc` belongs to the slice.
    pub fn contains(&self, pc: u16) -> bool {
        self.pcs.binary_search(&pc).is_ok()
    }
}

/// A dense bit set over instruction indices.
#[derive(Clone, PartialEq, Eq)]
struct PcSet {
    words: Vec<u64>,
}

impl PcSet {
    fn new(len: usize) -> PcSet {
        PcSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    fn insert(&mut self, pc: u16) {
        self.words[pc as usize / 64] |= 1u64 << (pc as usize % 64);
    }

    fn union_with(&mut self, other: &PcSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    fn singleton(len: usize, pc: u16) -> PcSet {
        let mut s = PcSet::new(len);
        s.insert(pc);
        s
    }

    fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| (i * 64 + b) as u16)
        })
    }
}

/// Register/flags slots an instruction reads and the slot it defines.
fn uses_and_def(op: Op) -> (Vec<usize>, Option<usize>) {
    match op {
        Op::Ldi(d, _) | Op::Lda(d, _) | Op::In(d, _) | Op::Pop(d) => (vec![], Some(d.index())),
        Op::Mov(d, s) => (vec![s.index()], Some(d.index())),
        Op::Ld(d, b, _) => (vec![b.index()], Some(d.index())),
        Op::St(b, _, v) => (vec![b.index(), v.index()], None),
        Op::Sta(_, s) | Op::Out(_, s) | Op::Push(s) => (vec![s.index()], None),
        Op::Add(d, s)
        | Op::Sub(d, s)
        | Op::And(d, s)
        | Op::Or(d, s)
        | Op::Xor(d, s)
        | Op::Mul(d, s) => (vec![d.index(), s.index()], Some(d.index())),
        Op::Addi(d, _) | Op::Subi(d, _) | Op::Shl(d, _) | Op::Shr(d, _) => {
            (vec![d.index()], Some(d.index()))
        }
        Op::Cmp(a, b) => (vec![a.index(), b.index()], Some(FLAGS)),
        Op::Cmpi(r, _) => (vec![r.index()], Some(FLAGS)),
        Op::Br(_, _) => (vec![FLAGS], None),
        Op::Nop
        | Op::Halt
        | Op::Sleep
        | Op::Jmp(_)
        | Op::Call(_)
        | Op::Ret
        | Op::Reti
        | Op::Post(_)
        | Op::Sei
        | Op::Cli => (vec![], None),
    }
}

/// Whether an arithmetic/logic op also defines the flags (in addition to
/// its register destination).
fn also_defines_flags(op: Op) -> bool {
    matches!(
        op,
        Op::Add(..)
            | Op::Sub(..)
            | Op::And(..)
            | Op::Or(..)
            | Op::Xor(..)
            | Op::Mul(..)
            | Op::Addi(..)
            | Op::Subi(..)
            | Op::Shl(..)
            | Op::Shr(..)
    )
}

/// Whether two resolved locations can alias. [`Loc::Unknown`] aliases
/// nothing — the documented under-approximation of this pass.
fn locs_overlap(a: Loc, b: Loc, objects: &[DataObject]) -> bool {
    match (a, b) {
        (Loc::Word(x), Loc::Word(y)) => x == y,
        (Loc::Word(w), Loc::Object(i)) | (Loc::Object(i), Loc::Word(w)) => objects[i].contains(w),
        (Loc::Object(i), Loc::Object(j)) => i == j,
        (Loc::Unknown, _) | (_, Loc::Unknown) => false,
    }
}

/// The labeled object an access location lies in, if any.
fn object_of_loc(loc: Loc, objects: &[DataObject]) -> Option<String> {
    match loc {
        Loc::Word(w) => objects
            .iter()
            .find(|o| o.contains(w))
            .map(|o| o.name.clone()),
        Loc::Object(i) => objects.get(i).map(|o| o.name.clone()),
        Loc::Unknown => None,
    }
}

impl DependenceGraph {
    /// Builds the dependence graph of `program`: register reaching
    /// definitions, same-context shared-object flow, and concurrency-
    /// pruned cross-context write→read edges.
    pub fn build(program: &Program) -> DependenceGraph {
        let n = program.len();
        let cfg = Cfg::build(program);
        let ctx = ContextMap::build(program, &cfg);
        let objects = data_objects(program);
        let nb = cfg.blocks.len();

        let reachable_block: Vec<bool> = (0..nb).map(|b| ctx.reachable_anywhere(b)).collect();
        let mut reachable_pc = vec![false; n];
        for (b, block) in cfg.blocks.iter().enumerate() {
            if reachable_block[b] {
                for pc in block.pcs() {
                    reachable_pc[pc as usize] = true;
                }
            }
        }

        let mut deps: Vec<Vec<u16>> = vec![Vec::new(); n];
        let mut add_dep = |use_pc: u16, def_pc: u16| {
            let d = &mut deps[use_pc as usize];
            if !d.contains(&def_pc) {
                d.push(def_pc);
            }
        };

        // --- Register chains: reaching definitions over the CFG. ---
        // gen[b][slot]: last defining pc of `slot` inside block b.
        let mut gen: Vec<[Option<u16>; SLOTS]> = vec![[None; SLOTS]; nb];
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !reachable_block[b] {
                continue;
            }
            for pc in block.pcs() {
                let op = program.ops[pc as usize];
                let (_, def) = uses_and_def(op);
                if let Some(slot) = def {
                    gen[b][slot] = Some(pc);
                }
                if also_defines_flags(op) {
                    gen[b][FLAGS] = Some(pc);
                }
            }
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !reachable_block[b] {
                continue;
            }
            for &s in &block.succs {
                if reachable_block[s] {
                    preds[s].push(b);
                }
            }
        }
        let empty = PcSet::new(n);
        let mut ins: Vec<Vec<PcSet>> = vec![vec![empty.clone(); SLOTS]; nb];
        let mut outs: Vec<Vec<PcSet>> = vec![vec![empty.clone(); SLOTS]; nb];
        loop {
            let mut changed = false;
            for b in 0..nb {
                if !reachable_block[b] {
                    continue;
                }
                for slot in 0..SLOTS {
                    let mut new_in = PcSet::new(n);
                    for &p in &preds[b] {
                        new_in.union_with(&outs[p][slot]);
                    }
                    let new_out = match gen[b][slot] {
                        Some(pc) => PcSet::singleton(n, pc),
                        None => new_in.clone(),
                    };
                    if new_out != outs[b][slot] {
                        outs[b][slot] = new_out;
                        changed = true;
                    }
                    ins[b][slot] = new_in;
                }
            }
            if !changed {
                break;
            }
        }
        // Wire use→def edges: in-block definitions win; upward-exposed
        // uses take every reaching definition at block entry.
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !reachable_block[b] {
                continue;
            }
            let mut local: [Option<u16>; SLOTS] = [None; SLOTS];
            for pc in block.pcs() {
                let op = program.ops[pc as usize];
                let (uses, def) = uses_and_def(op);
                for slot in uses {
                    match local[slot] {
                        Some(d) => add_dep(pc, d),
                        None => {
                            for d in ins[b][slot].iter() {
                                add_dep(pc, d);
                            }
                        }
                    }
                }
                if let Some(slot) = def {
                    local[slot] = Some(pc);
                }
                if also_defines_flags(op) {
                    local[FLAGS] = Some(pc);
                }
            }
        }

        // --- Control dependence: every instruction of a block depends on
        // the conditional terminators of the block's predecessors, so a
        // slice seeded inside a guarded branch (`brne fwd_drop` → the
        // drop counter) walks back through the guard to the flag loads
        // that decided it — and from there, via the cross-context edges,
        // to the concurrent writers of the guarding flag. One level of
        // branch-predecessor dependence per block; deeper guards chain
        // block by block through the same rule.
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !reachable_block[b] {
                continue;
            }
            for &p in &preds[b] {
                let Some(term) = cfg.blocks[p].end.checked_sub(1) else {
                    continue;
                };
                if !matches!(program.ops[term as usize], Op::Br(..)) {
                    continue;
                }
                for pc in block.pcs() {
                    add_dep(pc, term);
                }
            }
        }

        // --- Shared-object flow: same-context edges and cross-context
        // interleaving edges. ---
        let mut accesses: Vec<(usize, Access)> = Vec::new();
        for (b, block) in cfg.blocks.iter().enumerate() {
            if !reachable_block[b] {
                continue;
            }
            let facts = eval_block(program, &objects, block);
            for acc in facts.accesses {
                accesses.push((b, acc));
            }
        }
        // Per-context forward block reachability, for the "write can flow
        // to read within one context" test.
        let nc = ctx.contexts.len();
        let mut fwd: Vec<Vec<Option<Vec<bool>>>> = vec![vec![None; nb]; nc];
        for (c, row) in fwd.iter_mut().enumerate() {
            for (b, slot) in row.iter_mut().enumerate() {
                if ctx.reach[c][b] {
                    *slot = Some(cfg.reachable_within(b, &ctx.reach[c]));
                }
            }
        }
        let mut cross: Vec<CrossDep> = Vec::new();
        for &(bw, ref wa) in accesses.iter().filter(|(_, a)| a.write) {
            for &(br, ref ra) in accesses.iter().filter(|(_, a)| !a.write) {
                if !locs_overlap(wa.loc, ra.loc, &objects) {
                    continue;
                }
                // Same-context flow: the write can reach the read on a
                // CFG path of some context.
                let mut intra = false;
                for (c, fwd_row) in fwd.iter().enumerate() {
                    if !(ctx.reach[c][bw] && ctx.reach[c][br]) {
                        continue;
                    }
                    let flows = if bw == br {
                        wa.pc < ra.pc || cfg.in_cycle(bw, &ctx.reach[c])
                    } else {
                        fwd_row[bw].as_ref().is_some_and(|r| r[br])
                    };
                    if flows {
                        intra = true;
                        break;
                    }
                }
                if intra {
                    add_dep(ra.pc, wa.pc);
                }
                // Cross-context interleaving edge: keep the first
                // concurrent (writer, reader) context pair in context
                // order — deterministic, and one representative pair is
                // all the slice needs.
                'pair: for cw in 0..nc {
                    if !ctx.reach[cw][bw] {
                        continue;
                    }
                    for cr in 0..nc {
                        if cw == cr || !ctx.reach[cr][br] {
                            continue;
                        }
                        let (wctx, rctx) = (ctx.contexts[cw].0, ctx.contexts[cr].0);
                        if wctx.concurrent_with(&rctx) {
                            cross.push(CrossDep {
                                write_pc: wa.pc,
                                read_pc: ra.pc,
                                object: object_of_loc(wa.loc, &objects),
                                writer: wctx,
                                reader: rctx,
                            });
                            break 'pair;
                        }
                    }
                }
            }
        }
        cross.sort_by_key(|e| (e.read_pc, e.write_pc));
        cross.dedup();
        let mut cross_by_read: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in cross.iter().enumerate() {
            cross_by_read[e.read_pc as usize].push(i);
        }
        for d in &mut deps {
            d.sort_unstable();
            d.dedup();
        }

        DependenceGraph {
            program_len: n,
            deps,
            cross,
            cross_by_read,
            reachable_pc,
        }
    }

    /// The program length the graph was built for.
    pub fn program_len(&self) -> usize {
        self.program_len
    }

    /// Whether `pc` can seed a slice: inside the program and inside a
    /// block some context reaches.
    pub fn valid_seed(&self, pc: u16) -> bool {
        (pc as usize) < self.program_len && self.reachable_pc[pc as usize]
    }

    /// All cross-context write→read edges, sorted by `(read_pc, write_pc)`.
    pub fn cross_edges(&self) -> &[CrossDep] {
        &self.cross
    }

    /// The sorted same-context dependence targets of `pc`.
    pub fn deps_of(&self, pc: u16) -> &[u16] {
        self.deps
            .get(pc as usize)
            .map_or(&[], std::vec::Vec::as_slice)
    }

    /// Computes the backward slice from `seeds`: the transitive closure
    /// of same-context dependences and cross-context write→read edges,
    /// walked in reverse from every seed.
    ///
    /// Deterministic (sorted outputs) and monotone: the slice of a seed
    /// union contains the union of the individual slices.
    ///
    /// # Errors
    ///
    /// [`SliceError::EmptySeeds`], [`SliceError::PcOutOfRange`], or
    /// [`SliceError::UnreachableSeed`] when a seed's block no context
    /// reaches.
    pub fn backward_slice(&self, seeds: &[u16]) -> Result<Slice, SliceError> {
        if seeds.is_empty() {
            return Err(SliceError::EmptySeeds);
        }
        for &pc in seeds {
            if (pc as usize) >= self.program_len {
                return Err(SliceError::PcOutOfRange {
                    pc,
                    len: self.program_len,
                });
            }
            if !self.reachable_pc[pc as usize] {
                return Err(SliceError::UnreachableSeed { pc });
            }
        }
        let mut visited = vec![false; self.program_len];
        let mut traversed = vec![false; self.cross.len()];
        let mut stack: Vec<u16> = seeds.to_vec();
        while let Some(pc) = stack.pop() {
            if std::mem::replace(&mut visited[pc as usize], true) {
                continue;
            }
            for &d in &self.deps[pc as usize] {
                if !visited[d as usize] {
                    stack.push(d);
                }
            }
            for &ei in &self.cross_by_read[pc as usize] {
                traversed[ei] = true;
                let w = self.cross[ei].write_pc;
                if !visited[w as usize] {
                    stack.push(w);
                }
            }
        }
        let mut sorted_seeds = seeds.to_vec();
        sorted_seeds.sort_unstable();
        sorted_seeds.dedup();
        let pcs: Vec<u16> = (0..self.program_len as u16)
            .filter(|&pc| visited[pc as usize])
            .collect();
        let cross = self
            .cross
            .iter()
            .enumerate()
            .filter(|&(i, _)| traversed[i])
            .map(|(_, e)| e.clone())
            .collect();
        Ok(Slice {
            seeds: sorted_seeds,
            pcs,
            cross,
        })
    }
}

/// One instruction of a serialized slice, with its source evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlicedInstruction {
    /// Instruction index.
    pub pc: u16,
    /// 1-based assembly source line, if known.
    pub source_line: Option<u32>,
    /// Enclosing code label.
    pub routine: Option<String>,
}

/// One serialized cross-context edge with full site evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossEdgeReport {
    /// The writing instruction.
    pub write_pc: u16,
    /// Source line of the write.
    pub write_source_line: Option<u32>,
    /// Routine of the write.
    pub write_routine: Option<String>,
    /// Display name of a context that can execute the write.
    pub writer_context: String,
    /// The reading instruction.
    pub read_pc: u16,
    /// Source line of the read.
    pub read_source_line: Option<u32>,
    /// Routine of the read.
    pub read_routine: Option<String>,
    /// Display name of a concurrent context that can execute the read.
    pub reader_context: String,
    /// The shared data object, when the location lies in a labeled one.
    pub object: Option<String>,
}

/// Sizing statistics of a slice report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceStats {
    /// Instructions in the program.
    pub instructions: usize,
    /// Instructions in the slice.
    pub sliced: usize,
    /// Cross-context edges the slice traversed.
    pub cross_edges: usize,
}

/// The serializable result of `sentomist slice`: the backward slice of
/// the seed pcs with per-instruction and per-edge source evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceReport {
    /// The seed pcs, sorted.
    pub seeds: Vec<u16>,
    /// The sliced instructions, ascending by pc.
    pub instructions: Vec<SlicedInstruction>,
    /// The traversed cross-context edges, sorted by `(read_pc, write_pc)`.
    pub cross_edges: Vec<CrossEdgeReport>,
    /// Sizing statistics.
    pub stats: SliceStats,
}

/// Renders an edge with the program's source evidence attached.
pub fn cross_edge_report(program: &Program, edge: &CrossDep) -> CrossEdgeReport {
    CrossEdgeReport {
        write_pc: edge.write_pc,
        write_source_line: program.source_line(edge.write_pc),
        write_routine: program.enclosing_label(edge.write_pc).map(str::to_string),
        writer_context: edge.writer.describe(program),
        read_pc: edge.read_pc,
        read_source_line: program.source_line(edge.read_pc),
        read_routine: program.enclosing_label(edge.read_pc).map(str::to_string),
        reader_context: edge.reader.describe(program),
        object: edge.object.clone(),
    }
}

/// Builds the full serializable slice report for `seeds`.
///
/// # Errors
///
/// Any [`SliceError`] from [`DependenceGraph::backward_slice`].
pub fn slice_report(program: &Program, seeds: &[u16]) -> Result<SliceReport, SliceError> {
    let graph = DependenceGraph::build(program);
    let slice = graph.backward_slice(seeds)?;
    Ok(SliceReport {
        seeds: slice.seeds.clone(),
        instructions: slice
            .pcs
            .iter()
            .map(|&pc| SlicedInstruction {
                pc,
                source_line: program.source_line(pc),
                routine: program.enclosing_label(pc).map(str::to_string),
            })
            .collect(),
        cross_edges: slice
            .cross
            .iter()
            .map(|e| cross_edge_report(program, e))
            .collect(),
        stats: SliceStats {
            instructions: program.len(),
            sliced: slice.pcs.len(),
            cross_edges: slice.cross.len(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> (Program, DependenceGraph) {
        let p = tinyvm::assemble(src).unwrap();
        let g = DependenceGraph::build(&p);
        (p, g)
    }

    const SHARED: &str = "\
.handler ADC on_adc
.task consume
.data buf 1
.data flag 1
main:
 ldi r1, 1
 out ADC_CTRL, r1
 ret
on_adc:
 in r1, ADC_DATA
 sta buf, r1
 ldi r2, 1
 sta flag, r2
 post consume
 reti
consume:
 lda r1, flag
 cmpi r1, 1
 brne done
 lda r2, buf
 out RADIO_TX_PUSH, r2
done:
 ret
";

    #[test]
    fn register_chain_links_use_to_def() {
        let (p, g) = graph_of(SHARED);
        // `out RADIO_TX_PUSH, r2` uses r2 defined by `lda r2, buf`.
        let lda_buf = p.label("consume").unwrap() + 3;
        let out_push = lda_buf + 1;
        assert!(g.deps_of(out_push).contains(&lda_buf));
    }

    #[test]
    fn flags_chain_links_branch_to_compare_to_guard_load() {
        let (p, g) = graph_of(SHARED);
        let consume = p.label("consume").unwrap();
        let (lda_flag, cmpi, brne) = (consume, consume + 1, consume + 2);
        assert!(g.deps_of(brne).contains(&cmpi));
        assert!(g.deps_of(cmpi).contains(&lda_flag));
    }

    #[test]
    fn cross_context_edges_connect_handler_writes_to_task_reads() {
        let (p, g) = graph_of(SHARED);
        let sta_buf = p.label("on_adc").unwrap() + 1;
        let lda_buf = p.label("consume").unwrap() + 3;
        let edge = g
            .cross_edges()
            .iter()
            .find(|e| e.write_pc == sta_buf && e.read_pc == lda_buf)
            .expect("missing handler-write → task-read edge");
        assert_eq!(edge.object.as_deref(), Some("buf"));
        assert!(edge.writer.is_irq());
        assert!(edge.reader.is_task());
    }

    #[test]
    fn backward_slice_crosses_contexts() {
        let (p, g) = graph_of(SHARED);
        let out_push = p.label("consume").unwrap() + 4;
        let slice = g.backward_slice(&[out_push]).unwrap();
        let sta_buf = p.label("on_adc").unwrap() + 1;
        let in_adc = p.label("on_adc").unwrap();
        assert!(slice.contains(sta_buf), "handler store missing: {slice:?}");
        assert!(slice.contains(in_adc), "handler load missing");
        assert!(!slice.cross.is_empty());
    }

    #[test]
    fn slice_errors_are_typed() {
        let (p, g) = graph_of(SHARED);
        assert_eq!(g.backward_slice(&[]), Err(SliceError::EmptySeeds));
        let len = p.len();
        assert_eq!(
            g.backward_slice(&[len as u16]),
            Err(SliceError::PcOutOfRange {
                pc: len as u16,
                len
            })
        );
    }

    #[test]
    fn unreachable_seed_is_rejected() {
        let (p, g) = graph_of(
            "\
main:
 ret
orphan:
 nop
 ret
",
        );
        let orphan = p.label("orphan").unwrap();
        assert_eq!(
            g.backward_slice(&[orphan]),
            Err(SliceError::UnreachableSeed { pc: orphan })
        );
    }

    #[test]
    fn slices_are_monotone_under_seed_union() {
        let (p, g) = graph_of(SHARED);
        let consume = p.label("consume").unwrap();
        let a = g.backward_slice(&[consume + 4]).unwrap();
        let b = g.backward_slice(&[consume + 2]).unwrap();
        let ab = g.backward_slice(&[consume + 4, consume + 2]).unwrap();
        for pc in a.pcs.iter().chain(&b.pcs) {
            assert!(ab.contains(*pc), "union slice lost pc {pc}");
        }
    }

    #[test]
    fn report_carries_source_evidence() {
        let (p, _) = graph_of(SHARED);
        let out_push = p.label("consume").unwrap() + 4;
        let report = slice_report(&p, &[out_push]).unwrap();
        assert_eq!(report.stats.instructions, p.len());
        assert_eq!(report.stats.sliced, report.instructions.len());
        assert!(report
            .instructions
            .iter()
            .all(|i| i.source_line.is_some() && i.routine.is_some()));
        assert!(report
            .cross_edges
            .iter()
            .any(|e| e.reader_context.starts_with("task")));
    }
}
