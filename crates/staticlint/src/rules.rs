//! The interleaving rules: shared-state race detection over the CFG,
//! context reachability, and interrupt-window dataflow.
//!
//! The analysis is organized as a funnel of exemptions. For every labeled
//! data object with a *concurrent conflicting pair* (a writer and another
//! accessor in contexts that can interleave — which always involves an
//! interrupt), protection is recognized in order:
//!
//! 1. **Atomic windows** — every preemptable conflicting access sits in a
//!    proven interrupts-disabled (`cli`) window;
//! 2. **Sync flags** — single-word objects written only with constants
//!    from ≥ 2 concurrent contexts and tested by a guard somewhere are
//!    the program's handshake flags, exempt themselves;
//! 3. **Handshakes** — all conflicting accesses on one side are
//!    control-dependent on a sync-flag test (the flag serializes them).
//!
//! What survives is checked for *torn publication* (a writing path that
//! publishes only part of what the concurrent reader consumes) and
//! *cross-context read-modify-write*. On top of the access analysis sit
//! three protocol rules: guarded tasks that actively drop handler work,
//! busy flags that leak on failure paths, and posts inside handler
//! loops; plus plain unreachable-code detection.

use crate::access::{data_objects, AbsVal, Access, BlockFacts, DataObject, Guard, Loc};
use crate::cfg::Cfg;
use crate::context::{Context, ContextMap};
use crate::report::{LintReport, LintStats, Warning, WarningKind};
use tinyvm::{Op, Program};

/// Interrupt-enable lattice for the atomic-window dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IFlag {
    En,
    Dis,
    Both,
}

impl IFlag {
    fn join(self, other: IFlag) -> IFlag {
        if self == other {
            self
        } else {
            IFlag::Both
        }
    }
}

/// A guard attached to the block it terminates.
#[derive(Debug, Clone, Copy)]
struct GuardSite {
    block: usize,
    guard: Guard,
}

struct Analysis<'a> {
    program: &'a Program,
    cfg: Cfg,
    ctx: ContextMap,
    objects: Vec<DataObject>,
    facts: Vec<BlockFacts>,
    /// `istate[c][b]`: interrupt-enable state at block `b`'s entry in
    /// context `c` (`En` where unreached).
    istate: Vec<Vec<IFlag>>,
    sync_flag: Vec<bool>,
}

/// `(context index, block index, index into that block's accesses)`.
type AccessRef = (usize, usize, usize);

impl Analysis<'_> {
    fn access(&self, r: AccessRef) -> &Access {
        &self.facts[r.1].accesses[r.2]
    }

    fn context(&self, c: usize) -> &Context {
        &self.ctx.contexts[c].0
    }

    fn describe(&self, c: usize) -> String {
        self.context(c).describe(self.program)
    }

    fn object_of_word(&self, w: u16) -> Option<usize> {
        self.objects.iter().position(|o| o.contains(w))
    }

    fn object_of_loc(&self, loc: Loc) -> Option<usize> {
        match loc {
            Loc::Word(w) => self.object_of_word(w),
            Loc::Object(i) => Some(i),
            Loc::Unknown => None,
        }
    }

    /// All accesses of context `c` that land in object `oi`.
    fn ctx_accesses_to(&self, c: usize, oi: usize) -> Vec<AccessRef> {
        let mut out = Vec::new();
        for (b, reached) in self.ctx.reach[c].iter().enumerate() {
            if !reached {
                continue;
            }
            for (i, acc) in self.facts[b].accesses.iter().enumerate() {
                if self.object_of_loc(acc.loc) == Some(oi) {
                    out.push((c, b, i));
                }
            }
        }
        out
    }

    /// Guard sites reachable in context `c`.
    fn guards_in(&self, c: usize) -> Vec<GuardSite> {
        (0..self.cfg.blocks.len())
            .filter(|&b| self.ctx.reach[c][b])
            .filter_map(|b| {
                self.facts[b]
                    .guard
                    .map(|guard| GuardSite { block: b, guard })
            })
            .collect()
    }

    /// Whether guard `g` dominates block `b` in context `c`: every path
    /// from the context entry to `b` passes through the guard block.
    fn guard_dominates(&self, c: usize, g: &GuardSite, b: usize) -> bool {
        if b == g.block {
            return false;
        }
        let entry = self.ctx.contexts[c].1;
        !self.cfg.reachable_excluding(entry, g.block)[b]
    }

    /// Guards of context `c` that dominate block `b` with `b` lying
    /// exclusively on one side; yields `(site, on_eq_side)`.
    fn guards_over(&self, c: usize, b: usize) -> Vec<(GuardSite, bool)> {
        let mut out = Vec::new();
        for g in self.guards_in(c) {
            if !self.guard_dominates(c, &g, b) {
                continue;
            }
            let (eq_excl, ne_excl) = self.sides_exclusive(c, &g);
            if eq_excl[b] {
                out.push((g, true));
            } else if ne_excl[b] {
                out.push((g, false));
            }
        }
        out
    }

    /// Side-exclusive block sets of a guard: reachable from one successor
    /// and not the other, within context `c`.
    fn sides_exclusive(&self, c: usize, g: &GuardSite) -> (Vec<bool>, Vec<bool>) {
        let reach = &self.ctx.reach[c];
        let empty = vec![false; self.cfg.blocks.len()];
        let from = |side: Option<usize>| -> Vec<bool> {
            side.map_or_else(|| empty.clone(), |s| self.cfg.reachable_within(s, reach))
        };
        let eq = from(g.guard.eq_side());
        let ne = from(g.guard.ne_side());
        let eq_excl = eq.iter().zip(&ne).map(|(&a, &b)| a && !b).collect();
        let ne_excl = ne.iter().zip(&eq).map(|(&a, &b)| a && !b).collect();
        (eq_excl, ne_excl)
    }

    /// Whether an access is control-dependent on a sync-flag test in its
    /// context — the handshake exemption.
    fn guarded_by_sync_flag(&self, r: AccessRef) -> bool {
        let (c, b, _) = r;
        self.guards_over(c, b).iter().any(|(g, _)| {
            self.object_of_word(g.guard.word)
                .is_some_and(|oi| self.sync_flag[oi])
        })
    }

    /// Interrupt-enable state just before executing `pc` in context `c`.
    fn istate_at(&self, c: usize, pc: u16) -> IFlag {
        let b = self.cfg.block_of(pc);
        let mut state = self.istate[c][b];
        for p in self.cfg.blocks[b].start..pc {
            state = iflag_step(self.program.ops[p as usize], state);
        }
        state
    }

    fn routine_of(&self, pc: u16) -> Option<String> {
        self.program.enclosing_label(pc).map(str::to_owned)
    }

    fn warning(&self, kind: WarningKind, pc: u16, message: String) -> Warning {
        Warning {
            kind,
            pc,
            source_line: self.program.source_line(pc),
            routine: self.routine_of(pc),
            object: None,
            contexts: Vec::new(),
            related_pcs: Vec::new(),
            message,
        }
    }
}

fn iflag_step(op: Op, state: IFlag) -> IFlag {
    match op {
        Op::Sei => IFlag::En,
        Op::Cli => IFlag::Dis,
        _ => state,
    }
}

fn iflag_states(program: &Program, cfg: &Cfg, reach: &[bool], entry_pc: u16) -> Vec<IFlag> {
    let n = cfg.blocks.len();
    let mut entry: Vec<Option<IFlag>> = vec![None; n];
    if n == 0 {
        return Vec::new();
    }
    let start = cfg.block_of(entry_pc);
    entry[start] = Some(IFlag::En);
    let mut work = vec![start];
    while let Some(b) = work.pop() {
        // Only blocks with a seeded entry state are ever pushed; a bare
        // `continue` keeps the pass panic-free regardless.
        let Some(mut state) = entry[b] else { continue };
        for pc in cfg.blocks[b].pcs() {
            state = iflag_step(program.ops[pc as usize], state);
        }
        for &s in &cfg.blocks[b].succs {
            if !reach[s] {
                continue;
            }
            let joined = entry[s].map_or(state, |old| old.join(state));
            if entry[s] != Some(joined) {
                entry[s] = Some(joined);
                work.push(s);
            }
        }
    }
    entry.into_iter().map(|s| s.unwrap_or(IFlag::En)).collect()
}

/// Classifies the program's sync flags: single-word objects, tested by a
/// guard somewhere, written only with constants, from at least two
/// contexts forming a concurrent pair.
fn compute_sync_flags(a: &Analysis<'_>) -> Vec<bool> {
    a.objects
        .iter()
        .enumerate()
        .map(|(oi, obj)| {
            if obj.size != 1 {
                return false;
            }
            let tested = (0..a.ctx.contexts.len())
                .any(|c| a.guards_in(c).iter().any(|g| g.guard.word == obj.start));
            if !tested {
                return false;
            }
            let mut writer_ctxs: Vec<usize> = Vec::new();
            let mut stores = 0usize;
            for c in 0..a.ctx.contexts.len() {
                for r in a.ctx_accesses_to(c, oi) {
                    let acc = a.access(r);
                    if !acc.write {
                        continue;
                    }
                    if !matches!(acc.value, AbsVal::Const(_)) {
                        return false;
                    }
                    stores += 1;
                    if !writer_ctxs.contains(&c) {
                        writer_ctxs.push(c);
                    }
                }
            }
            stores > 0
                && writer_ctxs.iter().any(|&x| {
                    writer_ctxs
                        .iter()
                        .any(|&y| x != y && a.context(x).concurrent_with(a.context(y)))
                })
        })
        .collect()
}

/// Words of `obj` the accessor context reads (`None` = reads nothing).
fn reader_word_mask(a: &Analysis<'_>, refs: &[AccessRef], obj: &DataObject) -> Option<u64> {
    let mut mask = 0u64;
    let mut any = false;
    for &r in refs {
        let acc = a.access(r);
        if acc.write {
            continue;
        }
        any = true;
        match acc.loc {
            Loc::Word(w) if obj.contains(w) && obj.size <= 64 => {
                mask |= 1 << (w - obj.start);
            }
            _ => {
                mask = full_mask(obj.size);
            }
        }
    }
    any.then_some(mask)
}

fn full_mask(size: u16) -> u64 {
    if size >= 64 {
        u64::MAX
    } else {
        (1u64 << size) - 1
    }
}

/// Must/may word-fill dataflow of one writer context over one object:
/// returns `true` when some exit is reachable where the object may have
/// been written but the must-written words don't cover `needed`.
fn publishes_torn(a: &Analysis<'_>, writer: usize, oi: usize, needed: u64) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    struct Fill {
        may: bool,
        must: u64,
    }
    if a.objects[oi].size > 64 {
        return false;
    }
    let obj = &a.objects[oi];
    let reach = &a.ctx.reach[writer];
    let n = a.cfg.blocks.len();
    let transfer = |b: usize, mut f: Fill| -> Fill {
        for acc in &a.facts[b].accesses {
            if !acc.write {
                continue;
            }
            match acc.loc {
                Loc::Word(w) if obj.contains(w) => {
                    f.may = true;
                    f.must |= 1 << (w - obj.start);
                }
                Loc::Object(i) if i == oi => f.may = true,
                _ => {}
            }
        }
        f
    };
    // Path-sensitive state sets per block: a plain must-AND join would
    // let a non-writing path that rejoins a complete writing path fake a
    // torn exit. States along any path only grow, so the sets stay tiny;
    // a cap bails out conservatively (no warning) on pathological CFGs.
    let mut states: Vec<Vec<Fill>> = vec![Vec::new(); n];
    let start = a.cfg.block_of(a.ctx.contexts[writer].1);
    let mut work: Vec<(usize, Fill)> = vec![(
        start,
        Fill {
            may: false,
            must: 0,
        },
    )];
    while let Some((b, s)) = work.pop() {
        if states[b].contains(&s) {
            continue;
        }
        if states[b].len() > 256 {
            return false;
        }
        states[b].push(s);
        let out = transfer(b, s);
        if a.cfg.is_exit(b) && out.may && (out.must & needed) != needed {
            return true;
        }
        for &succ in &a.cfg.blocks[b].succs {
            if reach[succ] {
                work.push((succ, out));
            }
        }
    }
    false
}

/// Torn shared writes and cross-context read-modify-writes, behind the
/// atomic-window / sync-flag / handshake exemption funnel.
fn shared_object_rules(a: &Analysis<'_>, warnings: &mut Vec<Warning>) {
    let nctx = a.ctx.contexts.len();
    for (oi, obj) in a.objects.iter().enumerate() {
        if a.sync_flag[oi] {
            continue;
        }
        let per_ctx: Vec<Vec<AccessRef>> = (0..nctx).map(|c| a.ctx_accesses_to(c, oi)).collect();
        let mut emitted = false;
        for writer in 0..nctx {
            if emitted {
                break;
            }
            if !per_ctx[writer].iter().any(|&r| a.access(r).write) {
                continue;
            }
            for reader in 0..nctx {
                if reader == writer
                    || per_ctx[reader].is_empty()
                    || !a.context(writer).concurrent_with(a.context(reader))
                {
                    continue;
                }
                // Exemption 1: every access of a preemptable victim side
                // sits in an interrupts-disabled window.
                let protected = [(writer, reader), (reader, writer)]
                    .into_iter()
                    .all(|(p, v)| {
                        !a.context(p).preempts(a.context(v))
                            || per_ctx[v]
                                .iter()
                                .all(|&r| a.istate_at(v, a.access(r).pc) == IFlag::Dis)
                    });
                if protected {
                    continue;
                }
                // Exemption 3 (handshake; 2 is the sync-flag skip above):
                // one side entirely serialized behind a sync-flag test.
                let writes_guarded = per_ctx[writer]
                    .iter()
                    .filter(|&&r| a.access(r).write)
                    .all(|&r| a.guarded_by_sync_flag(r));
                let reads_guarded = per_ctx[reader].iter().all(|&r| a.guarded_by_sync_flag(r));
                if writes_guarded || reads_guarded {
                    continue;
                }
                let Some(needed) = reader_word_mask(a, &per_ctx[reader], obj) else {
                    continue;
                };
                if !publishes_torn(a, writer, oi, needed) {
                    continue;
                }
                let write_pcs: Vec<u16> = per_ctx[writer]
                    .iter()
                    .filter(|&&r| a.access(r).write)
                    .map(|&r| a.access(r).pc)
                    .collect();
                let Some(&anchor) = write_pcs.iter().min() else {
                    continue;
                };
                let mut related: Vec<u16> = write_pcs;
                related.extend(
                    per_ctx[reader]
                        .iter()
                        .filter(|&&r| !a.access(r).write)
                        .map(|&r| a.access(r).pc),
                );
                related.sort_unstable();
                related.dedup();
                let mut w = a.warning(
                    WarningKind::UnprotectedSharedWrite,
                    anchor,
                    format!(
                        "`{}` is written by {} and read by {} with no atomic window or \
                         handshake, and a writing path publishes it only partially",
                        obj.name,
                        a.describe(writer),
                        a.describe(reader)
                    ),
                );
                w.object = Some(obj.name.clone());
                w.contexts = vec![a.describe(writer), a.describe(reader)];
                w.related_pcs = related;
                warnings.push(w);
                emitted = true;
                break;
            }
        }
        // Read-modify-write sites on this object, preemptable by a
        // concurrent writer.
        for c in 0..nctx {
            for &r in &per_ctx[c] {
                let acc = a.access(r);
                let (Some(w), Loc::Word(lw), true) = (acc.rmw_of, acc.loc, acc.write) else {
                    continue;
                };
                if w != lw {
                    continue;
                }
                // State at the load that began the RMW (conservative:
                // the last same-word load before the store).
                let load_pc = self_rmw_load_pc(&a.facts[r.1], acc.pc, w).unwrap_or(acc.pc);
                if a.istate_at(c, load_pc) == IFlag::Dis {
                    continue;
                }
                let preemptor = (0..nctx).find(|&d| {
                    d != c
                        && a.context(d).preempts(a.context(c))
                        && per_ctx[d].iter().any(|&rr| a.access(rr).write)
                });
                let Some(d) = preemptor else { continue };
                let mut warn = a.warning(
                    WarningKind::RmwAcrossContexts,
                    acc.pc,
                    format!(
                        "read-modify-write of `{}` in {} can be preempted by {}, \
                         which also writes it",
                        obj.name,
                        a.describe(c),
                        a.describe(d)
                    ),
                );
                warn.object = Some(obj.name.clone());
                warn.contexts = vec![a.describe(c), a.describe(d)];
                warn.related_pcs = vec![load_pc, acc.pc];
                warn.related_pcs.dedup();
                warnings.push(warn);
            }
        }
    }
}

fn self_rmw_load_pc(facts: &BlockFacts, store_pc: u16, word: u16) -> Option<u16> {
    facts
        .accesses
        .iter()
        .filter(|acc| !acc.write && acc.pc < store_pc && acc.loc == Loc::Word(word))
        .map(|acc| acc.pc)
        .next_back()
}

/// Guarded tasks that discard handler-produced work on the reject path
/// without recording anything another context can see.
fn active_drop_rule(a: &Analysis<'_>, warnings: &mut Vec<Warning>) {
    let nctx = a.ctx.contexts.len();
    for task in 0..nctx {
        let Context::Task(ti) = *a.context(task) else {
            continue;
        };
        for handler in 0..nctx {
            if !a.context(handler).is_irq() {
                continue;
            }
            let posts_task = (0..a.cfg.blocks.len())
                .any(|b| a.ctx.reach[handler][b] && a.facts[b].posts.iter().any(|&(_, t)| t == ti));
            if !posts_task {
                continue;
            }
            // Objects the handler produces for the task.
            let produced: Vec<usize> = (0..a.objects.len())
                .filter(|&oi| {
                    !a.sync_flag[oi]
                        && a.ctx_accesses_to(handler, oi)
                            .iter()
                            .any(|&r| a.access(r).write)
                        && a.ctx_accesses_to(task, oi)
                            .iter()
                            .any(|&r| !a.access(r).write)
                })
                .collect();
            if produced.is_empty() {
                continue;
            }
            for g in a.guards_in(task) {
                let Some(goi) = a.object_of_word(g.guard.word) else {
                    continue;
                };
                if !a.sync_flag[goi] {
                    continue;
                }
                let (eq_excl, ne_excl) = a.sides_exclusive(task, &g);
                for (keep, drop) in [(&eq_excl, &ne_excl), (&ne_excl, &eq_excl)] {
                    if check_drop_side(a, task, &produced, keep, drop) {
                        let drop_pcs: Vec<u16> = (0..a.cfg.blocks.len())
                            .filter(|&b| drop[b])
                            .flat_map(|b| a.cfg.blocks[b].pcs())
                            .collect();
                        let Some(&anchor) = drop_pcs.iter().min() else {
                            continue;
                        };
                        let payload = &a.objects[produced[0]].name;
                        let mut w = a.warning(
                            WarningKind::ActiveDrop,
                            anchor,
                            format!(
                                "{} rejects when `{}` is busy and discards `{}` produced \
                                 by {}: the drop path records nothing any other context \
                                 can observe (active drop)",
                                a.describe(task),
                                a.objects[goi].name,
                                payload,
                                a.describe(handler)
                            ),
                        );
                        w.object = Some(payload.clone());
                        w.contexts = vec![a.describe(task), a.describe(handler)];
                        w.related_pcs = drop_pcs;
                        warnings.push(w);
                    }
                }
            }
        }
    }
}

/// The drop-side test of the active-drop rule: the keep side consumes
/// some produced object, the drop side consumes none and is inert (no
/// posts, no writes any concurrent context reads or writes).
fn check_drop_side(
    a: &Analysis<'_>,
    task: usize,
    produced: &[usize],
    keep: &[bool],
    drop: &[bool],
) -> bool {
    if !drop.iter().any(|&d| d) {
        return false;
    }
    let reads_produced = |side: &[bool]| -> bool {
        (0..a.cfg.blocks.len()).filter(|&b| side[b]).any(|b| {
            a.facts[b].accesses.iter().any(|acc| {
                !acc.write
                    && a.object_of_loc(acc.loc)
                        .is_some_and(|oi| produced.contains(&oi))
            })
        })
    };
    if !reads_produced(keep) || reads_produced(drop) {
        return false;
    }
    for b in (0..a.cfg.blocks.len()).filter(|&b| drop[b]) {
        if !a.facts[b].posts.is_empty() {
            return false;
        }
        for acc in &a.facts[b].accesses {
            if !acc.write {
                continue;
            }
            let Some(oi) = a.object_of_loc(acc.loc) else {
                return false; // unknown write: not provably inert
            };
            let visible = (0..a.ctx.contexts.len()).any(|d| {
                d != task
                    && a.context(d).concurrent_with(a.context(task))
                    && !a.ctx_accesses_to(d, oi).is_empty()
            });
            if visible {
                return false;
            }
        }
    }
    true
}

/// Busy flags that leak: acquired behind their own guard, released in
/// another context only under an ownership token, with an exit path in
/// the acquiring context that neither releases nor takes the token.
fn busy_flag_leak_rule(a: &Analysis<'_>, warnings: &mut Vec<Warning>) {
    let nctx = a.ctx.contexts.len();
    for (oi, obj) in a.objects.iter().enumerate() {
        if !a.sync_flag[oi] {
            continue;
        }
        let word = obj.start;
        for c in 0..nctx {
            for g in a.guards_in(c) {
                if g.guard.word != word {
                    continue;
                }
                let free = g.guard.k;
                let (eq_excl, ne_excl) = a.sides_exclusive(c, &g);
                // Acquire: a constant non-free store on the proceed
                // (flag == free) side, the reject side not touching the
                // flag.
                let side_writes = |side: &[bool]| -> Vec<AccessRef> {
                    a.ctx_accesses_to(c, oi)
                        .into_iter()
                        .filter(|&r| side[r.1] && a.access(r).write)
                        .collect()
                };
                let acquires: Vec<AccessRef> = side_writes(&eq_excl)
                    .into_iter()
                    .filter(|&r| {
                        a.guard_dominates(c, &g, r.1)
                            && matches!(a.access(r).value, AbsVal::Const(k) if k != free)
                    })
                    .collect();
                if acquires.is_empty() || !side_writes(&ne_excl).is_empty() {
                    continue;
                }
                // External releases must all be token-guarded.
                let Some(tokens) = release_tokens(a, c, oi, free) else {
                    continue;
                };
                if tokens.is_empty() {
                    continue;
                }
                for &acq in &acquires {
                    leak_paths(a, c, oi, free, &tokens, acq, &g, warnings);
                }
            }
        }
    }
}

/// Classifies every release of flag `oi` (store of `free`) outside
/// context `c`. Returns the ownership tokens `(word, value)` when all
/// releases are token-guarded (`W == k`, `k != 0`, `W` not the flag);
/// `None` when any release is unconditional, guarded by a default-state
/// (`k == 0`) test, or otherwise unanalyzable — those flags don't leak
/// by this protocol.
fn release_tokens(a: &Analysis<'_>, c: usize, oi: usize, free: u16) -> Option<Vec<(u16, u16)>> {
    let mut tokens: Vec<(u16, u16)> = Vec::new();
    for d in 0..a.ctx.contexts.len() {
        if d == c {
            continue;
        }
        for r in a.ctx_accesses_to(d, oi) {
            let acc = a.access(r);
            if !acc.write || !matches!(acc.value, AbsVal::Const(k) if k == free) {
                continue;
            }
            let mut token = None;
            for (h, on_eq) in a.guards_over(d, r.1) {
                if on_eq && h.guard.word != a.objects[oi].start && h.guard.k != 0 {
                    token = Some((h.guard.word, h.guard.k));
                    break;
                }
            }
            match token {
                Some(t) => {
                    if !tokens.contains(&t) {
                        tokens.push(t);
                    }
                }
                None => return None,
            }
        }
    }
    Some(tokens)
}

/// Forward dataflow from one acquire site: propagate
/// `(released, token taken)` and warn at every exit reachable with
/// neither.
#[allow(clippy::too_many_arguments)]
fn leak_paths(
    a: &Analysis<'_>,
    c: usize,
    oi: usize,
    free: u16,
    tokens: &[(u16, u16)],
    acq: AccessRef,
    guard: &GuardSite,
    warnings: &mut Vec<Warning>,
) {
    let obj = &a.objects[oi];
    let reach = &a.ctx.reach[c];
    let n = a.cfg.blocks.len();
    let step = |acc: &Access, (mut rel, mut tok): (bool, bool)| -> (bool, bool) {
        if acc.write {
            if acc.loc == Loc::Word(obj.start) && matches!(acc.value, AbsVal::Const(k) if k == free)
            {
                rel = true;
            }
            if let (Loc::Word(w), AbsVal::Const(v)) = (acc.loc, acc.value) {
                if tokens.contains(&(w, v)) {
                    tok = true;
                }
            }
        }
        (rel, tok)
    };
    // State sets per block entry (≤ 4 distinct states).
    let mut entry: Vec<Vec<(bool, bool)>> = vec![Vec::new(); n];
    let transfer = |b: usize, s: (bool, bool)| -> (bool, bool) {
        a.facts[b].accesses.iter().fold(s, |s, acc| step(acc, s))
    };
    // Seed: the rest of the acquire block after the acquire store.
    let acq_block = acq.1;
    let seed = a.facts[acq_block]
        .accesses
        .iter()
        .filter(|acc| acc.pc > a.access(acq).pc)
        .fold((false, false), |s, acc| step(acc, s));
    let mut exits: Vec<(usize, (bool, bool))> = Vec::new();
    if a.cfg.is_exit(acq_block) && seed == (false, false) {
        exits.push((acq_block, seed));
    }
    let mut work: Vec<(usize, (bool, bool))> = a.cfg.blocks[acq_block]
        .succs
        .iter()
        .filter(|&&s| reach[s])
        .map(|&s| (s, seed))
        .collect();
    while let Some((b, s)) = work.pop() {
        if entry[b].contains(&s) {
            continue;
        }
        entry[b].push(s);
        let out = transfer(b, s);
        if a.cfg.is_exit(b) && out == (false, false) {
            exits.push((b, out));
        }
        for &succ in &a.cfg.blocks[b].succs {
            if reach[succ] {
                work.push((succ, out));
            }
        }
    }
    exits.sort_unstable_by_key(|&(b, _)| b);
    exits.dedup_by_key(|&mut (b, _)| b);
    for (b, _) in exits {
        let pc = a.cfg.blocks[b].end - 1;
        let token_names: Vec<String> = tokens
            .iter()
            .map(|&(w, _)| {
                a.object_of_word(w).map_or_else(
                    || format!("word {w}"),
                    |t| format!("`{}`", a.objects[t].name),
                )
            })
            .collect();
        let mut w = a.warning(
            WarningKind::BusyFlagLeak,
            pc,
            format!(
                "{} acquires `{}` but this exit neither releases it nor records \
                 ownership in {}: the flag leaks and the protocol wedges",
                a.describe(c),
                obj.name,
                token_names.join("/")
            ),
        );
        w.object = Some(obj.name.clone());
        w.contexts = vec![a.describe(c)];
        let mut related: Vec<u16> = a.cfg.blocks[b].pcs().collect();
        related.push(a.access(acq).pc);
        related.push(guard.guard.pc);
        related.sort_unstable();
        related.dedup();
        w.related_pcs = related;
        warnings.push(w);
    }
}

/// Posts inside loops of interrupt handlers.
fn post_in_loop_rule(a: &Analysis<'_>, warnings: &mut Vec<Warning>) {
    let mut seen: Vec<u16> = Vec::new();
    for c in 0..a.ctx.contexts.len() {
        if !a.context(c).is_irq() {
            continue;
        }
        for b in 0..a.cfg.blocks.len() {
            if !a.ctx.reach[c][b]
                || a.facts[b].posts.is_empty()
                || !a.cfg.in_cycle(b, &a.ctx.reach[c])
            {
                continue;
            }
            for &(pc, ti) in &a.facts[b].posts {
                if seen.contains(&pc) {
                    continue;
                }
                seen.push(pc);
                let task = a
                    .program
                    .tasks
                    .get(ti)
                    .map_or_else(|| format!("task {ti}"), |t| t.name.clone());
                let mut w = a.warning(
                    WarningKind::PostInLoop,
                    pc,
                    format!(
                        "{} posts `{task}` inside a loop: one activation can flood \
                         the task queue",
                        a.describe(c)
                    ),
                );
                w.contexts = vec![a.describe(c)];
                warnings.push(w);
            }
        }
    }
}

/// Contiguous instruction ranges unreachable from every context.
fn unreachable_rule(a: &Analysis<'_>, warnings: &mut Vec<Warning>) {
    let mut run: Option<(u16, u16)> = None;
    let flush = |run: &mut Option<(u16, u16)>, warnings: &mut Vec<Warning>| {
        if let Some((start, end)) = run.take() {
            let mut w = a.warning(
                WarningKind::UnreachableCode,
                start,
                format!(
                    "{} instruction(s) unreachable from main, every task, and every \
                     interrupt vector",
                    end - start
                ),
            );
            w.related_pcs = (start..end).collect();
            warnings.push(w);
        }
    };
    for (b, block) in a.cfg.blocks.iter().enumerate() {
        if a.ctx.reachable_anywhere(b) {
            flush(&mut run, warnings);
        } else {
            run = match run {
                Some((start, _)) => Some((start, block.end)),
                None => Some((block.start, block.end)),
            };
        }
    }
    flush(&mut run, warnings);
}

/// Runs the full static analysis over one assembled program.
pub fn lint(program: &Program) -> LintReport {
    let cfg = Cfg::build(program);
    let ctx = ContextMap::build(program, &cfg);
    let objects = data_objects(program);
    let n = program.len();
    let mut facts: Vec<BlockFacts> = cfg
        .blocks
        .iter()
        .map(|b| crate::access::eval_block(program, &objects, b))
        .collect();
    for (i, b) in cfg.blocks.iter().enumerate() {
        if let Some(g) = &mut facts[i].guard {
            if let Op::Br(_, t) = program.ops[b.end as usize - 1] {
                g.fall = ((b.end as usize) < n).then(|| cfg.block_of(b.end));
                g.target = ((t as usize) < n).then(|| cfg.block_of(t));
            }
        }
    }
    let istate = ctx
        .contexts
        .iter()
        .enumerate()
        .map(|(c, &(_, entry))| iflag_states(program, &cfg, &ctx.reach[c], entry))
        .collect();
    let mut analysis = Analysis {
        program,
        cfg,
        ctx,
        objects,
        facts,
        istate,
        sync_flag: Vec::new(),
    };
    analysis.sync_flag = compute_sync_flags(&analysis);

    let mut warnings = Vec::new();
    shared_object_rules(&analysis, &mut warnings);
    active_drop_rule(&analysis, &mut warnings);
    busy_flag_leak_rule(&analysis, &mut warnings);
    post_in_loop_rule(&analysis, &mut warnings);
    unreachable_rule(&analysis, &mut warnings);
    warnings.sort_by(|x, y| x.pc.cmp(&y.pc).then(x.kind.cmp(&y.kind)));
    warnings.dedup();

    LintReport {
        stats: LintStats {
            instructions: n,
            blocks: analysis.cfg.blocks.len(),
            contexts: analysis.ctx.contexts.len(),
            data_objects: analysis.objects.len(),
        },
        warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(src: &str) -> LintReport {
        lint(&tinyvm::assemble(src).expect("test program assembles"))
    }

    fn kinds(report: &LintReport) -> Vec<WarningKind> {
        report.warnings.iter().map(|w| w.kind).collect()
    }

    #[test]
    fn unprotected_rmw_is_flagged() {
        let report = lint_src(
            "\
.data count 1
.task t
.handler TIMER0 h
main:
 post t
 halt
t:
 lda r1, count
 addi r1, 1
 sta count, r1
 ret
h:
 ldi r2, 5
 sta count, r2
 reti
",
        );
        assert_eq!(kinds(&report), vec![WarningKind::RmwAcrossContexts]);
        let w = &report.warnings[0];
        assert_eq!(w.object.as_deref(), Some("count"));
        assert_eq!(w.routine.as_deref(), Some("t"));
    }

    #[test]
    fn cli_window_protects_rmw() {
        let report = lint_src(
            "\
.data count 1
.task t
.handler TIMER0 h
main:
 post t
 halt
t:
 cli
 lda r1, count
 addi r1, 1
 sta count, r1
 sei
 ret
h:
 ldi r2, 5
 sta count, r2
 reti
",
        );
        assert!(report.warnings.is_empty(), "got: {:?}", kinds(&report));
    }

    /// The handler publishes word 0 always but word 1 only on one path:
    /// a reader consuming both words can observe the torn state.
    const TORN_BODY: &str = "\
main:
 halt
reader:
 ldi r3, buf
 ld r1, [r3]
 ld r2, [r3+1]
 ret
rx:
 ldi r4, 7
 sta buf, r4
 cmpi r4, 9
 breq done
 ldi r5, buf
 st [r5+1], r4
done:
 reti
";

    #[test]
    fn torn_publication_is_flagged() {
        let report = lint_src(&format!(
            ".data buf 2\n.task reader\n.handler RX rx\n{TORN_BODY}"
        ));
        assert_eq!(kinds(&report), vec![WarningKind::UnprotectedSharedWrite]);
        let w = &report.warnings[0];
        assert_eq!(w.object.as_deref(), Some("buf"));
        assert_eq!(w.routine.as_deref(), Some("rx"));
        assert!(w.contexts.iter().any(|c| c.contains("RX")));
    }

    #[test]
    fn sync_flag_handshake_exempts_guarded_writes() {
        // Same torn shape, but every handler write is control-dependent
        // on a sync-flag test and the reader clears the flag: handshake.
        let report = lint_src(
            "\
.data buf 2
.data ready 1
.task reader
.handler RX rx
main:
 halt
reader:
 lda r1, ready
 cmpi r1, 1
 brne out
 ldi r3, buf
 ld r1, [r3]
 ld r2, [r3+1]
 ldi r6, 0
 sta ready, r6
out:
 ret
rx:
 lda r6, ready
 cmpi r6, 0
 brne done
 ldi r4, 7
 sta buf, r4
 cmpi r4, 9
 breq done
 ldi r5, buf
 st [r5+1], r4
 ldi r6, 1
 sta ready, r6
done:
 reti
",
        );
        assert!(report.warnings.is_empty(), "got: {:?}", report.warnings);
    }

    #[test]
    fn post_inside_handler_loop_is_flagged() {
        let report = lint_src(
            "\
.task t
.handler TIMER0 h
main:
 halt
t:
 ret
h:
loop:
 post t
 subi r1, 1
 brne loop
 reti
",
        );
        assert_eq!(kinds(&report), vec![WarningKind::PostInLoop]);
    }

    #[test]
    fn dead_code_is_reported_once_per_run() {
        let report = lint_src(
            "\
main:
 halt
dead:
 nop
 nop
 halt
",
        );
        assert_eq!(kinds(&report), vec![WarningKind::UnreachableCode]);
        let w = &report.warnings[0];
        assert_eq!(w.pc, 1);
        assert_eq!(w.related_pcs, vec![1, 2, 3]);
    }
}
