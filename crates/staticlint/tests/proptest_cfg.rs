//! Property tests for basic-block decoding: on arbitrary generated
//! programs, the CFG's blocks must partition the instruction range
//! exactly, every control-transfer boundary must start a block, and
//! nothing a real emulated run executes may fall outside the statically
//! reachable region.

use proptest::prelude::*;
use staticlint::{Cfg, ContextMap};
use std::sync::Arc;
use tinyvm::devices::NodeConfig;
use tinyvm::node::Node;
use tinyvm::{Op, Program};

/// One generated instruction; control transfers carry a raw target index
/// reduced modulo the program length at render time, so every target is
/// a valid labeled instruction.
#[derive(Debug, Clone, Copy)]
enum GenOp {
    Nop,
    Ldi(u16),
    Cmpi(u16),
    Jmp(u16),
    Brne(u16),
    Breq(u16),
    Call(u16),
    Halt,
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        Just(GenOp::Nop),
        any::<u16>().prop_map(GenOp::Ldi),
        any::<u16>().prop_map(GenOp::Cmpi),
        any::<u16>().prop_map(GenOp::Jmp),
        any::<u16>().prop_map(GenOp::Brne),
        any::<u16>().prop_map(GenOp::Breq),
        any::<u16>().prop_map(GenOp::Call),
        Just(GenOp::Halt),
    ]
}

fn maybe_u16() -> impl Strategy<Value = Option<u16>> {
    prop_oneof![Just(None), any::<u16>().prop_map(Some)]
}

/// Renders the generated ops as assembly with a label before every
/// instruction (so any index is a legal target), a trailing `halt`, and
/// optionally a task and a handler entry somewhere in the body.
fn render(ops: &[GenOp], task_at: Option<u16>, handler_at: Option<u16>) -> String {
    let total = ops.len() as u16 + 1;
    let mut src = String::new();
    if let Some(t) = task_at {
        src.push_str(&format!(".task L{}\n", t % total));
    }
    if let Some(h) = handler_at {
        src.push_str(&format!(".handler TIMER0 L{}\n", h % total));
    }
    src.push_str("main:\n");
    for (i, op) in ops.iter().enumerate() {
        src.push_str(&format!("L{i}:\n"));
        let line = match *op {
            GenOp::Nop => " nop".to_string(),
            GenOp::Ldi(v) => format!(" ldi r1, {v}"),
            GenOp::Cmpi(v) => format!(" cmpi r1, {v}"),
            GenOp::Jmp(t) => format!(" jmp L{}", t % total),
            GenOp::Brne(t) => format!(" brne L{}", t % total),
            GenOp::Breq(t) => format!(" breq L{}", t % total),
            GenOp::Call(t) => format!(" call L{}", t % total),
            GenOp::Halt => " halt".to_string(),
        };
        src.push_str(&line);
        src.push('\n');
    }
    src.push_str(&format!("L{}:\n halt\n", ops.len()));
    src
}

fn is_terminator(op: &Op) -> bool {
    matches!(
        op,
        Op::Jmp(_) | Op::Br(_, _) | Op::Call(_) | Op::Ret | Op::Reti | Op::Halt
    )
}

fn transfer_target(op: &Op) -> Option<u16> {
    match op {
        Op::Jmp(t) | Op::Br(_, t) | Op::Call(t) => Some(*t),
        _ => None,
    }
}

fn check_partition(program: &Program, cfg: &Cfg) -> Result<(), TestCaseError> {
    let n = program.len();
    prop_assert!(!cfg.blocks.is_empty());
    prop_assert_eq!(cfg.blocks[0].start, 0);
    prop_assert_eq!(cfg.blocks.last().unwrap().end as usize, n);
    // Contiguous, non-empty, exactly covering 0..n.
    let mut covered = vec![0u8; n];
    for (i, b) in cfg.blocks.iter().enumerate() {
        prop_assert!(b.start < b.end, "empty block {i}");
        if i + 1 < cfg.blocks.len() {
            prop_assert_eq!(b.end, cfg.blocks[i + 1].start, "gap after block {}", i);
        }
        for pc in b.pcs() {
            covered[pc as usize] += 1;
            prop_assert_eq!(cfg.block_of(pc), i, "block_of disagrees at pc {}", pc);
        }
        for &s in &b.succs {
            prop_assert!(s < cfg.blocks.len(), "dangling successor of block {i}");
        }
        let mut dedup = b.succs.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), b.succs.len(), "duplicate successors");
        // Only the last instruction of a block may transfer control.
        for pc in b.start..b.end - 1 {
            prop_assert!(
                !is_terminator(&program.ops[pc as usize]),
                "terminator at pc {pc} is not block-final"
            );
        }
    }
    prop_assert!(covered.iter().all(|&c| c == 1), "partition violated");
    // Every in-range transfer target and every post-terminator
    // continuation is a block start.
    let start_set: Vec<bool> = {
        let mut s = vec![false; n];
        for b in &cfg.blocks {
            s[b.start as usize] = true;
        }
        s
    };
    for (pc, op) in program.ops.iter().enumerate() {
        if let Some(t) = transfer_target(op) {
            if (t as usize) < n {
                prop_assert!(start_set[t as usize], "target {t} of pc {pc} not a leader");
            }
        }
        if is_terminator(op) && pc + 1 < n {
            prop_assert!(start_set[pc + 1], "fall-through of pc {pc} not a leader");
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn blocks_partition_generated_programs(
        ops in prop::collection::vec(gen_op(), 1..60),
        task_at in maybe_u16(),
        handler_at in maybe_u16(),
    ) {
        let src = render(&ops, task_at, handler_at);
        let program = tinyvm::assemble(&src).expect("generated source assembles");
        let cfg = Cfg::build(&program);
        check_partition(&program, &cfg)?;
        // Entry points are leaders too.
        prop_assert_eq!(cfg.blocks[cfg.block_of(program.entry)].start, program.entry);
        for task in &program.tasks {
            prop_assert_eq!(cfg.blocks[cfg.block_of(task.entry)].start, task.entry);
        }
        for v in program.vectors.iter().flatten() {
            prop_assert_eq!(cfg.blocks[cfg.block_of(*v)].start, *v);
        }
    }

    #[test]
    fn executed_instructions_stay_inside_reachable_blocks(
        ops in prop::collection::vec(gen_op(), 1..40),
    ) {
        let src = render(&ops, None, None);
        let program = Arc::new(tinyvm::assemble(&src).expect("generated source assembles"));
        let cfg = Cfg::build(&program);
        let ctx = ContextMap::build(&program, &cfg);

        let mut node = Node::new(program.clone(), NodeConfig::default());
        let mut rec = sentomist_trace::Recorder::new(program.len());
        // Runaway call chains may overflow the stack — the executions
        // recorded up to the fault still count.
        let _ = node.run(30_000, &mut rec);
        let trace = rec.into_trace();

        let mut counts = vec![0u64; program.len()];
        for seg in &trace.segments {
            for (c, &v) in counts.iter_mut().zip(seg.iter()) {
                *c += u64::from(v);
            }
        }
        for (pc, &count) in counts.iter().enumerate() {
            if count > 0 {
                prop_assert!(
                    ctx.reachable_anywhere(cfg.block_of(pc as u16)),
                    "pc {} executed but statically unreachable", pc
                );
            }
        }
    }
}
