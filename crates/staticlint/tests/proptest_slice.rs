//! Property tests for backward dependence slicing: on arbitrary
//! generated programs, every sliced pc must lie in a block some context
//! reaches (no dependence on statically dead code), slicing must be
//! deterministic, and slices must be monotone under seed-set union —
//! the contracts `DependenceGraph::backward_slice` documents.

use proptest::prelude::*;
use staticlint::DependenceGraph;
use tinyvm::Program;

/// One generated instruction; control transfers carry a raw target index
/// reduced modulo the program length at render time, so every target is
/// a valid labeled instruction. Mirrors the generator in
/// `proptest_cfg.rs`, plus shared-memory ops so cross-context edges and
/// register chains both get exercised.
#[derive(Debug, Clone, Copy)]
enum GenOp {
    Nop,
    Ldi(u16),
    Cmpi(u16),
    Jmp(u16),
    Brne(u16),
    Call(u16),
    LdaBuf,
    StaBuf,
    LdaFlag,
    StaFlag,
    Halt,
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        Just(GenOp::Nop),
        any::<u16>().prop_map(GenOp::Ldi),
        any::<u16>().prop_map(GenOp::Cmpi),
        any::<u16>().prop_map(GenOp::Jmp),
        any::<u16>().prop_map(GenOp::Brne),
        any::<u16>().prop_map(GenOp::Call),
        Just(GenOp::LdaBuf),
        Just(GenOp::StaBuf),
        Just(GenOp::LdaFlag),
        Just(GenOp::StaFlag),
        Just(GenOp::Halt),
    ]
}

/// Renders the generated ops as assembly with a label before every
/// instruction, a trailing `halt`, and optionally a task and a handler
/// entry somewhere in the body — the same shape `proptest_cfg.rs` uses.
fn render(ops: &[GenOp], task_at: Option<u16>, handler_at: Option<u16>) -> String {
    let total = ops.len() as u16 + 1;
    let mut src = String::from(".data buf 1\n.data flag 1\n");
    if let Some(t) = task_at {
        src.push_str(&format!(".task L{}\n", t % total));
    }
    if let Some(h) = handler_at {
        src.push_str(&format!(".handler TIMER0 L{}\n", h % total));
    }
    src.push_str("main:\n");
    for (i, op) in ops.iter().enumerate() {
        src.push_str(&format!("L{i}:\n"));
        let line = match *op {
            GenOp::Nop => " nop".to_string(),
            GenOp::Ldi(v) => format!(" ldi r1, {v}"),
            GenOp::Cmpi(v) => format!(" cmpi r1, {v}"),
            GenOp::Jmp(t) => format!(" jmp L{}", t % total),
            GenOp::Brne(t) => format!(" brne L{}", t % total),
            GenOp::Call(t) => format!(" call L{}", t % total),
            GenOp::LdaBuf => " lda r2, buf".to_string(),
            GenOp::StaBuf => " sta buf, r1".to_string(),
            GenOp::LdaFlag => " lda r3, flag".to_string(),
            GenOp::StaFlag => " sta flag, r1".to_string(),
            GenOp::Halt => " halt".to_string(),
        };
        src.push_str(&line);
        src.push('\n');
    }
    src.push_str(&format!("L{}:\n halt\n", ops.len()));
    src
}

fn maybe_u16() -> impl Strategy<Value = Option<u16>> {
    prop_oneof![Just(None), any::<u16>().prop_map(Some)]
}

/// Maps raw generated indices onto the program's sliceable pcs. The
/// entry instruction is always reachable, so the pool is never empty.
fn seed_pool(program: &Program, graph: &DependenceGraph) -> Vec<u16> {
    (0..program.len() as u16)
        .filter(|&pc| graph.valid_seed(pc))
        .collect()
}

proptest! {
    #[test]
    fn sliced_pcs_are_reachable_and_slices_deterministic(
        ops in prop::collection::vec(gen_op(), 1..50),
        task_at in maybe_u16(),
        handler_at in maybe_u16(),
        raw_seeds in prop::collection::vec(any::<u16>(), 1..5),
    ) {
        let src = render(&ops, task_at, handler_at);
        let program = tinyvm::assemble(&src).expect("generated source assembles");
        let graph = DependenceGraph::build(&program);
        let pool = seed_pool(&program, &graph);
        prop_assert!(!pool.is_empty(), "entry must be sliceable");
        let seeds: Vec<u16> = raw_seeds
            .iter()
            .map(|&r| pool[r as usize % pool.len()])
            .collect();

        let slice = graph.backward_slice(&seeds).unwrap();
        // Seeds appear in their own slice.
        for &s in &seeds {
            prop_assert!(slice.contains(s), "seed {s} missing from its slice");
        }
        // Every sliced pc lies in a block some context reaches — the
        // slice never asserts dependence on statically dead code.
        for &pc in &slice.pcs {
            prop_assert!(
                graph.valid_seed(pc),
                "sliced pc {pc} is unreachable from every context"
            );
        }
        // Outputs are sorted and deduplicated.
        prop_assert!(slice.pcs.windows(2).all(|w| w[0] < w[1]), "pcs not strictly sorted");
        prop_assert!(
            slice
                .cross
                .windows(2)
                .all(|w| (w[0].read_pc, w[0].write_pc) <= (w[1].read_pc, w[1].write_pc)),
            "cross edges not sorted"
        );
        // Traversed cross edges stay inside the slice.
        for e in &slice.cross {
            prop_assert!(slice.contains(e.write_pc) && slice.contains(e.read_pc));
        }
        // Deterministic: the same seeds produce the identical slice, and
        // a fresh graph of the same program agrees byte for byte.
        let again = graph.backward_slice(&seeds).unwrap();
        prop_assert_eq!(&slice, &again, "re-slicing the same graph diverged");
        let rebuilt = DependenceGraph::build(&program).backward_slice(&seeds).unwrap();
        prop_assert_eq!(&slice, &rebuilt, "rebuilding the graph diverged");
    }

    #[test]
    fn slices_are_monotone_under_seed_union(
        ops in prop::collection::vec(gen_op(), 1..50),
        task_at in maybe_u16(),
        handler_at in maybe_u16(),
        raw_a in prop::collection::vec(any::<u16>(), 1..4),
        raw_b in prop::collection::vec(any::<u16>(), 1..4),
    ) {
        let src = render(&ops, task_at, handler_at);
        let program = tinyvm::assemble(&src).expect("generated source assembles");
        let graph = DependenceGraph::build(&program);
        let pool = seed_pool(&program, &graph);
        prop_assert!(!pool.is_empty());
        let pick = |raw: &[u16]| -> Vec<u16> {
            raw.iter().map(|&r| pool[r as usize % pool.len()]).collect()
        };
        let (seeds_a, seeds_b) = (pick(&raw_a), pick(&raw_b));
        let union: Vec<u16> = seeds_a.iter().chain(&seeds_b).copied().collect();

        let a = graph.backward_slice(&seeds_a).unwrap();
        let b = graph.backward_slice(&seeds_b).unwrap();
        let ab = graph.backward_slice(&union).unwrap();
        for &pc in a.pcs.iter().chain(&b.pcs) {
            prop_assert!(ab.contains(pc), "union slice lost pc {pc}");
        }
        // And the traversed cross edges accumulate the same way.
        for e in a.cross.iter().chain(&b.cross) {
            prop_assert!(
                ab.cross.iter().any(|u| u == e),
                "union slice lost cross edge {}→{}", e.write_pc, e.read_pc
            );
        }
    }
}
