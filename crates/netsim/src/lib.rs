//! # netsim — deterministic multi-node WSN simulation
//!
//! Binds several [`tinyvm`] sensor nodes into one network: a [`Topology`]
//! of lossy, latency-bearing radio links and a conservative
//! discrete-event engine ([`NetSim`]) that keeps node clocks synchronized
//! within a lookahead window derived from the smallest link latency.
//!
//! This crate plays the role of Avrora's multi-node network simulation in
//! the Sentomist reproduction: case studies II (multi-hop forwarding) and
//! III (CTP + heartbeat contention) run on it.
//!
//! Determinism: given the same programs, node configs, topology and seeds,
//! a simulation replays bit-identically — every experiment in the
//! reproduction is exactly re-runnable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sim;
pub mod topology;

pub use sim::{Delivery, NetSim, SimError};
pub use topology::{LinkConfig, Topology, TopologyError, MIN_LINK_LATENCY};
