//! The multi-node simulation engine.
//!
//! Nodes are synchronized conservatively: only the node with the smallest
//! local cycle advances, and only up to `second_smallest + lookahead`,
//! where the lookahead is bounded by the smallest link latency. Packets a
//! node transmits are collected after each advance window and scheduled
//! into the receivers' device queues at `send + airtime + link latency`,
//! which the lookahead guarantees is never in a receiver's past.

use crate::topology::{Topology, TopologyError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use tinyvm::devices::NodeConfig;
use tinyvm::node::Node;
use tinyvm::{Packet, Program, TraceSink, VmError};

/// Slack subtracted from the lookahead to absorb a node finishing its last
/// instruction slightly past its advance limit.
const LOOKAHEAD_SLACK: u64 = 16;

/// A simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A node's program faulted.
    NodeFault {
        /// The faulting node.
        node: u16,
        /// The machine fault.
        error: VmError,
    },
    /// The number of sinks did not match the number of nodes.
    SinkCountMismatch {
        /// Nodes in the simulation.
        nodes: usize,
        /// Sinks supplied.
        sinks: usize,
    },
    /// A node was added with an id that does not equal its index.
    NodeOrder {
        /// The id the next node must carry.
        expected: u16,
        /// The id it actually carried.
        got: u16,
    },
    /// A node was added beyond the topology's declared node count.
    NodeOutOfTopology {
        /// The offending node id.
        node: u16,
        /// Nodes the topology declares.
        count: u16,
    },
    /// A node id was looked up that was never added.
    UnknownNode {
        /// The requested id.
        node: u16,
        /// Nodes added so far.
        count: usize,
    },
    /// The underlying topology was invalid.
    Topology(TopologyError),
}

impl From<TopologyError> for SimError {
    fn from(e: TopologyError) -> SimError {
        SimError::Topology(e)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NodeFault { node, error } => write!(f, "node {node} faulted: {error}"),
            SimError::SinkCountMismatch { nodes, sinks } => {
                write!(f, "{nodes} nodes but {sinks} trace sinks")
            }
            SimError::NodeOrder { expected, got } => write!(
                f,
                "node ids must be assigned in index order (expected {expected}, got {got})"
            ),
            SimError::NodeOutOfTopology { node, count } => write!(
                f,
                "node {node} exceeds the topology's declared {count} nodes"
            ),
            SimError::UnknownNode { node, count } => {
                write!(f, "no node {node} (only {count} added)")
            }
            SimError::Topology(e) => write!(f, "invalid topology: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

/// Record of one attempted packet delivery (for oracles and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Sender node.
    pub src: u16,
    /// Receiver node this record concerns (one record per receiver).
    pub to: u16,
    /// Arrival cycle at the receiver.
    pub at_cycle: u64,
    /// Whether the link dropped the packet.
    pub dropped: bool,
    /// The payload.
    pub payload: Vec<u16>,
}

/// A deterministic multi-node WSN simulation.
///
/// # Examples
///
/// ```
/// # use std::sync::Arc;
/// # use netsim::{NetSim, topology::{LinkConfig, Topology}};
/// # use tinyvm::devices::NodeConfig;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Arc::new(tinyvm::assemble("main:\n ret\n")?);
/// let topo = Topology::chain(2, LinkConfig::default())?;
/// let mut sim = NetSim::new(topo, 42);
/// sim.add_node(program.clone(), NodeConfig::default())?;
/// sim.add_node(program, NodeConfig { node_id: 1, ..NodeConfig::default() })?;
/// let mut sinks = vec![tinyvm::NullSink, tinyvm::NullSink];
/// sim.run(10_000, &mut sinks)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetSim {
    topology: Topology,
    nodes: Vec<Node>,
    loss_rng: ChaCha8Rng,
    deliveries: Vec<Delivery>,
    lookahead: u64,
}

impl NetSim {
    /// Creates a simulation over `topology`; `seed` drives link-loss draws.
    pub fn new(topology: Topology, seed: u64) -> NetSim {
        let lookahead = topology
            .min_latency()
            .unwrap_or(u64::MAX / 4)
            .saturating_sub(LOOKAHEAD_SLACK)
            .max(1);
        NetSim {
            topology,
            nodes: Vec::new(),
            loss_rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5EED_CAFE),
            deliveries: Vec::new(),
            lookahead,
        }
    }

    /// Adds a node running `program`. The node's id must equal its index
    /// (set `config.node_id` accordingly).
    ///
    /// # Errors
    ///
    /// [`SimError::NodeOrder`] if `config.node_id` differs from the
    /// node's index, [`SimError::NodeOutOfTopology`] if it exceeds the
    /// topology's node count.
    pub fn add_node(
        &mut self,
        program: Arc<Program>,
        config: NodeConfig,
    ) -> Result<&mut Self, SimError> {
        if config.node_id as usize != self.nodes.len() {
            return Err(SimError::NodeOrder {
                expected: self.nodes.len() as u16,
                got: config.node_id,
            });
        }
        if config.node_id >= self.topology.node_count() {
            return Err(SimError::NodeOutOfTopology {
                node: config.node_id,
                count: self.topology.node_count(),
            });
        }
        self.nodes.push(Node::new(program, config));
        Ok(self)
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`NetSim::try_node`] for a
    /// fallible lookup.
    pub fn node(&self, id: u16) -> &Node {
        &self.nodes[id as usize]
    }

    /// The node with id `id`, or [`SimError::UnknownNode`].
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownNode`] if no node with that id was added.
    pub fn try_node(&self, id: u16) -> Result<&Node, SimError> {
        self.nodes.get(id as usize).ok_or(SimError::UnknownNode {
            node: id,
            count: self.nodes.len(),
        })
    }

    /// Mutable access to the node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`NetSim::try_node_mut`] for a
    /// fallible lookup.
    pub fn node_mut(&mut self, id: u16) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    /// Mutable access to the node with id `id`, or
    /// [`SimError::UnknownNode`].
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownNode`] if no node with that id was added.
    pub fn try_node_mut(&mut self, id: u16) -> Result<&mut Node, SimError> {
        let count = self.nodes.len();
        self.nodes
            .get_mut(id as usize)
            .ok_or(SimError::UnknownNode { node: id, count })
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All attempted deliveries so far (including dropped ones).
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Runs the simulation until every node reaches `until` (or halts),
    /// then flushes every node's final trace segment. Call once per
    /// simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SinkCountMismatch`] if `sinks.len()` differs
    /// from the node count, or [`SimError::NodeFault`] if a program
    /// faults (remaining nodes stop where they are).
    pub fn run<S: TraceSink>(&mut self, until: u64, sinks: &mut [S]) -> Result<(), SimError> {
        if sinks.len() != self.nodes.len() {
            return Err(SimError::SinkCountMismatch {
                nodes: self.nodes.len(),
                sinks: sinks.len(),
            });
        }
        loop {
            // Pick the laggard among nodes still below `until` and not
            // halted.
            let mut laggard: Option<(usize, u64)> = None;
            let mut second = until;
            for (i, n) in self.nodes.iter().enumerate() {
                if n.halted() || n.cycle() >= until {
                    continue;
                }
                match laggard {
                    None => laggard = Some((i, n.cycle())),
                    Some((_, c)) if n.cycle() < c => {
                        second = c;
                        laggard = Some((i, n.cycle()));
                    }
                    Some(_) => second = second.min(n.cycle()),
                }
            }
            let Some((idx, _)) = laggard else { break };
            let cap = second.saturating_add(self.lookahead).min(until);
            let node_id = idx as u16;
            if let Err(error) = self.nodes[idx].advance(cap, &mut sinks[idx]) {
                return Err(SimError::NodeFault {
                    node: node_id,
                    error,
                });
            }
            self.route_outbox(idx);
        }
        for (node, sink) in self.nodes.iter_mut().zip(sinks.iter_mut()) {
            node.finish(sink);
        }
        Ok(())
    }

    /// Routes packets transmitted by node `idx` to their receivers.
    fn route_outbox(&mut self, idx: usize) {
        let src = idx as u16;
        let outgoing = self.nodes[idx].drain_outbox();
        for out in outgoing {
            let end_of_air = out.sent_at + out.duration;
            let receivers: Vec<(u16, u64, f64)> = self
                .topology
                .neighbors(src)
                .filter(|(to, _)| {
                    out.packet.dest == tinyvm::isa::port::BROADCAST || out.packet.dest == *to
                })
                .map(|(to, link)| (to, end_of_air + link.latency_cycles, link.loss_prob))
                .collect();
            for (to, at_cycle, loss_prob) in receivers {
                let dropped = loss_prob > 0.0 && self.loss_rng.gen::<f64>() < loss_prob;
                self.deliveries.push(Delivery {
                    src,
                    to,
                    at_cycle,
                    dropped,
                    payload: out.packet.payload.clone(),
                });
                if !dropped {
                    debug_assert!(
                        at_cycle + LOOKAHEAD_SLACK >= self.nodes[to as usize].cycle(),
                        "causality: delivery at {at_cycle} behind receiver {}",
                        self.nodes[to as usize].cycle()
                    );
                    self.nodes[to as usize].inject_rx(
                        at_cycle,
                        Packet {
                            src,
                            dest: out.packet.dest,
                            payload: out.packet.payload.clone(),
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkConfig;
    use tinyvm::NullSink;

    fn sender_program() -> Arc<Program> {
        Arc::new(
            tinyvm::assemble(
                "\
.handler TIMER0 fire
main:
 ldi r1, 20
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
fire:
 in r2, NODE_ID
 out RADIO_TX_PUSH, r2
 ldi r3, 1          ; dest: node 1
 out RADIO_SEND, r3
 reti
",
            )
            .unwrap(),
        )
    }

    fn receiver_program() -> Arc<Program> {
        Arc::new(
            tinyvm::assemble(
                "\
.handler RX on_rx
.data count 1
main:
 ret
on_rx:
 in r1, RADIO_RX_POP
 out UART_OUT, r1
 lda r2, count
 addi r2, 1
 sta count, r2
 reti
",
            )
            .unwrap(),
        )
    }

    fn two_node_sim(loss: f64) -> NetSim {
        let mut topo = Topology::new(2);
        topo.connect(
            0,
            1,
            LinkConfig {
                latency_cycles: 128,
                loss_prob: loss,
            },
        )
        .unwrap();
        let mut sim = NetSim::new(topo, 7);
        sim.add_node(sender_program(), NodeConfig::default())
            .unwrap();
        sim.add_node(
            receiver_program(),
            NodeConfig {
                node_id: 1,
                ..NodeConfig::default()
            },
        )
        .unwrap();
        sim
    }

    #[test]
    fn packets_flow_between_nodes() {
        let mut sim = two_node_sim(0.0);
        let mut sinks = vec![NullSink, NullSink];
        sim.run(500_000, &mut sinks).unwrap();
        let uart = sim.node(1).uart();
        assert!(!uart.is_empty(), "receiver heard nothing");
        assert!(uart.iter().all(|&w| w == 0), "payload carries sender id 0");
        let delivered = sim.deliveries().iter().filter(|d| !d.dropped).count();
        // Packets landing at the very horizon may go unprocessed.
        assert!(uart.len() <= delivered && uart.len() + 2 >= delivered);
    }

    #[test]
    fn lossy_link_drops_packets() {
        let mut sim = two_node_sim(0.5);
        let mut sinks = vec![NullSink, NullSink];
        sim.run(500_000, &mut sinks).unwrap();
        let total = sim.deliveries().len();
        let dropped = sim.deliveries().iter().filter(|d| d.dropped).count();
        assert!(total > 20);
        assert!(dropped > 0, "no losses at p=0.5");
        assert!(dropped < total, "everything lost at p=0.5");
        let heard = sim.node(1).uart().len();
        let delivered = total - dropped;
        assert!(heard <= delivered && heard + 2 >= delivered);
    }

    #[test]
    fn unicast_to_non_neighbor_is_lost() {
        // Node 0 sends to id 1, but only a 0-2 link exists.
        let mut topo = Topology::new(3);
        topo.connect(0, 2, LinkConfig::default()).unwrap();
        let mut sim = NetSim::new(topo, 1);
        sim.add_node(sender_program(), NodeConfig::default())
            .unwrap();
        sim.add_node(
            receiver_program(),
            NodeConfig {
                node_id: 1,
                ..NodeConfig::default()
            },
        )
        .unwrap();
        sim.add_node(
            receiver_program(),
            NodeConfig {
                node_id: 2,
                ..NodeConfig::default()
            },
        )
        .unwrap();
        let mut sinks = vec![NullSink, NullSink, NullSink];
        sim.run(100_000, &mut sinks).unwrap();
        assert!(sim.deliveries().is_empty());
        assert!(sim.node(1).uart().is_empty());
        assert!(sim.node(2).uart().is_empty());
    }

    #[test]
    fn broadcast_reaches_all_neighbors() {
        let bcast = Arc::new(
            tinyvm::assemble(
                "\
.handler TIMER0 fire
main:
 ldi r1, 50
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
fire:
 ldi r2, 99
 out RADIO_TX_PUSH, r2
 ldi r3, 0xFFFF
 out RADIO_SEND, r3
 out TIMER0_CTRL, r0
 reti
",
            )
            .unwrap(),
        );
        let topo = Topology::star(3, LinkConfig::default()).unwrap();
        let mut sim = NetSim::new(topo, 3);
        sim.add_node(bcast, NodeConfig::default()).unwrap();
        for id in 1..3 {
            sim.add_node(
                receiver_program(),
                NodeConfig {
                    node_id: id,
                    ..NodeConfig::default()
                },
            )
            .unwrap();
        }
        let mut sinks = vec![NullSink, NullSink, NullSink];
        sim.run(200_000, &mut sinks).unwrap();
        assert_eq!(sim.node(1).uart(), &[99]);
        assert_eq!(sim.node(2).uart(), &[99]);
    }

    #[test]
    fn sink_count_mismatch_rejected() {
        let mut sim = two_node_sim(0.0);
        let mut sinks = vec![NullSink];
        assert!(matches!(
            sim.run(1_000, &mut sinks),
            Err(SimError::SinkCountMismatch { nodes: 2, sinks: 1 })
        ));
    }

    #[test]
    fn node_fault_reports_id() {
        let bad = Arc::new(tinyvm::assemble("main:\n in r1, 0x7F\n ret\n").unwrap());
        let topo = Topology::new(1);
        let mut sim = NetSim::new(topo, 0);
        sim.add_node(bad, NodeConfig::default()).unwrap();
        let mut sinks = vec![NullSink];
        match sim.run(1_000, &mut sinks) {
            Err(SimError::NodeFault { node: 0, .. }) => {}
            other => panic!("expected node fault, got {other:?}"),
        }
    }

    #[test]
    fn bad_node_registration_is_a_typed_error() {
        let mut sim = NetSim::new(Topology::new(1), 0);
        assert_eq!(
            sim.add_node(
                sender_program(),
                NodeConfig {
                    node_id: 3,
                    ..NodeConfig::default()
                }
            )
            .unwrap_err(),
            SimError::NodeOrder {
                expected: 0,
                got: 3
            }
        );
        sim.add_node(sender_program(), NodeConfig::default())
            .unwrap();
        assert_eq!(
            sim.add_node(
                sender_program(),
                NodeConfig {
                    node_id: 1,
                    ..NodeConfig::default()
                }
            )
            .unwrap_err(),
            SimError::NodeOutOfTopology { node: 1, count: 1 }
        );
        assert!(sim.try_node(0).is_ok());
        assert_eq!(
            sim.try_node(9).unwrap_err(),
            SimError::UnknownNode { node: 9, count: 1 }
        );
        assert_eq!(
            sim.try_node_mut(9).unwrap_err(),
            SimError::UnknownNode { node: 9, count: 1 }
        );
        let topo_err: SimError = crate::topology::TopologyError::SelfLink { node: 2 }.into();
        assert!(topo_err.to_string().contains("self-link"));
    }

    #[test]
    fn deterministic_multi_node_replay() {
        let run = || {
            let mut sim = two_node_sim(0.3);
            let mut sinks = vec![NullSink, NullSink];
            sim.run(300_000, &mut sinks).unwrap();
            (
                sim.deliveries().to_vec(),
                sim.node(1).uart().to_vec(),
                sim.node(0).instructions_retired(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn all_nodes_reach_the_horizon() {
        let mut sim = two_node_sim(0.0);
        let mut sinks = vec![NullSink, NullSink];
        sim.run(123_456, &mut sinks).unwrap();
        for id in 0..2 {
            assert!(sim.node(id).cycle() >= 123_456);
        }
    }
}
