//! Network topology: which nodes can hear which, and with what link
//! quality.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Why a topology could not be built or extended. Construction takes
/// user-supplied parameters (CLI sweeps, scenario configs), so every
/// invalid shape surfaces as a typed error rather than a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// A link endpoint does not exist.
    NodeOutOfRange {
        /// The offending node id.
        node: u16,
        /// Nodes in the topology.
        count: u16,
    },
    /// A node cannot be linked to itself.
    SelfLink {
        /// The node both ends named.
        node: u16,
    },
    /// The link latency is below [`MIN_LINK_LATENCY`] (the
    /// conservative-synchronization lookahead bound).
    LatencyBelowMinimum {
        /// The rejected latency.
        latency_cycles: u64,
    },
    /// The loss probability is outside `[0, 1]`.
    LossOutOfRange,
    /// More nodes than node ids (`u16`) — oversized grid or point set.
    TooManyNodes {
        /// Requested node count.
        nodes: usize,
    },
    /// A grid needs both sides nonzero.
    EmptyGrid,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node, count } => {
                write!(f, "node {node} out of range (topology has {count} nodes)")
            }
            TopologyError::SelfLink { node } => {
                write!(f, "self-link on node {node} is not allowed")
            }
            TopologyError::LatencyBelowMinimum { latency_cycles } => write!(
                f,
                "link latency {latency_cycles} below minimum {MIN_LINK_LATENCY}"
            ),
            TopologyError::LossOutOfRange => f.write_str("loss probability outside [0, 1]"),
            TopologyError::TooManyNodes { nodes } => {
                write!(f, "{nodes} nodes exceed the u16 node-id space")
            }
            TopologyError::EmptyGrid => f.write_str("degenerate grid (a side is 0)"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Properties of one directed radio link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Propagation + demodulation latency in cycles, added after the
    /// sender's on-air duration. Must be at least [`MIN_LINK_LATENCY`]
    /// (the conservative-synchronization lookahead bound).
    pub latency_cycles: u64,
    /// Independent per-packet loss probability in `[0, 1]`.
    pub loss_prob: f64,
}

/// Minimum permitted link latency; the simulator's lookahead window derives
/// from it.
pub const MIN_LINK_LATENCY: u64 = 64;

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency_cycles: 128,
            loss_prob: 0.0,
        }
    }
}

/// A directed-link topology over nodes `0..n`.
///
/// # Examples
///
/// ```
/// use netsim::topology::{LinkConfig, Topology};
///
/// # fn main() -> Result<(), netsim::TopologyError> {
/// let mut topo = Topology::new(3);
/// topo.connect(0, 1, LinkConfig::default())?;
/// topo.connect(1, 2, LinkConfig::default())?;
/// assert!(topo.link(0, 1).is_some());
/// assert!(topo.link(0, 2).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    node_count: u16,
    links: BTreeMap<(u16, u16), LinkConfig>,
}

impl Topology {
    /// Creates a topology over `node_count` nodes with no links.
    pub fn new(node_count: u16) -> Topology {
        Topology {
            node_count,
            links: BTreeMap::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u16 {
        self.node_count
    }

    /// Adds a bidirectional link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// [`TopologyError`] if either endpoint is out of range, `a == b`,
    /// the latency is below [`MIN_LINK_LATENCY`], or the loss
    /// probability leaves `[0, 1]`.
    pub fn connect(
        &mut self,
        a: u16,
        b: u16,
        config: LinkConfig,
    ) -> Result<&mut Self, TopologyError> {
        self.connect_directed(a, b, config)?;
        self.connect_directed(b, a, config)
    }

    /// Adds a directed link from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Topology::connect`].
    pub fn connect_directed(
        &mut self,
        from: u16,
        to: u16,
        config: LinkConfig,
    ) -> Result<&mut Self, TopologyError> {
        for node in [from, to] {
            if node >= self.node_count {
                return Err(TopologyError::NodeOutOfRange {
                    node,
                    count: self.node_count,
                });
            }
        }
        if from == to {
            return Err(TopologyError::SelfLink { node: from });
        }
        if config.latency_cycles < MIN_LINK_LATENCY {
            return Err(TopologyError::LatencyBelowMinimum {
                latency_cycles: config.latency_cycles,
            });
        }
        if !(0.0..=1.0).contains(&config.loss_prob) {
            return Err(TopologyError::LossOutOfRange);
        }
        self.links.insert((from, to), config);
        Ok(self)
    }

    /// The link from `from` to `to`, if present.
    pub fn link(&self, from: u16, to: u16) -> Option<&LinkConfig> {
        self.links.get(&(from, to))
    }

    /// Out-neighbors of `from` with their link configs, in id order.
    pub fn neighbors(&self, from: u16) -> impl Iterator<Item = (u16, &LinkConfig)> + '_ {
        self.links
            .range((from, 0)..=(from, u16::MAX))
            .map(|(&(_, to), cfg)| (to, cfg))
    }

    /// Smallest link latency in the topology (the lookahead bound), or
    /// `None` for a linkless topology.
    pub fn min_latency(&self) -> Option<u64> {
        self.links.values().map(|l| l.latency_cycles).min()
    }

    /// Builds a linear chain `0 - 1 - ... - (n-1)` with uniform links.
    ///
    /// # Errors
    ///
    /// Any invalid `config` ([`TopologyError`]).
    pub fn chain(node_count: u16, config: LinkConfig) -> Result<Topology, TopologyError> {
        let mut t = Topology::new(node_count);
        for i in 1..node_count {
            t.connect(i - 1, i, config)?;
        }
        Ok(t)
    }

    /// Builds a linear chain `0 - 1 - ... - (len)` with one explicit
    /// [`LinkConfig`] per hop (`configs[i]` connects node `i` to
    /// `i + 1`) — the heterogeneous-link variant of [`Topology::chain`]
    /// used by scenario generators to mutate loss and latency per hop.
    ///
    /// # Errors
    ///
    /// Any invalid hop config ([`TopologyError`]).
    pub fn chain_with(configs: &[LinkConfig]) -> Result<Topology, TopologyError> {
        let mut t = Topology::new(configs.len() as u16 + 1);
        for (i, &config) in configs.iter().enumerate() {
            t.connect(i as u16, i as u16 + 1, config)?;
        }
        Ok(t)
    }

    /// Builds a fully connected mesh with uniform links.
    ///
    /// # Errors
    ///
    /// Any invalid `config` ([`TopologyError`]).
    pub fn mesh(node_count: u16, config: LinkConfig) -> Result<Topology, TopologyError> {
        let mut t = Topology::new(node_count);
        for a in 0..node_count {
            for b in (a + 1)..node_count {
                t.connect(a, b, config)?;
            }
        }
        Ok(t)
    }

    /// Builds a star with `0` as the hub.
    ///
    /// # Errors
    ///
    /// Any invalid `config` ([`TopologyError`]).
    pub fn star(node_count: u16, config: LinkConfig) -> Result<Topology, TopologyError> {
        let mut t = Topology::new(node_count);
        for i in 1..node_count {
            t.connect(0, i, config)?;
        }
        Ok(t)
    }

    /// Builds a `width x height` grid with 4-neighbor links (node id =
    /// `y * width + x`), the classic WSN testbed layout.
    ///
    /// # Errors
    ///
    /// [`TopologyError::EmptyGrid`] when a side is 0,
    /// [`TopologyError::TooManyNodes`] when `width * height` overflows
    /// the `u16` id space, plus any invalid `config`.
    pub fn grid(width: u16, height: u16, config: LinkConfig) -> Result<Topology, TopologyError> {
        if width == 0 || height == 0 {
            return Err(TopologyError::EmptyGrid);
        }
        let count = width
            .checked_mul(height)
            .ok_or(TopologyError::TooManyNodes {
                nodes: width as usize * height as usize,
            })?;
        let mut t = Topology::new(count);
        for y in 0..height {
            for x in 0..width {
                let id = y * width + x;
                if x + 1 < width {
                    t.connect(id, id + 1, config)?;
                }
                if y + 1 < height {
                    t.connect(id, id + width, config)?;
                }
            }
        }
        Ok(t)
    }

    /// Builds a unit-disk topology from node positions: nodes within
    /// `range` of each other are connected.
    ///
    /// # Errors
    ///
    /// [`TopologyError::TooManyNodes`] when more than `u16::MAX`
    /// positions are given, plus any invalid `config`.
    pub fn unit_disk(
        positions: &[(f64, f64)],
        range: f64,
        config: LinkConfig,
    ) -> Result<Topology, TopologyError> {
        let count = u16::try_from(positions.len()).map_err(|_| TopologyError::TooManyNodes {
            nodes: positions.len(),
        })?;
        let mut t = Topology::new(count);
        for a in 0..positions.len() {
            for b in (a + 1)..positions.len() {
                let dx = positions[a].0 - positions[b].0;
                let dy = positions[a].1 - positions[b].1;
                if (dx * dx + dy * dy).sqrt() <= range {
                    t.connect(a as u16, b as u16, config)?;
                }
            }
        }
        Ok(t)
    }

    /// Whether every node can reach every other over the links.
    pub fn is_connected(&self) -> bool {
        if self.node_count == 0 {
            return true;
        }
        let mut seen = vec![false; self.node_count as usize];
        let mut stack = vec![0u16];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for (to, _) in self.neighbors(n) {
                if !seen[to as usize] {
                    seen[to as usize] = true;
                    stack.push(to);
                }
            }
        }
        seen.into_iter().all(|v| v)
    }

    /// Total number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_is_bidirectional() {
        let mut t = Topology::new(2);
        t.connect(0, 1, LinkConfig::default()).unwrap();
        assert!(t.link(0, 1).is_some());
        assert!(t.link(1, 0).is_some());
    }

    #[test]
    fn neighbors_in_id_order() {
        let mut t = Topology::new(4);
        t.connect(1, 3, LinkConfig::default()).unwrap();
        t.connect(1, 0, LinkConfig::default()).unwrap();
        t.connect(1, 2, LinkConfig::default()).unwrap();
        let ns: Vec<u16> = t.neighbors(1).map(|(n, _)| n).collect();
        assert_eq!(ns, vec![0, 2, 3]);
    }

    #[test]
    fn invalid_links_are_typed_errors() {
        assert_eq!(
            Topology::new(2)
                .connect(1, 1, LinkConfig::default())
                .unwrap_err(),
            TopologyError::SelfLink { node: 1 }
        );
        assert_eq!(
            Topology::new(2)
                .connect(
                    0,
                    1,
                    LinkConfig {
                        latency_cycles: 1,
                        loss_prob: 0.0,
                    },
                )
                .unwrap_err(),
            TopologyError::LatencyBelowMinimum { latency_cycles: 1 }
        );
        assert_eq!(
            Topology::new(2)
                .connect(0, 5, LinkConfig::default())
                .unwrap_err(),
            TopologyError::NodeOutOfRange { node: 5, count: 2 }
        );
        assert_eq!(
            Topology::new(2)
                .connect(
                    0,
                    1,
                    LinkConfig {
                        latency_cycles: 128,
                        loss_prob: 1.5,
                    },
                )
                .unwrap_err(),
            TopologyError::LossOutOfRange
        );
        // A rejected link leaves the topology untouched.
        let mut t = Topology::new(2);
        let _ = t.connect(1, 1, LinkConfig::default());
        assert_eq!(t.link_count(), 0);
    }

    #[test]
    fn degenerate_constructors_are_typed_errors() {
        assert_eq!(
            Topology::grid(0, 4, LinkConfig::default()).unwrap_err(),
            TopologyError::EmptyGrid
        );
        assert_eq!(
            Topology::grid(300, 300, LinkConfig::default()).unwrap_err(),
            TopologyError::TooManyNodes { nodes: 90_000 }
        );
        let positions = vec![(0.0, 0.0); usize::from(u16::MAX) + 1];
        assert!(matches!(
            Topology::unit_disk(&positions, 0.1, LinkConfig::default()),
            Err(TopologyError::TooManyNodes { .. })
        ));
    }

    #[test]
    fn chain_mesh_star_shapes() {
        let c = Topology::chain(4, LinkConfig::default()).unwrap();
        assert!(c.link(0, 1).is_some() && c.link(1, 2).is_some() && c.link(2, 3).is_some());
        assert!(c.link(0, 2).is_none());

        let m = Topology::mesh(3, LinkConfig::default()).unwrap();
        assert_eq!(m.neighbors(0).count(), 2);

        let s = Topology::star(4, LinkConfig::default()).unwrap();
        assert_eq!(s.neighbors(0).count(), 3);
        assert_eq!(s.neighbors(1).count(), 1);
    }

    #[test]
    fn grid_shape_and_connectivity() {
        let g = Topology::grid(3, 2, LinkConfig::default()).unwrap();
        assert_eq!(g.node_count(), 6);
        // Node 1 (0,1) connects to 0, 2 and 4.
        let ns: Vec<u16> = g.neighbors(1).map(|(n, _)| n).collect();
        assert_eq!(ns, vec![0, 2, 4]);
        assert!(g.is_connected());
        // 2*w*h - w - h undirected edges, doubled for directed.
        assert_eq!(g.link_count(), 2 * (2 * 6 - 3 - 2));
    }

    #[test]
    fn unit_disk_respects_range() {
        let positions = [(0.0, 0.0), (1.0, 0.0), (5.0, 0.0)];
        let t = Topology::unit_disk(&positions, 1.5, LinkConfig::default()).unwrap();
        assert!(t.link(0, 1).is_some());
        assert!(t.link(1, 2).is_none());
        assert!(!t.is_connected());
    }

    #[test]
    fn connectivity_detects_islands() {
        let mut t = Topology::new(4);
        t.connect(0, 1, LinkConfig::default()).unwrap();
        t.connect(2, 3, LinkConfig::default()).unwrap();
        assert!(!t.is_connected());
        t.connect(1, 2, LinkConfig::default()).unwrap();
        assert!(t.is_connected());
        assert!(Topology::new(0).is_connected());
    }

    #[test]
    fn min_latency_reported() {
        let mut t = Topology::new(3);
        t.connect(
            0,
            1,
            LinkConfig {
                latency_cycles: 200,
                loss_prob: 0.0,
            },
        )
        .unwrap();
        t.connect(
            1,
            2,
            LinkConfig {
                latency_cycles: 100,
                loss_prob: 0.0,
            },
        )
        .unwrap();
        assert_eq!(t.min_latency(), Some(100));
        assert_eq!(Topology::new(1).min_latency(), None);
    }
}
