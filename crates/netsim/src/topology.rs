//! Network topology: which nodes can hear which, and with what link
//! quality.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Properties of one directed radio link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Propagation + demodulation latency in cycles, added after the
    /// sender's on-air duration. Must be at least [`MIN_LINK_LATENCY`]
    /// (the conservative-synchronization lookahead bound).
    pub latency_cycles: u64,
    /// Independent per-packet loss probability in `[0, 1]`.
    pub loss_prob: f64,
}

/// Minimum permitted link latency; the simulator's lookahead window derives
/// from it.
pub const MIN_LINK_LATENCY: u64 = 64;

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency_cycles: 128,
            loss_prob: 0.0,
        }
    }
}

/// A directed-link topology over nodes `0..n`.
///
/// # Examples
///
/// ```
/// use netsim::topology::{LinkConfig, Topology};
///
/// let mut topo = Topology::new(3);
/// topo.connect(0, 1, LinkConfig::default());
/// topo.connect(1, 2, LinkConfig::default());
/// assert!(topo.link(0, 1).is_some());
/// assert!(topo.link(0, 2).is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    node_count: u16,
    links: BTreeMap<(u16, u16), LinkConfig>,
}

impl Topology {
    /// Creates a topology over `node_count` nodes with no links.
    pub fn new(node_count: u16) -> Topology {
        Topology {
            node_count,
            links: BTreeMap::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u16 {
        self.node_count
    }

    /// Adds a bidirectional link between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, `a == b`, or the latency
    /// is below [`MIN_LINK_LATENCY`].
    pub fn connect(&mut self, a: u16, b: u16, config: LinkConfig) -> &mut Self {
        self.connect_directed(a, b, config);
        self.connect_directed(b, a, config);
        self
    }

    /// Adds a directed link from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Topology::connect`].
    pub fn connect_directed(&mut self, from: u16, to: u16, config: LinkConfig) -> &mut Self {
        assert!(from < self.node_count, "node {from} out of range");
        assert!(to < self.node_count, "node {to} out of range");
        assert_ne!(from, to, "self-links are not allowed");
        assert!(
            config.latency_cycles >= MIN_LINK_LATENCY,
            "link latency {} below minimum {}",
            config.latency_cycles,
            MIN_LINK_LATENCY
        );
        assert!(
            (0.0..=1.0).contains(&config.loss_prob),
            "loss probability out of range"
        );
        self.links.insert((from, to), config);
        self
    }

    /// The link from `from` to `to`, if present.
    pub fn link(&self, from: u16, to: u16) -> Option<&LinkConfig> {
        self.links.get(&(from, to))
    }

    /// Out-neighbors of `from` with their link configs, in id order.
    pub fn neighbors(&self, from: u16) -> impl Iterator<Item = (u16, &LinkConfig)> + '_ {
        self.links
            .range((from, 0)..=(from, u16::MAX))
            .map(|(&(_, to), cfg)| (to, cfg))
    }

    /// Smallest link latency in the topology (the lookahead bound), or
    /// `None` for a linkless topology.
    pub fn min_latency(&self) -> Option<u64> {
        self.links.values().map(|l| l.latency_cycles).min()
    }

    /// Builds a linear chain `0 - 1 - ... - (n-1)` with uniform links.
    pub fn chain(node_count: u16, config: LinkConfig) -> Topology {
        let mut t = Topology::new(node_count);
        for i in 1..node_count {
            t.connect(i - 1, i, config);
        }
        t
    }

    /// Builds a fully connected mesh with uniform links.
    pub fn mesh(node_count: u16, config: LinkConfig) -> Topology {
        let mut t = Topology::new(node_count);
        for a in 0..node_count {
            for b in (a + 1)..node_count {
                t.connect(a, b, config);
            }
        }
        t
    }

    /// Builds a star with `0` as the hub.
    pub fn star(node_count: u16, config: LinkConfig) -> Topology {
        let mut t = Topology::new(node_count);
        for i in 1..node_count {
            t.connect(0, i, config);
        }
        t
    }

    /// Builds a `width x height` grid with 4-neighbor links (node id =
    /// `y * width + x`), the classic WSN testbed layout.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` overflows `u16` or either side is 0.
    pub fn grid(width: u16, height: u16, config: LinkConfig) -> Topology {
        assert!(width > 0 && height > 0, "degenerate grid");
        let count = width.checked_mul(height).expect("grid too large");
        let mut t = Topology::new(count);
        for y in 0..height {
            for x in 0..width {
                let id = y * width + x;
                if x + 1 < width {
                    t.connect(id, id + 1, config);
                }
                if y + 1 < height {
                    t.connect(id, id + width, config);
                }
            }
        }
        t
    }

    /// Builds a unit-disk topology from node positions: nodes within
    /// `range` of each other are connected.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` positions are given.
    pub fn unit_disk(positions: &[(f64, f64)], range: f64, config: LinkConfig) -> Topology {
        let count = u16::try_from(positions.len()).expect("too many nodes");
        let mut t = Topology::new(count);
        for a in 0..positions.len() {
            for b in (a + 1)..positions.len() {
                let dx = positions[a].0 - positions[b].0;
                let dy = positions[a].1 - positions[b].1;
                if (dx * dx + dy * dy).sqrt() <= range {
                    t.connect(a as u16, b as u16, config);
                }
            }
        }
        t
    }

    /// Whether every node can reach every other over the links.
    pub fn is_connected(&self) -> bool {
        if self.node_count == 0 {
            return true;
        }
        let mut seen = vec![false; self.node_count as usize];
        let mut stack = vec![0u16];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for (to, _) in self.neighbors(n) {
                if !seen[to as usize] {
                    seen[to as usize] = true;
                    stack.push(to);
                }
            }
        }
        seen.into_iter().all(|v| v)
    }

    /// Total number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_is_bidirectional() {
        let mut t = Topology::new(2);
        t.connect(0, 1, LinkConfig::default());
        assert!(t.link(0, 1).is_some());
        assert!(t.link(1, 0).is_some());
    }

    #[test]
    fn neighbors_in_id_order() {
        let mut t = Topology::new(4);
        t.connect(1, 3, LinkConfig::default());
        t.connect(1, 0, LinkConfig::default());
        t.connect(1, 2, LinkConfig::default());
        let ns: Vec<u16> = t.neighbors(1).map(|(n, _)| n).collect();
        assert_eq!(ns, vec![0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        Topology::new(2).connect(1, 1, LinkConfig::default());
    }

    #[test]
    #[should_panic(expected = "below minimum")]
    fn tiny_latency_rejected() {
        Topology::new(2).connect(
            0,
            1,
            LinkConfig {
                latency_cycles: 1,
                loss_prob: 0.0,
            },
        );
    }

    #[test]
    fn chain_mesh_star_shapes() {
        let c = Topology::chain(4, LinkConfig::default());
        assert!(c.link(0, 1).is_some() && c.link(1, 2).is_some() && c.link(2, 3).is_some());
        assert!(c.link(0, 2).is_none());

        let m = Topology::mesh(3, LinkConfig::default());
        assert_eq!(m.neighbors(0).count(), 2);

        let s = Topology::star(4, LinkConfig::default());
        assert_eq!(s.neighbors(0).count(), 3);
        assert_eq!(s.neighbors(1).count(), 1);
    }

    #[test]
    fn grid_shape_and_connectivity() {
        let g = Topology::grid(3, 2, LinkConfig::default());
        assert_eq!(g.node_count(), 6);
        // Node 1 (0,1) connects to 0, 2 and 4.
        let ns: Vec<u16> = g.neighbors(1).map(|(n, _)| n).collect();
        assert_eq!(ns, vec![0, 2, 4]);
        assert!(g.is_connected());
        // 2*w*h - w - h undirected edges, doubled for directed.
        assert_eq!(g.link_count(), 2 * (2 * 6 - 3 - 2));
    }

    #[test]
    fn unit_disk_respects_range() {
        let positions = [(0.0, 0.0), (1.0, 0.0), (5.0, 0.0)];
        let t = Topology::unit_disk(&positions, 1.5, LinkConfig::default());
        assert!(t.link(0, 1).is_some());
        assert!(t.link(1, 2).is_none());
        assert!(!t.is_connected());
    }

    #[test]
    fn connectivity_detects_islands() {
        let mut t = Topology::new(4);
        t.connect(0, 1, LinkConfig::default());
        t.connect(2, 3, LinkConfig::default());
        assert!(!t.is_connected());
        t.connect(1, 2, LinkConfig::default());
        assert!(t.is_connected());
        assert!(Topology::new(0).is_connected());
    }

    #[test]
    fn min_latency_reported() {
        let mut t = Topology::new(3);
        t.connect(
            0,
            1,
            LinkConfig {
                latency_cycles: 200,
                loss_prob: 0.0,
            },
        );
        t.connect(
            1,
            2,
            LinkConfig {
                latency_cycles: 100,
                loss_prob: 0.0,
            },
        );
        assert_eq!(t.min_latency(), Some(100));
        assert_eq!(Topology::new(1).min_latency(), None);
    }
}
