//! Property tests for the network simulator: determinism, causality of
//! deliveries, and loss accounting under randomized topologies and
//! traffic parameters.

use netsim::{LinkConfig, NetSim, Topology};
use proptest::prelude::*;
use std::sync::Arc;
use tinyvm::devices::NodeConfig;
use tinyvm::{NullSink, Program};

/// Every node beacons periodically with a node-dependent period.
fn beacon(period_ticks: u16) -> Arc<Program> {
    Arc::new(
        tinyvm::assemble(&format!(
            "\
.handler TIMER0 beat
.handler RX on_rx
.data heard 1
main:
 in r1, NODE_ID
 addi r1, {period_ticks}
 out TIMER0_PERIOD, r1
 ldi r1, 1
 out TIMER0_CTRL, r1
 ret
beat:
 in r2, NODE_ID
 out RADIO_TX_PUSH, r2
 ldi r3, 0xFFFF
 out RADIO_SEND, r3
 reti
on_rx:
 in r1, RADIO_RX_POP
 lda r2, heard
 addi r2, 1
 sta heard, r2
 reti
"
        ))
        .unwrap(),
    )
}

fn build_sim(
    nodes: u16,
    extra_links: &[(u16, u16)],
    latency: u64,
    loss: f64,
    period: u16,
    seed: u64,
) -> NetSim {
    let link = LinkConfig {
        latency_cycles: latency,
        loss_prob: loss,
    };
    let mut topo = Topology::chain(nodes, link).unwrap();
    for &(a, b) in extra_links {
        let (a, b) = (a % nodes, b % nodes);
        if a != b {
            topo.connect(a, b, link).unwrap();
        }
    }
    let program = beacon(period);
    let mut sim = NetSim::new(topo, seed);
    for id in 0..nodes {
        sim.add_node(
            program.clone(),
            NodeConfig {
                node_id: id,
                seed: seed.wrapping_add(id as u64),
                ..NodeConfig::default()
            },
        )
        .unwrap();
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulation_is_deterministic(
        nodes in 2u16..6,
        extra in prop::collection::vec((0u16..8, 0u16..8), 0..4),
        latency in 64u64..500,
        loss in 0.0f64..0.5,
        period in 50u16..300,
        seed in any::<u64>(),
    ) {
        let run = || {
            let mut sim = build_sim(nodes, &extra, latency, loss, period, seed);
            let mut sinks = vec![NullSink; nodes as usize];
            sim.run(400_000, &mut sinks).unwrap();
            let deliveries = sim.deliveries().to_vec();
            let retired: Vec<u64> = (0..nodes)
                .map(|id| sim.node(id).instructions_retired())
                .collect();
            (deliveries, retired)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn deliveries_respect_causality_and_latency(
        nodes in 2u16..6,
        latency in 64u64..1000,
        period in 50u16..300,
        seed in any::<u64>(),
    ) {
        let mut sim = build_sim(nodes, &[], latency, 0.0, period, seed);
        let mut sinks = vec![NullSink; nodes as usize];
        sim.run(400_000, &mut sinks).unwrap();
        // Each delivery arrives at least `latency` after the earliest
        // possible send instant (cycle 0), and node-locally the arrival
        // order is monotone per (src, to) pair since links are FIFO.
        let mut last: std::collections::HashMap<(u16, u16), u64> = Default::default();
        for d in sim.deliveries() {
            prop_assert!(d.at_cycle >= latency);
            let e = last.entry((d.src, d.to)).or_insert(0);
            prop_assert!(d.at_cycle >= *e, "per-link reordering");
            *e = d.at_cycle;
        }
    }

    #[test]
    fn zero_loss_delivers_everything_heard(
        nodes in 2u16..5,
        period in 80u16..300,
        seed in any::<u64>(),
    ) {
        let mut sim = build_sim(nodes, &[], 128, 0.0, period, seed);
        let mut sinks = vec![NullSink; nodes as usize];
        sim.run(400_000, &mut sinks).unwrap();
        prop_assert!(sim.deliveries().iter().all(|d| !d.dropped));
        // Heard counters equal non-dropped deliveries, up to horizon
        // stragglers (at most one per node pair).
        let delivered = sim.deliveries().len();
        let heard: usize = (0..nodes)
            .map(|id| {
                let n = sim.node(id);
                let addr = n.program().label("heard").unwrap();
                n.mem()[addr as usize] as usize
            })
            .sum();
        let pairs = 2 * (nodes as usize - 1); // directed chain links
        prop_assert!(heard <= delivered);
        prop_assert!(heard + pairs >= delivered, "heard {} of {}", heard, delivered);
    }

    #[test]
    fn total_loss_delivers_nothing(
        nodes in 2u16..5,
        period in 80u16..300,
        seed in any::<u64>(),
    ) {
        let mut sim = build_sim(nodes, &[], 128, 1.0, period, seed);
        let mut sinks = vec![NullSink; nodes as usize];
        sim.run(300_000, &mut sinks).unwrap();
        prop_assert!(sim.deliveries().iter().all(|d| d.dropped));
        for id in 0..nodes {
            let n = sim.node(id);
            let addr = n.program().label("heard").unwrap();
            prop_assert_eq!(n.mem()[addr as usize], 0);
        }
    }
}
