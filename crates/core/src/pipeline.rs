//! The symptom-mining pipeline: scale → detect → normalize → rank.
//!
//! The rank path operates on a [`SampleSet`] — a dense row-major feature
//! matrix plus per-sample metadata. Scaling transforms the matrix in
//! place and the detector reads contiguous row slices, so no feature row
//! is cloned anywhere between harvesting and the final report.

use crate::report::{RankedSample, Report};
use crate::sample::{Sample, SampleSet};
use mlcore::{normalize_scores, rank_ascending, MlError, OneClassSvm, OutlierDetector, Scaler};
use std::error::Error;
use std::fmt;

/// Pipeline failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// No samples were supplied.
    NoSamples,
    /// Samples disagree on feature dimensionality.
    DimensionMismatch,
    /// The plug-in detector failed.
    Detector(MlError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::NoSamples => f.write_str("no samples to rank"),
            PipelineError::DimensionMismatch => {
                f.write_str("samples have mismatched feature dimensions")
            }
            PipelineError::Detector(e) => write!(f, "detector failed: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Detector(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MlError> for PipelineError {
    fn from(e: MlError) -> Self {
        PipelineError::Detector(e)
    }
}

/// The back-end of Sentomist: feeds instruction counters to a plug-in
/// outlier detector and ranks the intervals by suspicion.
///
/// # Examples
///
/// ```
/// use mlcore::OneClassSvm;
/// use sentomist_core::{Pipeline, Sample, SampleIndex};
/// # use sentomist_trace::EventInterval;
/// # fn iv() -> EventInterval {
/// #     EventInterval { irq: 0, start_index: 0, end_index: 1, last_run_index: None,
/// #         start_cycle: 0, end_cycle: 1, task_count: 0 }
/// # }
///
/// let mut samples: Vec<Sample> = (0..30)
///     .map(|i| Sample {
///         index: SampleIndex::Seq(i + 1),
///         interval: iv(),
///         features: vec![10.0, (i % 3) as f64],
///     })
///     .collect();
/// samples.push(Sample {
///     index: SampleIndex::Seq(31),
///     interval: iv(),
///     features: vec![55.0, 9.0], // the odd one out
/// });
/// let pipeline = Pipeline::new(Box::new(OneClassSvm::with_nu(0.1)));
/// let report = pipeline.rank(samples)?;
/// assert_eq!(report.ranking[0].index, SampleIndex::Seq(31));
/// # Ok::<(), sentomist_core::PipelineError>(())
/// ```
pub struct Pipeline {
    detector: Box<dyn OutlierDetector>,
    scale: bool,
}

impl Pipeline {
    /// Creates a pipeline with the given detector and min-max scaling on.
    pub fn new(detector: Box<dyn OutlierDetector>) -> Pipeline {
        Pipeline {
            detector,
            scale: true,
        }
    }

    /// The paper's default configuration: one-class SVM (RBF, ν as given)
    /// over min-max-scaled counters.
    pub fn default_ocsvm(nu: f64) -> Pipeline {
        Pipeline::new(Box::new(OneClassSvm::with_nu(nu)))
    }

    /// Disables feature scaling (for ablation).
    pub fn without_scaling(mut self) -> Pipeline {
        self.scale = false;
        self
    }

    /// The plug-in detector's name.
    pub fn detector_name(&self) -> &'static str {
        self.detector.name()
    }

    /// Scores and ranks a sample set, most suspicious first. Scores are
    /// normalized so the largest positive score is 1 (the paper's Figure-5
    /// convention).
    ///
    /// Takes the set by value: the scaled path min-max-transforms the
    /// feature matrix **in place** and the unscaled path hands the matrix
    /// to the detector as-is — no feature row is copied either way.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NoSamples`] on an empty set;
    /// [`PipelineError::Detector`] if the detector fails.
    pub fn rank_set(&self, mut samples: SampleSet) -> Result<Report, PipelineError> {
        if samples.is_empty() {
            return Err(PipelineError::NoSamples);
        }
        if self.scale {
            let scaler = Scaler::fit(&samples.features);
            scaler.transform_in_place(&mut samples.features);
        }
        let mut scores = self.detector.score(&samples.features)?;
        normalize_scores(&mut scores);
        let order = rank_ascending(&scores);
        let ranking = order
            .into_iter()
            .map(|i| RankedSample {
                index: samples.meta[i].index,
                score: scores[i],
                interval: samples.meta[i].interval,
            })
            .collect();
        Ok(Report {
            detector: self.detector.name().to_string(),
            ranking,
        })
    }

    /// Scores and ranks individually-owned samples — a shim over
    /// [`Pipeline::rank_set`] that packs the rows into one dense matrix
    /// first (a single flat allocation, no per-row clone).
    ///
    /// # Errors
    ///
    /// [`PipelineError::NoSamples`] / [`PipelineError::DimensionMismatch`]
    /// on bad input; [`PipelineError::Detector`] if the detector fails.
    pub fn rank(&self, samples: Vec<Sample>) -> Result<Report, PipelineError> {
        if samples.is_empty() {
            return Err(PipelineError::NoSamples);
        }
        let set = SampleSet::from_samples(&samples).ok_or(PipelineError::DimensionMismatch)?;
        self.rank_set(set)
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("detector", &self.detector.name())
            .field("scale", &self.scale)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleIndex;
    use sentomist_trace::EventInterval;

    fn iv() -> EventInterval {
        EventInterval {
            irq: 0,
            start_index: 0,
            end_index: 1,
            last_run_index: None,
            start_cycle: 0,
            end_cycle: 1,
            task_count: 0,
        }
    }

    fn sample(seq: u32, features: Vec<f64>) -> Sample {
        Sample {
            index: SampleIndex::Seq(seq),
            interval: iv(),
            features,
        }
    }

    fn cluster_plus_outlier() -> Vec<Sample> {
        let mut v: Vec<Sample> = (0..40)
            .map(|i| sample(i + 1, vec![100.0 + (i % 4) as f64, 50.0, (i % 3) as f64]))
            .collect();
        v.push(sample(41, vec![200.0, 50.0, 9.0]));
        v
    }

    #[test]
    fn outlier_ranks_first_and_scores_normalized() {
        let report = Pipeline::default_ocsvm(0.1)
            .rank(cluster_plus_outlier())
            .unwrap();
        assert_eq!(report.ranking[0].index, SampleIndex::Seq(41));
        let max = report
            .ranking
            .iter()
            .map(|r| r.score)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max - 1.0).abs() < 1e-9, "largest positive score is 1");
        assert!(report.ranking[0].score < report.ranking.last().unwrap().score);
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            Pipeline::default_ocsvm(0.1).rank(vec![]).unwrap_err(),
            PipelineError::NoSamples
        );
    }

    #[test]
    fn ragged_input_rejected() {
        let samples = vec![sample(1, vec![1.0]), sample(2, vec![1.0, 2.0])];
        assert_eq!(
            Pipeline::default_ocsvm(0.5).rank(samples).unwrap_err(),
            PipelineError::DimensionMismatch
        );
    }

    #[test]
    fn alternative_detectors_plug_in() {
        // Cluster with two perfectly correlated dimensions; the outlier
        // breaks the correlation (stays in range, so scaling does not mask
        // it) — a shape every detector family should flag.
        let mut samples: Vec<Sample> = (0..40)
            .map(|i| {
                let t = (i % 5) as f64;
                sample(i + 1, vec![100.0 + t, 50.0, 10.0 + t])
            })
            .collect();
        samples.push(sample(41, vec![103.0, 50.0, 2.0]));
        for det in [
            Box::new(mlcore::KnnDetector::default()) as Box<dyn OutlierDetector>,
            Box::new(mlcore::PcaDetector::default()),
            Box::new(mlcore::MahalanobisDetector::default()),
            Box::new(mlcore::OneClassSvm::with_nu(0.1)),
        ] {
            let name = det.name();
            let report = Pipeline::new(det).rank(samples.clone()).unwrap();
            assert_eq!(
                report.ranking[0].index,
                SampleIndex::Seq(41),
                "detector {name} should still find the outlier"
            );
            assert_eq!(report.detector, name);
        }
    }

    #[test]
    fn scaling_ablation_changes_nothing_for_prescaled_data() {
        // Features already in [0,1]: scaled and unscaled agree on ranking.
        let samples: Vec<Sample> = (0..20)
            .map(|i| sample(i + 1, vec![(i % 2) as f64 * 0.01, 0.5]))
            .chain(std::iter::once(sample(21, vec![1.0, 0.0])))
            .collect();
        let with = Pipeline::default_ocsvm(0.1).rank(samples.clone()).unwrap();
        let without = Pipeline::default_ocsvm(0.1)
            .without_scaling()
            .rank(samples)
            .unwrap();
        assert_eq!(with.ranking[0].index, without.ranking[0].index);
    }

    #[test]
    fn rank_and_rank_set_agree_exactly() {
        let samples = cluster_plus_outlier();
        let set = SampleSet::from_samples(&samples).unwrap();
        let via_rank = Pipeline::default_ocsvm(0.1).rank(samples).unwrap();
        let via_set = Pipeline::default_ocsvm(0.1).rank_set(set).unwrap();
        assert_eq!(via_rank, via_set);
    }

    #[test]
    fn deterministic_ranking() {
        let a = Pipeline::default_ocsvm(0.1)
            .rank(cluster_plus_outlier())
            .unwrap();
        let b = Pipeline::default_ocsvm(0.1)
            .rank(cluster_plus_outlier())
            .unwrap();
        let ia: Vec<_> = a.ranking.iter().map(|r| r.index).collect();
        let ib: Vec<_> = b.ranking.iter().map(|r| r.index).collect();
        assert_eq!(ia, ib);
    }
}
