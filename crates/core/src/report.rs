//! Ranking reports rendered in the style of the paper's Figure 5.

use crate::sample::SampleIndex;
use sentomist_trace::EventInterval;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One ranked sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedSample {
    /// Table label.
    pub index: SampleIndex,
    /// Normalized score (largest positive = 1.0); lower = more suspicious.
    pub score: f64,
    /// The underlying interval.
    pub interval: EventInterval,
}

/// The ranked output of one pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Name of the detector that produced the scores.
    pub detector: String,
    /// Samples in ascending score order (most suspicious first).
    pub ranking: Vec<RankedSample>,
}

impl Report {
    /// 1-based rank of the sample labeled `index`, if present.
    pub fn rank_of(&self, index: SampleIndex) -> Option<usize> {
        self.ranking
            .iter()
            .position(|r| r.index == index)
            .map(|p| p + 1)
    }

    /// The `k` most suspicious samples.
    pub fn top(&self, k: usize) -> &[RankedSample] {
        &self.ranking[..k.min(self.ranking.len())]
    }

    /// Serializes the full ranking as CSV (`rank,index,score,irq,
    /// start_cycle,end_cycle,tasks`), for external plotting.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("rank,index,score,irq,start_cycle,end_cycle,tasks\n");
        for (i, r) in self.ranking.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                i + 1,
                r.index,
                r.score,
                r.interval.irq,
                r.interval.start_cycle,
                r.interval.end_cycle,
                r.interval.task_count,
            );
        }
        out
    }

    /// Renders a Figure-5-style two-column table: the `head` most
    /// suspicious rows, an ellipsis, and the `tail` least suspicious rows.
    pub fn table(&self, head: usize, tail: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:>16}  {:>8}", "Instance Index", "Score");
        let n = self.ranking.len();
        let head = head.min(n);
        for r in &self.ranking[..head] {
            let _ = writeln!(out, "{:>16}  {:>8.4}", r.index.to_string(), r.score);
        }
        if head + tail < n {
            let _ = writeln!(out, "{:>16}  {:>8}", "...", "...");
        }
        let tail_start = n.saturating_sub(tail).max(head);
        for r in &self.ranking[tail_start..] {
            let _ = writeln!(out, "{:>16}  {:>8.4}", r.index.to_string(), r.score);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv() -> EventInterval {
        EventInterval {
            irq: 0,
            start_index: 0,
            end_index: 1,
            last_run_index: None,
            start_cycle: 0,
            end_cycle: 1,
            task_count: 0,
        }
    }

    fn report() -> Report {
        Report {
            detector: "ocsvm".into(),
            ranking: vec![
                RankedSample {
                    index: SampleIndex::RunSeq { run: 1, seq: 76 },
                    score: -1.5554,
                    interval: iv(),
                },
                RankedSample {
                    index: SampleIndex::RunSeq { run: 1, seq: 176 },
                    score: -0.5291,
                    interval: iv(),
                },
                RankedSample {
                    index: SampleIndex::RunSeq { run: 1, seq: 153 },
                    score: 1.0,
                    interval: iv(),
                },
            ],
        }
    }

    #[test]
    fn rank_of_is_one_based() {
        let r = report();
        assert_eq!(r.rank_of(SampleIndex::RunSeq { run: 1, seq: 76 }), Some(1));
        assert_eq!(r.rank_of(SampleIndex::RunSeq { run: 1, seq: 153 }), Some(3));
        assert_eq!(r.rank_of(SampleIndex::Seq(9)), None);
    }

    #[test]
    fn table_contains_head_ellipsis_tail() {
        let t = report().table(1, 1);
        assert!(t.contains("[1, 76]"));
        assert!(t.contains("..."));
        assert!(t.contains("[1, 153]"));
        assert!(!t.contains("[1, 176]"));
        assert!(t.contains("-1.5554"));
        assert!(t.contains("1.0000"));
    }

    #[test]
    fn table_handles_small_reports() {
        let t = report().table(10, 10);
        assert!(!t.contains("..."));
        assert_eq!(t.lines().count(), 4); // header + 3 rows
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("rank,index,score"));
        assert!(lines[1].starts_with("1,[1, 76],-1.5554"));
    }

    #[test]
    fn top_clamps() {
        assert_eq!(report().top(100).len(), 3);
        assert_eq!(report().top(2).len(), 2);
    }
}
