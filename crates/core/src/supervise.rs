//! Supervised campaign execution: panic isolation, watchdogs,
//! deterministic retry, and incremental completion reporting.
//!
//! [`run_campaign`](crate::campaign::run_campaign) assumes every job
//! either completes or fails politely. At campaign scale that assumption
//! breaks: a panicking job would unwind its worker, a runaway emulation
//! would hang the sweep forever, and a transient failure (I/O hiccup,
//! injected chaos) would burn the seed permanently. [`run_supervised`]
//! hardens the same fan-out:
//!
//! * **panic isolation** — every attempt runs under
//!   [`std::panic::catch_unwind`]; a panic becomes a typed
//!   [`RunError`] with [`FailureKind::Panic`] and the pool keeps going.
//!   Panic output from supervised attempts is suppressed via a
//!   process-wide hook that only mutes threads marked as supervised, so
//!   unrelated panics still print normally.
//! * **watchdog** — with [`SupervisorOptions::timeout`] set, each attempt
//!   runs on a detached thread and the supervisor waits at most that
//!   long; on expiry it flips the attempt's [`RunContext`] cancel flag
//!   (cooperative jobs poll it between emulation slices) and records a
//!   [`FailureKind::TimedOut`] error. A truly wedged attempt thread is
//!   abandoned — it leaks, but the campaign finishes. A per-run cycle
//!   budget ([`SupervisorOptions::cycle_budget`]) travels in the context
//!   for budget-aware jobs to enforce in VM time.
//! * **bounded deterministic retry** — transient failures and panics are
//!   retried up to [`SupervisorOptions::max_retries`] times with a
//!   backoff schedule that is a pure function of `(seed, attempt)`
//!   ([`backoff_delay_ms`]), so a replayed campaign sleeps the same
//!   schedule bit for bit. Watchdog kills and fatal failures are never
//!   retried.
//! * **incremental reporting** — every finished seed (success or final
//!   failure) is handed to the caller's `on_complete` callback on the
//!   collecting thread, in completion order, before the campaign ends;
//!   the CLI journals these into the trace store to make a killed
//!   campaign resumable ([`SeedReport`] round-trips through JSON).
//!
//! Determinism contract: as with `run_campaign`, the aggregated
//! [`CampaignResult`] is sorted by seed and (given pure jobs) identical
//! for every thread count. With no timeout configured, attempts run
//! inline on the scoped workers — the clean path costs one
//! `catch_unwind` frame over the plain orchestrator.
//!
//! The pool is generic over the job's success type:
//! [`run_supervised_typed`] supervises any `Fn(&RunContext) ->
//! Result<T, RunFailure>` and reports [`TypedReport<T>`]s — the hunt
//! subsystem ([`crate::hunt`]) runs whole mined-and-checked iteration
//! records through it. [`run_supervised`] is the `T = RunOutcome`
//! specialization that additionally stamps wall times and aggregates a
//! [`CampaignResult`].

use crate::campaign::{CampaignResult, FailureKind, RunError, RunOutcome};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Once};
use std::time::{Duration, Instant};

/// How a supervised job failed. The variant picks the retry policy; the
/// supervisor adds panics and watchdog kills on its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunFailure {
    /// Worth retrying: the failure may clear on a second attempt
    /// (I/O hiccup, injected transient fault).
    Transient(String),
    /// Retrying cannot help (bad configuration, impossible request).
    Fatal(String),
    /// The job noticed it exceeded its cycle budget or was cancelled;
    /// recorded as [`FailureKind::TimedOut`], never retried.
    TimedOut(String),
}

impl RunFailure {
    /// The failure message.
    pub fn message(&self) -> &str {
        match self {
            RunFailure::Transient(m) | RunFailure::Fatal(m) | RunFailure::TimedOut(m) => m,
        }
    }
}

/// Per-attempt execution context handed to supervised jobs.
///
/// Cancellation is cooperative: the watchdog flips the flag and
/// budget-aware jobs poll [`RunContext::cancelled`] between emulation
/// slices (see `sentomist-apps`' supervised job builders). The cycle
/// budget rides along for jobs that can meter themselves in VM cycles —
/// deterministic, unlike wall-clock.
#[derive(Debug, Clone)]
pub struct RunContext {
    seed: u64,
    attempt: u32,
    cycle_budget: Option<u64>,
    cancel: Arc<AtomicBool>,
}

impl RunContext {
    /// A fresh context for one attempt at one seed.
    pub fn new(seed: u64, attempt: u32, cycle_budget: Option<u64>) -> RunContext {
        RunContext {
            seed,
            attempt,
            cycle_budget,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The seed being run.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// 1-based attempt number (2 means first retry).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Cycle budget for this run, if one was configured.
    pub fn cycle_budget(&self) -> Option<u64> {
        self.cycle_budget
    }

    /// Whether the watchdog has asked this attempt to stop.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Asks the attempt to stop at its next poll point.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }
}

/// How a supervised campaign should be driven.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorOptions {
    /// Worker threads (clamped to `1..=seeds`).
    pub threads: usize,
    /// Emit one progress line per finished run on stderr.
    pub progress: bool,
    /// Retries granted to transient failures and panics (0 = none).
    pub max_retries: u32,
    /// Wall-clock watchdog per attempt. `None` runs attempts inline
    /// (no watchdog, near-zero overhead).
    pub timeout: Option<Duration>,
    /// Cycle budget per run, enforced by budget-aware jobs via
    /// [`RunContext::cycle_budget`].
    pub cycle_budget: Option<u64>,
    /// Base backoff delay in milliseconds (0 disables sleeping; the
    /// schedule stays deterministic either way).
    pub backoff_base_ms: u64,
    /// Chaos hook: stop dispatching new seeds once this many have
    /// completed — simulates a campaign killed mid-flight for
    /// checkpoint-resume testing. In-flight seeds still finish.
    pub stop_after: Option<usize>,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        SupervisorOptions {
            threads: 1,
            progress: false,
            max_retries: 0,
            timeout: None,
            cycle_budget: None,
            backoff_base_ms: 25,
            stop_after: None,
        }
    }
}

/// What the supervisor reports when a seed finishes — either a final
/// outcome or a final error, plus the attempts it took. Serializes to
/// one self-contained JSON object, the campaign journal's line format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// Attempts spent (1 = first try succeeded or failed fatally).
    pub attempts: u32,
    /// The outcome, when the seed succeeded.
    #[serde(default)]
    pub outcome: Option<RunOutcome>,
    /// The error, when the seed failed for good.
    #[serde(default)]
    pub error: Option<RunError>,
}

/// SplitMix64 — the canonical 64-bit finalizer, used to derive
/// deterministic backoff jitter (and chaos fault draws) from seeds.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic backoff delay after failed attempt `attempt`
/// (1-based): exponential in the attempt with seed-derived jitter, a pure
/// function of its arguments so replays sleep the identical schedule.
pub fn backoff_delay_ms(seed: u64, attempt: u32, base_ms: u64) -> u64 {
    if base_ms == 0 {
        return 0;
    }
    let exp = base_ms.saturating_mul(1u64 << attempt.saturating_sub(1).min(6));
    exp + splitmix64(seed ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F)) % base_ms
}

/// Lifts a plain seed job (the `run_campaign` shape) into a supervised
/// job: errors become [`RunFailure::Transient`] (retryable), the context
/// supplies the seed.
pub fn adapt_seed_job<F>(job: F) -> impl Fn(&RunContext) -> Result<RunOutcome, RunFailure>
where
    F: Fn(u64) -> Result<RunOutcome, String>,
{
    move |ctx| job(ctx.seed()).map_err(RunFailure::Transient)
}

thread_local! {
    static SUPERVISED_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that suppresses output for
/// panics on threads currently running a supervised attempt and defers
/// to the previous hook for everything else. Supervised panics are
/// expected — they come back as typed [`RunError`]s — so printing each
/// would drown the progress output.
fn install_quiet_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPERVISED_THREAD.with(std::cell::Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Marks the current thread supervised for the guard's lifetime;
/// restores on drop even when the marked code panics.
struct SupervisedMark;

impl SupervisedMark {
    fn set() -> SupervisedMark {
        SUPERVISED_THREAD.with(|s| s.set(true));
        SupervisedMark
    }
}

impl Drop for SupervisedMark {
    fn drop(&mut self) {
        SUPERVISED_THREAD.with(|s| s.set(false));
    }
}

struct AttemptFailure {
    kind: FailureKind,
    message: String,
    retryable: bool,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn normalize<T>(caught: std::thread::Result<Result<T, RunFailure>>) -> Result<T, AttemptFailure> {
    match caught {
        Ok(Ok(outcome)) => Ok(outcome),
        Ok(Err(RunFailure::Transient(message))) => Err(AttemptFailure {
            kind: FailureKind::Error,
            message,
            retryable: true,
        }),
        Ok(Err(RunFailure::Fatal(message))) => Err(AttemptFailure {
            kind: FailureKind::Error,
            message,
            retryable: false,
        }),
        Ok(Err(RunFailure::TimedOut(message))) => Err(AttemptFailure {
            kind: FailureKind::TimedOut,
            message,
            retryable: false,
        }),
        Err(payload) => Err(AttemptFailure {
            kind: FailureKind::Panic,
            message: format!("panicked: {}", panic_message(payload.as_ref())),
            retryable: true,
        }),
    }
}

fn run_attempt<T, F>(
    job: &Arc<F>,
    ctx: &RunContext,
    timeout: Option<Duration>,
) -> Result<T, AttemptFailure>
where
    T: Send + 'static,
    F: Fn(&RunContext) -> Result<T, RunFailure> + Send + Sync + 'static,
{
    let Some(limit) = timeout else {
        // No watchdog: run inline on the worker. One catch_unwind frame
        // is the entire clean-path cost over `run_campaign`.
        return normalize(catch_unwind(AssertUnwindSafe(|| {
            let _mark = SupervisedMark::set();
            job(ctx)
        })));
    };
    let (tx, rx) = mpsc::channel();
    let job = Arc::clone(job);
    let attempt_ctx = ctx.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("sentomist-run-{:016x}", ctx.seed()))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _mark = SupervisedMark::set();
                job(&attempt_ctx)
            }));
            let _ = tx.send(result); // receiver may have timed out and left
        });
    match spawned {
        Err(e) => Err(AttemptFailure {
            kind: FailureKind::Error,
            message: format!("spawning watchdogged run thread: {e}"),
            retryable: true,
        }),
        // The handle is dropped: on timeout the attempt thread is
        // abandoned (cancelled cooperatively, leaked if truly wedged).
        Ok(_detached) => match rx.recv_timeout(limit) {
            Ok(result) => normalize(result),
            Err(_) => {
                ctx.cancel();
                Err(AttemptFailure {
                    kind: FailureKind::TimedOut,
                    message: format!("watchdog: run exceeded {} ms wall clock", limit.as_millis()),
                    retryable: false,
                })
            }
        },
    }
}

/// What the supervisor reports when a seed of a typed job finishes:
/// either a final value or a final error, the attempts spent, and the
/// measured wall time (kept out of the value so typed results stay
/// timing-free and thread-count-deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct TypedReport<T> {
    /// The seed.
    pub seed: u64,
    /// Attempts spent (1 = first try succeeded or failed fatally).
    pub attempts: u32,
    /// Wall-clock milliseconds of the successful attempt (0 on failure).
    pub wall_time_ms: u64,
    /// The job's value, when the seed succeeded.
    pub outcome: Option<T>,
    /// The error, when the seed failed for good.
    pub error: Option<RunError>,
}

fn supervise_seed<T, F>(seed: u64, options: &SupervisorOptions, job: &Arc<F>) -> TypedReport<T>
where
    T: Send + 'static,
    F: Fn(&RunContext) -> Result<T, RunFailure> + Send + Sync + 'static,
{
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let ctx = RunContext::new(seed, attempt, options.cycle_budget);
        let started = Instant::now();
        match run_attempt(job, &ctx, options.timeout) {
            Ok(outcome) => {
                return TypedReport {
                    seed,
                    attempts: attempt,
                    wall_time_ms: started.elapsed().as_millis() as u64,
                    outcome: Some(outcome),
                    error: None,
                };
            }
            Err(failure) => {
                if failure.retryable && attempt <= options.max_retries {
                    std::thread::sleep(Duration::from_millis(backoff_delay_ms(
                        seed,
                        attempt,
                        options.backoff_base_ms,
                    )));
                    continue;
                }
                return TypedReport {
                    seed,
                    attempts: attempt,
                    wall_time_ms: 0,
                    outcome: None,
                    error: Some(RunError {
                        seed,
                        message: failure.message,
                        kind: failure.kind,
                        attempts: attempt,
                    }),
                };
            }
        }
    }
}

/// Supervises a single seed of a typed job on the calling thread's
/// schedule: the attempt runs on a watchdogged worker thread with panic
/// isolation, transient failures retry with deterministic backoff, and
/// the final [`TypedReport`] carries either the value or the typed
/// error. This is [`run_supervised_typed`] for a fleet of one — long-
/// running services use it to give each dequeued job the same fault
/// envelope a campaign seed gets, so one poisoned request never takes
/// down the process.
pub fn supervise_once<T, F>(seed: u64, options: &SupervisorOptions, job: Arc<F>) -> TypedReport<T>
where
    T: Send + 'static,
    F: Fn(&RunContext) -> Result<T, RunFailure> + Send + Sync + 'static,
{
    install_quiet_panic_hook();
    supervise_seed(seed, options, &job)
}

/// Seed-sorted aggregation of a typed supervised campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedResult<T> {
    /// `(seed, value)` for every seed that succeeded, ascending by seed.
    pub outcomes: Vec<(u64, T)>,
    /// Final errors, ascending by seed.
    pub errors: Vec<RunError>,
}

/// Fans `seeds` over a supervised worker pool running a job with an
/// arbitrary success type: panics are caught, hung attempts are
/// watchdogged, transient failures retried, and every finished seed
/// reported to `on_complete` (on the calling thread, in completion
/// order) before the aggregated, seed-sorted [`SupervisedResult`] is
/// returned — so, given pure jobs, the result is identical for every
/// thread count.
///
/// The job takes a [`RunContext`] rather than a bare seed so the
/// watchdog can cancel it cooperatively and budget-aware jobs can meter
/// their own cycles. `T: 'static` and `F: 'static` (and the `Arc`) are
/// what let a timed-out attempt thread outlive the campaign instead of
/// hanging it. The typed pool itself prints nothing — callers honoring
/// [`SupervisorOptions::progress`] emit their own lines from
/// `on_complete` (as [`run_supervised`] does).
pub fn run_supervised_typed<T, F, C>(
    seeds: &[u64],
    options: &SupervisorOptions,
    job: Arc<F>,
    mut on_complete: C,
) -> SupervisedResult<T>
where
    T: Send + 'static,
    F: Fn(&RunContext) -> Result<T, RunFailure> + Send + Sync + 'static,
    C: FnMut(&TypedReport<T>),
{
    install_quiet_panic_hook();
    let threads = options.threads.clamp(1, seeds.len().max(1));
    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<TypedReport<T>>();
    let mut outcomes = Vec::new();
    let mut errors = Vec::new();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let completed = &completed;
            let job = &job;
            scope.spawn(move || loop {
                if let Some(limit) = options.stop_after {
                    if completed.load(Ordering::SeqCst) >= limit {
                        break;
                    }
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&seed) = seeds.get(i) else { break };
                let report = supervise_seed(seed, options, job);
                completed.fetch_add(1, Ordering::SeqCst);
                if tx.send(report).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Collect on the calling thread while workers run, so
        // `on_complete` can journal each seed the moment it lands.
        for report in rx {
            on_complete(&report);
            match (report.outcome, report.error) {
                (Some(outcome), _) => outcomes.push((report.seed, outcome)),
                (None, Some(error)) => errors.push(error),
                (None, None) => {}
            }
        }
    });
    outcomes.sort_by_key(|(seed, _)| *seed);
    errors.sort_by_key(|e: &RunError| e.seed);
    SupervisedResult { outcomes, errors }
}

/// Fans `seeds` over a supervised worker pool: panics are caught, hung
/// attempts are watchdogged, transient failures retried, and every
/// finished seed reported to `on_complete` (on the calling thread, in
/// completion order) before the aggregated, seed-sorted
/// [`CampaignResult`] is returned.
///
/// The job takes a [`RunContext`] rather than a bare seed so the
/// watchdog can cancel it cooperatively and budget-aware jobs can meter
/// their own cycles; lift a plain seed job with [`adapt_seed_job`].
/// This is the `T = RunOutcome` specialization of
/// [`run_supervised_typed`]: it stamps each outcome's
/// [`RunOutcome::wall_time_ms`] from the attempt's measured wall time
/// before journaling or aggregating it.
pub fn run_supervised<F, C>(
    seeds: &[u64],
    options: &SupervisorOptions,
    job: Arc<F>,
    mut on_complete: C,
) -> CampaignResult
where
    F: Fn(&RunContext) -> Result<RunOutcome, RunFailure> + Send + Sync + 'static,
    C: FnMut(&SeedReport),
{
    let mut outcomes = Vec::new();
    let mut errors = Vec::new();
    run_supervised_typed(seeds, options, job, |report: &TypedReport<RunOutcome>| {
        let stamped = report.outcome.clone().map(|mut o| {
            o.wall_time_ms = report.wall_time_ms;
            o
        });
        if options.progress {
            match (&stamped, &report.error) {
                (Some(o), _) => eprintln!(
                    "campaign: seed {} done — {} samples, {} symptoms, \
                     verdict {:?} ({} ms, {} attempt{})",
                    report.seed,
                    o.samples,
                    o.symptoms,
                    o.verdict,
                    o.wall_time_ms,
                    report.attempts,
                    if report.attempts == 1 { "" } else { "s" }
                ),
                (None, Some(e)) => eprintln!(
                    "campaign: seed {} FAILED ({}) after {} attempt{} — {}",
                    report.seed,
                    e.kind.as_str(),
                    report.attempts,
                    if report.attempts == 1 { "" } else { "s" },
                    e.message
                ),
                (None, None) => {}
            }
        }
        let seed_report = SeedReport {
            seed: report.seed,
            attempts: report.attempts,
            outcome: stamped.clone(),
            error: report.error.clone(),
        };
        on_complete(&seed_report);
        match (stamped, report.error.clone()) {
            (Some(outcome), _) => outcomes.push(outcome),
            (None, Some(error)) => errors.push(error),
            (None, None) => {}
        }
    });
    outcomes.sort_by_key(|o: &RunOutcome| o.seed);
    errors.sort_by_key(|e: &RunError| e.seed);
    CampaignResult { outcomes, errors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Verdict;

    fn ok_outcome(seed: u64) -> RunOutcome {
        RunOutcome {
            seed,
            samples: 5,
            symptoms: 0,
            buggy_ranks: vec![],
            verdict: Verdict::Clean,
            trace_digest: format!("{:016x}", splitmix64(seed)),
            wall_time_ms: 0,
        }
    }

    #[test]
    fn panics_become_typed_errors_and_the_pool_survives() {
        let seeds: Vec<u64> = (0..12).collect();
        let job = Arc::new(|ctx: &RunContext| {
            if ctx.seed() % 4 == 2 {
                panic!("boom at {}", ctx.seed());
            }
            Ok(ok_outcome(ctx.seed()))
        });
        let opts = SupervisorOptions {
            threads: 4,
            ..SupervisorOptions::default()
        };
        let result = run_supervised(&seeds, &opts, job, |_| {});
        assert_eq!(result.outcomes.len(), 9);
        assert_eq!(result.errors.len(), 3);
        for e in &result.errors {
            assert_eq!(e.kind, FailureKind::Panic);
            assert_eq!(e.attempts, 1);
            assert!(e.message.contains("boom"), "{}", e.message);
        }
        let failing: Vec<u64> = result.errors.iter().map(|e| e.seed).collect();
        assert_eq!(failing, vec![2, 6, 10]);
    }

    #[test]
    fn transient_failures_clear_on_retry() {
        let job = Arc::new(|ctx: &RunContext| {
            if ctx.attempt() == 1 {
                Err(RunFailure::Transient("flaky".into()))
            } else {
                Ok(ok_outcome(ctx.seed()))
            }
        });
        let opts = SupervisorOptions {
            max_retries: 2,
            backoff_base_ms: 0,
            ..SupervisorOptions::default()
        };
        let mut attempts_seen = Vec::new();
        let result = run_supervised(&[1, 2, 3], &opts, job, |r| attempts_seen.push(r.attempts));
        assert_eq!(result.outcomes.len(), 3);
        assert!(result.errors.is_empty());
        assert_eq!(attempts_seen, vec![2, 2, 2]);
    }

    #[test]
    fn retry_budget_is_bounded_and_fatal_is_not_retried() {
        let fatal_calls = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fatal_calls);
        let job = Arc::new(move |ctx: &RunContext| {
            if ctx.seed() == 1 {
                counter.fetch_add(1, Ordering::SeqCst);
                Err(RunFailure::Fatal("hopeless".into()))
            } else {
                Err(RunFailure::Transient("always flaky".into()))
            }
        });
        let opts = SupervisorOptions {
            max_retries: 2,
            backoff_base_ms: 0,
            ..SupervisorOptions::default()
        };
        let result = run_supervised(&[1, 2], &opts, job, |_| {});
        assert_eq!(result.errors.len(), 2);
        assert_eq!(fatal_calls.load(Ordering::SeqCst), 1); // no retry on Fatal
        assert_eq!(result.errors[0].attempts, 1);
        assert_eq!(result.errors[1].attempts, 3); // 1 try + 2 retries
        assert_eq!(result.errors[1].kind, FailureKind::Error);
    }

    #[test]
    fn watchdog_kills_a_hung_run_and_the_rest_complete() {
        let job = Arc::new(|ctx: &RunContext| {
            if ctx.seed() == 7 {
                // Hang until cancelled (a cooperative runaway).
                while !ctx.cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                return Err(RunFailure::TimedOut("noticed cancellation".into()));
            }
            Ok(ok_outcome(ctx.seed()))
        });
        let opts = SupervisorOptions {
            threads: 2,
            timeout: Some(Duration::from_millis(50)),
            max_retries: 3, // must NOT retry the timeout
            backoff_base_ms: 0,
            ..SupervisorOptions::default()
        };
        let started = Instant::now();
        let result = run_supervised(&[5, 6, 7, 8], &opts, job, |_| {});
        assert!(started.elapsed() < Duration::from_secs(10));
        assert_eq!(result.outcomes.len(), 3);
        assert_eq!(result.errors.len(), 1);
        let e = &result.errors[0];
        assert_eq!((e.seed, e.kind), (7, FailureKind::TimedOut));
        assert_eq!(e.attempts, 1);
        assert!(e.message.contains("watchdog"), "{}", e.message);
    }

    #[test]
    fn stop_after_halts_dispatch_but_finishes_in_flight_seeds() {
        let seeds: Vec<u64> = (0..20).collect();
        let job = Arc::new(|ctx: &RunContext| Ok(ok_outcome(ctx.seed())));
        let opts = SupervisorOptions {
            stop_after: Some(5),
            ..SupervisorOptions::default()
        };
        let result = run_supervised(&seeds, &opts, job, |_| {});
        // Single-threaded: exactly 5 seeds completed, in dispatch order.
        assert_eq!(result.outcomes.len(), 5);
        let done: Vec<u64> = result.outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(done, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_grows() {
        let a: Vec<u64> = (1..6).map(|n| backoff_delay_ms(42, n, 10)).collect();
        let b: Vec<u64> = (1..6).map(|n| backoff_delay_ms(42, n, 10)).collect();
        assert_eq!(a, b);
        // Exponential envelope: attempt n waits at least base * 2^(n-1).
        for (i, &d) in a.iter().enumerate() {
            assert!(d >= 10 << i, "attempt {} delayed only {d} ms", i + 1);
        }
        assert_ne!(
            backoff_delay_ms(1, 1, 10) % 10,
            backoff_delay_ms(2, 1, 10) % 10,
            "jitter should vary with the seed (for these two seeds)"
        );
        assert_eq!(backoff_delay_ms(9, 3, 0), 0);
    }

    #[test]
    fn supervised_matches_plain_campaign_on_the_clean_path() {
        let seeds: Vec<u64> = (100..140).collect();
        let plain = crate::campaign::run_campaign(
            &seeds,
            crate::campaign::CampaignOptions::default(),
            |seed| Ok(ok_outcome(seed)),
        );
        let supervised = run_supervised(
            &seeds,
            &SupervisorOptions {
                threads: 4,
                ..SupervisorOptions::default()
            },
            Arc::new(adapt_seed_job(|seed| Ok(ok_outcome(seed)))),
            |_| {},
        );
        assert_eq!(plain.errors, supervised.errors);
        assert_eq!(plain.outcomes.len(), supervised.outcomes.len());
        for (a, b) in plain.outcomes.iter().zip(&supervised.outcomes) {
            assert!(a.matches(b));
        }
    }

    #[test]
    fn seed_report_round_trips_through_json() {
        let ok = SeedReport {
            seed: 3,
            attempts: 2,
            outcome: Some(ok_outcome(3)),
            error: None,
        };
        let failed = SeedReport {
            seed: 4,
            attempts: 3,
            outcome: None,
            error: Some(RunError {
                seed: 4,
                message: "panicked: boom".into(),
                kind: FailureKind::Panic,
                attempts: 3,
            }),
        };
        for report in [ok, failed] {
            let line = serde_json::to_string(&report).unwrap();
            let back: SeedReport = serde_json::from_str(&line).unwrap();
            assert_eq!(back, report);
        }
    }
}
