//! Parallel seed-sweep campaign orchestration.
//!
//! The paper's §IV premise — transient bugs need *many* randomized
//! testing scenarios before they trigger — makes single-run evaluation
//! misleading: what matters is a *campaign*, a sweep of independent
//! runs over a seed range, with the mining pipeline applied to each run
//! in isolation. This module provides the generic orchestrator:
//!
//! * a job is any `Fn(u64) -> Result<RunOutcome, String> + Send + Sync`
//!   closure mapping a seed to a structured outcome (the application
//!   crates build these; see `sentomist-apps`);
//! * [`run_campaign`] fans the seeds over a worker pool of OS threads
//!   and collects the outcomes **sorted by seed**, so the aggregated
//!   result is identical whether 1 or 16 threads ran it;
//! * [`summarize`] reduces the outcomes to permutation-invariant
//!   campaign statistics (trigger rate, rank quality, sample volumes);
//! * any flagged run is replayable by invoking the same job with the
//!   same seed ([`replay`]) — the [`RunOutcome::trace_digest`] proves
//!   the replay reproduced the original execution bit for bit.
//!
//! Wall-clock timing is observability, not result: the per-run
//! [`RunOutcome::wall_time_ms`] is `#[serde(skip)]`ed so serialized
//! campaign documents stay byte-identical across machines and thread
//! counts.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Did the run trigger the bug (produce any true symptom interval)?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// No symptom interval in this run.
    Clean,
    /// At least one symptom interval — the bug fired.
    Triggered,
}

/// Structured result of one campaign run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Seed of the run (the replay key).
    pub seed: u64,
    /// Event-handling intervals mined from the run.
    pub samples: usize,
    /// Ground-truth symptom intervals among them.
    pub symptoms: usize,
    /// 1-based ranks of the symptom intervals in the run's own
    /// suspicion ranking, ascending; empty for clean runs.
    pub buggy_ranks: Vec<usize>,
    /// Whether the bug triggered.
    pub verdict: Verdict,
    /// FNV-1a digest of the recorded trace(s), as 16 hex digits —
    /// the replay-verification token.
    pub trace_digest: String,
    /// Wall-clock time of the run in milliseconds. Observability only:
    /// excluded from serialization and from [`RunOutcome::matches`].
    #[serde(skip)]
    pub wall_time_ms: u64,
}

impl RunOutcome {
    /// Replay equivalence: every result field agrees (timing ignored).
    pub fn matches(&self, other: &RunOutcome) -> bool {
        self.seed == other.seed
            && self.samples == other.samples
            && self.symptoms == other.symptoms
            && self.buggy_ranks == other.buggy_ranks
            && self.verdict == other.verdict
            && self.trace_digest == other.trace_digest
    }
}

/// How a failed run failed. Plain job errors, caught panics and watchdog
/// kills are distinct: only the first two can be retried, and operators
/// triage them differently (a timeout usually means the scenario hung,
/// not that it crashed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The job returned an error.
    #[default]
    Error,
    /// The job panicked; the supervisor caught it.
    Panic,
    /// The watchdog killed the run (wall-clock or cycle budget exceeded).
    TimedOut,
}

impl FailureKind {
    /// Stable lowercase slug, used by stored manifests.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Error => "error",
            FailureKind::Panic => "panic",
            FailureKind::TimedOut => "timeout",
        }
    }

    /// Inverse of [`FailureKind::as_str`]; unknown (including empty, from
    /// manifests predating failure typing) parses as [`FailureKind::Error`].
    pub fn parse(s: &str) -> FailureKind {
        match s {
            "panic" => FailureKind::Panic,
            "timeout" => FailureKind::TimedOut,
            _ => FailureKind::Error,
        }
    }
}

/// A run that failed outright (VM fault, pipeline error, caught panic,
/// watchdog kill).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunError {
    /// Seed of the failed run.
    pub seed: u64,
    /// The error rendered as text.
    pub message: String,
    /// What class of failure this was.
    pub kind: FailureKind,
    /// Attempts spent on the seed before giving up (1 = no retries).
    pub attempts: u32,
}

impl RunError {
    /// A plain single-attempt job error.
    pub fn new(seed: u64, message: impl Into<String>) -> RunError {
        RunError {
            seed,
            message: message.into(),
            kind: FailureKind::Error,
            attempts: 1,
        }
    }
}

/// Aggregated result of a campaign: outcomes and errors, both sorted by
/// seed, so the whole structure is deterministic regardless of worker
/// scheduling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Per-run outcomes, ascending by seed.
    pub outcomes: Vec<RunOutcome>,
    /// Failed runs, ascending by seed.
    pub errors: Vec<RunError>,
}

impl CampaignResult {
    /// Permutation-invariant summary statistics of the outcomes *and*
    /// failures.
    pub fn summary(&self) -> CampaignSummary {
        summarize_result(&self.outcomes, &self.errors)
    }

    /// Outcomes whose verdict is [`Verdict::Triggered`].
    pub fn triggered(&self) -> impl Iterator<Item = &RunOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.verdict == Verdict::Triggered)
    }

    /// The outcome for `seed`, if that run completed.
    pub fn outcome_for(&self, seed: u64) -> Option<&RunOutcome> {
        self.outcomes
            .binary_search_by_key(&seed, |o| o.seed)
            .ok()
            .map(|i| &self.outcomes[i])
    }

    /// Total wall-clock milliseconds spent inside jobs (across all
    /// workers; with N threads the elapsed time is roughly this / N).
    pub fn cpu_time_ms(&self) -> u64 {
        self.outcomes.iter().map(|o| o.wall_time_ms).sum()
    }
}

/// Campaign-level statistics. Every field is a sum, count, extremum or
/// exact ratio over the outcome *set*, so the summary is invariant under
/// any permutation of the outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Completed runs.
    pub runs: usize,
    /// Runs whose verdict is [`Verdict::Triggered`].
    pub triggered: usize,
    /// `triggered / runs` (0 for an empty campaign).
    pub trigger_rate: f64,
    /// Sum of mined intervals across runs.
    pub total_samples: usize,
    /// Sum of symptom intervals across runs.
    pub total_symptoms: usize,
    /// Fewest intervals mined in one run (0 for an empty campaign).
    pub min_samples: usize,
    /// Most intervals mined in one run.
    pub max_samples: usize,
    /// Mean intervals per run.
    pub mean_samples: f64,
    /// Triggered runs whose best symptom ranked 1st.
    pub hits_top1: usize,
    /// Triggered runs whose best symptom ranked in the top 3.
    pub hits_top3: usize,
    /// Triggered runs whose best symptom ranked in the top 10.
    pub hits_top10: usize,
    /// Runs that failed (job error, panic or watchdog kill) after
    /// exhausting their retry budget.
    pub failed: usize,
    /// Failed runs whose last attempt panicked.
    pub panicked: usize,
    /// Failed runs killed by the watchdog.
    pub timed_out: usize,
    /// Attempts spent on runs that ultimately failed (retries included).
    pub failed_attempts: u64,
    /// `failed / (runs + failed)` (0 for an empty campaign).
    pub failure_rate: f64,
}

/// Reduces outcomes to [`CampaignSummary`]; order-independent. Failure
/// statistics are all zero — use [`summarize_result`] (or
/// [`CampaignResult::summary`]) when the campaign had errors to count.
pub fn summarize(outcomes: &[RunOutcome]) -> CampaignSummary {
    summarize_result(outcomes, &[])
}

/// Reduces outcomes *and* failures to [`CampaignSummary`];
/// order-independent in both lists. The failure fields are computed from
/// the error list alone, so a re-mined corpus (which carries its live
/// campaign's errors in the store manifest) reproduces them exactly.
pub fn summarize_result(outcomes: &[RunOutcome], errors: &[RunError]) -> CampaignSummary {
    let runs = outcomes.len();
    let triggered = outcomes
        .iter()
        .filter(|o| o.verdict == Verdict::Triggered)
        .count();
    let total_samples: usize = outcomes.iter().map(|o| o.samples).sum();
    let total_symptoms: usize = outcomes.iter().map(|o| o.symptoms).sum();
    let hits_within = |k: usize| {
        outcomes
            .iter()
            .filter(|o| o.buggy_ranks.first().is_some_and(|&r| r <= k))
            .count()
    };
    CampaignSummary {
        runs,
        triggered,
        trigger_rate: if runs == 0 {
            0.0
        } else {
            triggered as f64 / runs as f64
        },
        total_samples,
        total_symptoms,
        min_samples: outcomes.iter().map(|o| o.samples).min().unwrap_or(0),
        max_samples: outcomes.iter().map(|o| o.samples).max().unwrap_or(0),
        mean_samples: if runs == 0 {
            0.0
        } else {
            total_samples as f64 / runs as f64
        },
        hits_top1: hits_within(1),
        hits_top3: hits_within(3),
        hits_top10: hits_within(10),
        failed: errors.len(),
        panicked: errors
            .iter()
            .filter(|e| e.kind == FailureKind::Panic)
            .count(),
        timed_out: errors
            .iter()
            .filter(|e| e.kind == FailureKind::TimedOut)
            .count(),
        failed_attempts: errors.iter().map(|e| u64::from(e.attempts)).sum(),
        failure_rate: if runs + errors.len() == 0 {
            0.0
        } else {
            errors.len() as f64 / (runs + errors.len()) as f64
        },
    }
}

/// How a campaign should be driven.
#[derive(Debug, Clone, Copy)]
pub struct CampaignOptions {
    /// Worker threads (clamped to `1..=seeds`).
    pub threads: usize,
    /// Emit one progress line per finished run on stderr.
    pub progress: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            threads: 1,
            progress: false,
        }
    }
}

/// Fans `seeds` over `options.threads` workers, each running `job`, and
/// aggregates the outcomes sorted by seed.
///
/// Determinism contract: provided `job` is a pure function of the seed
/// (every job in this workspace is — the emulator is fully deterministic
/// per seed), the returned [`CampaignResult`] — and hence its serialized
/// form — is identical for every thread count. Worker scheduling only
/// changes *when* each outcome is produced, never what it contains or
/// where it lands.
pub fn run_campaign<F>(seeds: &[u64], options: CampaignOptions, job: F) -> CampaignResult
where
    F: Fn(u64) -> Result<RunOutcome, String> + Send + Sync,
{
    let threads = options.threads.clamp(1, seeds.len().max(1));
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(u64, Result<RunOutcome, String>)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&seed) = seeds.get(i) else { break };
                let start = Instant::now();
                let result = job(seed).map(|mut outcome| {
                    outcome.wall_time_ms = start.elapsed().as_millis() as u64;
                    outcome
                });
                if options.progress {
                    match &result {
                        Ok(o) => eprintln!(
                            "campaign: seed {seed} done — {} samples, {} symptoms, \
                             verdict {:?} ({} ms)",
                            o.samples, o.symptoms, o.verdict, o.wall_time_ms
                        ),
                        Err(e) => eprintln!("campaign: seed {seed} FAILED — {e}"),
                    }
                }
                if tx.send((seed, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
    });
    let mut outcomes = Vec::new();
    let mut errors = Vec::new();
    for (seed, result) in rx {
        match result {
            Ok(outcome) => outcomes.push(outcome),
            Err(message) => errors.push(RunError::new(seed, message)),
        }
    }
    outcomes.sort_by_key(|o| o.seed);
    errors.sort_by_key(|e| e.seed);
    CampaignResult { outcomes, errors }
}

/// Re-runs a single seed through `job` — the reproduce-by-seed entry
/// point. Campaign jobs are pure functions of the seed, so the outcome
/// must [`RunOutcome::matches`] the original campaign entry, trace
/// digest included.
///
/// # Errors
///
/// Propagates the job's error string.
pub fn replay<F>(seed: u64, job: F) -> Result<RunOutcome, String>
where
    F: Fn(u64) -> Result<RunOutcome, String>,
{
    let start = Instant::now();
    let mut outcome = job(seed)?;
    outcome.wall_time_ms = start.elapsed().as_millis() as u64;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_job(seed: u64) -> Result<RunOutcome, String> {
        if seed == 13 {
            return Err("unlucky".into());
        }
        let symptoms = seed.is_multiple_of(3) as usize;
        Ok(RunOutcome {
            seed,
            samples: 10 + (seed % 5) as usize,
            symptoms,
            buggy_ranks: if symptoms > 0 {
                vec![(seed % 7) as usize + 1]
            } else {
                vec![]
            },
            verdict: if symptoms > 0 {
                Verdict::Triggered
            } else {
                Verdict::Clean
            },
            trace_digest: format!("{:016x}", seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            wall_time_ms: 0,
        })
    }

    #[test]
    fn outcomes_sorted_by_seed_for_any_thread_count() {
        let seeds: Vec<u64> = (0..24).rev().collect(); // deliberately unsorted
        let one = run_campaign(
            &seeds,
            CampaignOptions {
                threads: 1,
                progress: false,
            },
            fake_job,
        );
        let four = run_campaign(
            &seeds,
            CampaignOptions {
                threads: 4,
                progress: false,
            },
            fake_job,
        );
        // Timing differs run to run; compare result content.
        assert_eq!(one.errors, four.errors);
        assert_eq!(one.outcomes.len(), four.outcomes.len());
        for (a, b) in one.outcomes.iter().zip(&four.outcomes) {
            assert!(a.matches(b), "seed {} diverged", a.seed);
        }
        let seeds_out: Vec<u64> = one.outcomes.iter().map(|o| o.seed).collect();
        let mut sorted = seeds_out.clone();
        sorted.sort_unstable();
        assert_eq!(seeds_out, sorted);
        assert_eq!(one.errors.len(), 1);
        assert_eq!(one.errors[0].seed, 13);
    }

    #[test]
    fn summary_on_hand_computed_outcomes() {
        let outcomes = vec![
            RunOutcome {
                seed: 1,
                samples: 100,
                symptoms: 0,
                buggy_ranks: vec![],
                verdict: Verdict::Clean,
                trace_digest: "0".repeat(16),
                wall_time_ms: 5,
            },
            RunOutcome {
                seed: 2,
                samples: 300,
                symptoms: 2,
                buggy_ranks: vec![1, 4],
                verdict: Verdict::Triggered,
                trace_digest: "1".repeat(16),
                wall_time_ms: 7,
            },
            RunOutcome {
                seed: 3,
                samples: 200,
                symptoms: 1,
                buggy_ranks: vec![5],
                verdict: Verdict::Triggered,
                trace_digest: "2".repeat(16),
                wall_time_ms: 9,
            },
        ];
        let s = summarize(&outcomes);
        assert_eq!(s.runs, 3);
        assert_eq!(s.triggered, 2);
        assert!((s.trigger_rate - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.total_samples, 600);
        assert_eq!(s.total_symptoms, 3);
        assert_eq!((s.min_samples, s.max_samples), (100, 300));
        assert!((s.mean_samples - 200.0).abs() < 1e-12);
        assert_eq!((s.hits_top1, s.hits_top3, s.hits_top10), (1, 1, 2));
    }

    #[test]
    fn failure_statistics_come_from_the_error_list() {
        let seeds: Vec<u64> = (10..16).collect(); // includes the failing 13
        let result = run_campaign(&seeds, CampaignOptions::default(), fake_job);
        let s = result.summary();
        assert_eq!(s.runs, 5);
        assert_eq!(s.failed, 1);
        assert_eq!((s.panicked, s.timed_out), (0, 0));
        assert_eq!(s.failed_attempts, 1);
        assert!((s.failure_rate - 1.0 / 6.0).abs() < 1e-12);
        // summarize() over outcomes alone reports clean-path zeros.
        assert_eq!(summarize(&result.outcomes).failed, 0);
        assert_eq!(summarize(&result.outcomes).failure_rate, 0.0);
    }

    #[test]
    fn failure_kind_slugs_round_trip() {
        for kind in [
            FailureKind::Error,
            FailureKind::Panic,
            FailureKind::TimedOut,
        ] {
            assert_eq!(FailureKind::parse(kind.as_str()), kind);
        }
        assert_eq!(FailureKind::parse(""), FailureKind::Error);
        assert_eq!(FailureKind::parse("gremlins"), FailureKind::Error);
    }

    #[test]
    fn empty_campaign_summary_is_all_zero() {
        let s = summarize(&[]);
        assert_eq!(s.runs, 0);
        assert_eq!(s.trigger_rate, 0.0);
        assert_eq!(s.mean_samples, 0.0);
        assert_eq!(s.min_samples, 0);
    }

    #[test]
    fn replay_matches_campaign_entry() {
        let seeds: Vec<u64> = (0..10).collect();
        let result = run_campaign(&seeds, CampaignOptions::default(), fake_job);
        let flagged = result.triggered().next().expect("some run triggers");
        let replayed = replay(flagged.seed, fake_job).unwrap();
        assert!(replayed.matches(flagged));
    }

    #[test]
    fn wall_time_stays_out_of_json() {
        let outcome = fake_job(2).unwrap();
        let v = serde::Serialize::to_value(&outcome);
        let map = v.as_map().expect("outcome serializes as a map");
        assert!(map.iter().all(|(k, _)| k != "wall_time_ms"));
        assert!(map.iter().any(|(k, _)| k == "trace_digest"));
    }
}
