//! Baseline-model monitoring: fit the one-class SVM (plus its feature
//! scaler) on a trusted reference run, persist it, and score intervals of
//! *later* runs against the frozen boundary.
//!
//! Batch mining ranks a sample set against itself, which is right for
//! testing campaigns; in regression testing one instead wants "does
//! today's build behave like the known-good run?" — a frozen baseline
//! answers that without re-fitting, and scores stay comparable across
//! runs.

use crate::pipeline::PipelineError;
use crate::sample::{Sample, SampleSet};
use mlcore::{MlError, OcSvmModel, OneClassSvm, Scaler};
use serde::{Deserialize, Serialize};

/// A frozen reference model: scaler + fitted one-class SVM.
///
/// # Examples
///
/// ```
/// use sentomist_core::{baseline::BaselineModel, Sample, SampleIndex};
/// # use sentomist_trace::EventInterval;
/// # fn iv() -> EventInterval {
/// #     EventInterval { irq: 0, start_index: 0, end_index: 1, last_run_index: None,
/// #         start_cycle: 0, end_cycle: 1, task_count: 0 }
/// # }
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let reference: Vec<Sample> = (0..40)
///     .map(|i| Sample {
///         index: SampleIndex::Seq(i),
///         interval: iv(),
///         features: vec![10.0 + (i % 3) as f64, 5.0],
///     })
///     .collect();
/// let model = BaselineModel::fit(&reference, 0.1)?;
/// // A later run's interval that matches the baseline scores high...
/// let normal = model.score(&[10.0, 5.0]);
/// // ...and a deviating one scores lower.
/// let weird = model.score(&[80.0, -3.0]);
/// assert!(weird < normal);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineModel {
    scaler: Scaler,
    model: OcSvmModel,
    /// Feature dimensionality (program length) the model was fit on.
    pub dimension: usize,
}

impl BaselineModel {
    /// Fits a baseline on reference samples with the given ν.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NoSamples`] / [`PipelineError::DimensionMismatch`]
    /// on bad input; [`PipelineError::Detector`] if the solver fails.
    pub fn fit(reference: &[Sample], nu: f64) -> Result<BaselineModel, PipelineError> {
        if reference.is_empty() {
            return Err(PipelineError::NoSamples);
        }
        let dimension = reference[0].features.len();
        let set = SampleSet::from_samples(reference).ok_or(PipelineError::DimensionMismatch)?;
        let scaler = Scaler::fit(&set.features);
        let mut scaled = set.features;
        scaler.transform_in_place(&mut scaled);
        let model = OneClassSvm::with_nu(nu)
            .fit(&scaled)
            .map_err(PipelineError::Detector)?;
        Ok(BaselineModel {
            scaler,
            model,
            dimension,
        })
    }

    /// Signed decision value of one (raw, unscaled) instruction counter:
    /// positive = consistent with the baseline, negative = outside it.
    ///
    /// # Panics
    ///
    /// Panics if the feature dimension differs from the fitted one.
    pub fn score(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.dimension, "dimension mismatch");
        self.model.decide(&self.scaler.transform(features))
    }

    /// Scores a batch of samples, returning `(index-in-input, score)`
    /// sorted ascending (most deviating first).
    pub fn screen(&self, samples: &[Sample]) -> Result<Vec<(usize, f64)>, MlError> {
        if samples.iter().any(|s| s.features.len() != self.dimension) {
            return Err(MlError::RaggedSamples);
        }
        let mut scored: Vec<(usize, f64)> = samples
            .iter()
            .enumerate()
            .map(|(i, s)| (i, self.score(&s.features)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        Ok(scored)
    }

    /// Fraction of reference-class support vectors (a capacity indicator).
    pub fn support_fraction(&self) -> f64 {
        // The model was fit on the reference set; ν lower-bounds this.
        self.model.num_support() as f64 / self.dimension.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleIndex;
    use sentomist_trace::EventInterval;

    fn iv() -> EventInterval {
        EventInterval {
            irq: 0,
            start_index: 0,
            end_index: 1,
            last_run_index: None,
            start_cycle: 0,
            end_cycle: 1,
            task_count: 0,
        }
    }

    fn sample(seq: u32, features: Vec<f64>) -> Sample {
        Sample {
            index: SampleIndex::Seq(seq),
            interval: iv(),
            features,
        }
    }

    fn reference() -> Vec<Sample> {
        (0..40)
            .map(|i| sample(i, vec![100.0 + (i % 4) as f64, 7.0, (i % 3) as f64]))
            .collect()
    }

    #[test]
    fn deviating_sample_scores_below_conforming_one() {
        let model = BaselineModel::fit(&reference(), 0.1).unwrap();
        let normal = model.score(&[101.0, 7.0, 1.0]);
        let weird = model.score(&[101.0, 7.0, 40.0]);
        assert!(weird < normal, "{weird} !< {normal}");
    }

    #[test]
    fn screen_ranks_a_later_run() {
        let model = BaselineModel::fit(&reference(), 0.1).unwrap();
        let mut later = reference();
        later.push(sample(99, vec![160.0, 7.0, 9.0]));
        let screened = model.screen(&later).unwrap();
        assert_eq!(screened[0].0, 40, "the injected deviant screens first");
    }

    #[test]
    fn round_trips_through_json() {
        // serde_json's default float parsing may be off by one ulp (its
        // `float_roundtrip` feature is off), so the contract is scoring
        // agreement within rounding, not bitwise struct equality.
        let model = BaselineModel::fit(&reference(), 0.1).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: BaselineModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dimension, model.dimension);
        for x in [[100.0, 7.0, 2.0], [102.0, 7.0, 0.0], [140.0, 9.0, 5.0]] {
            assert!((back.score(&x) - model.score(&x)).abs() < 1e-9);
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let model = BaselineModel::fit(&reference(), 0.1).unwrap();
        let bad = vec![sample(0, vec![1.0])];
        assert!(model.screen(&bad).is_err());
    }

    #[test]
    fn empty_reference_rejected() {
        assert!(matches!(
            BaselineModel::fit(&[], 0.1),
            Err(PipelineError::NoSamples)
        ));
    }
}
