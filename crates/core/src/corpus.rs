//! Re-mining a persisted trace corpus without re-emulating.
//!
//! A campaign run with `--store` leaves behind a [`TraceStore`]: one
//! directory per seed holding the run's encoded lifecycle traces plus a
//! manifest. [`mine_store`] sweeps that corpus the same way
//! [`run_campaign`](crate::campaign::run_campaign) sweeps seeds — fanned
//! over a worker pool, aggregated sorted by seed — except each "run" is
//! a decode instead of an emulation. Detectors can thus be re-tuned and
//! rankings re-produced at a fraction of the original cost, and (because
//! the mining stage is the same code path the live campaign used) the
//! re-mined document is bit-identical to the live one.

use crate::campaign::{run_campaign, CampaignOptions, CampaignResult, RunOutcome};
use sentomist_trace::Trace;
use sentomist_tracestore::{RunManifest, StoreError, TraceStore};

/// Mines every run stored in `store` with `miner`, a function from the
/// run's seed and decoded traces (node order, digest-verified) to a
/// campaign outcome.
///
/// Store-level failures of a single run — unreadable manifest, corrupt or
/// tampered trace file — land in the result's `errors` list under that
/// run's seed, mirroring how a live campaign reports per-seed job
/// failures; they never panic and never abort the sweep.
///
/// # Errors
///
/// Only listing the corpus can fail the call itself ([`StoreError::Io`]);
/// everything per-run is reported in the [`CampaignResult`].
pub fn mine_store<F>(
    store: &TraceStore,
    options: CampaignOptions,
    miner: F,
) -> Result<CampaignResult, StoreError>
where
    F: Fn(u64, &[Trace]) -> Result<RunOutcome, String> + Send + Sync,
{
    let manifests: Vec<RunManifest> = store.manifests()?;
    let seeds: Vec<u64> = manifests.iter().map(|m| m.seed).collect();
    let by_seed = |seed: u64| -> &RunManifest {
        // seeds[i] comes from manifests[i]; the job only receives those.
        &manifests[seeds.iter().position(|&s| s == seed).expect("known seed")]
    };
    Ok(run_campaign(&seeds, options, |seed| {
        let manifest = by_seed(seed);
        let traces = store.load_traces(manifest).map_err(|e| e.to_string())?;
        miner(seed, &traces)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Verdict;
    use sentomist_trace::TraceEvent;
    use std::path::PathBuf;
    use tinyvm::LifecycleItem;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sentomist-corpus-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn trace_with(cycle: u64) -> Trace {
        Trace {
            events: vec![
                TraceEvent {
                    cycle,
                    item: LifecycleItem::Int(0),
                },
                TraceEvent {
                    cycle: cycle + 2,
                    item: LifecycleItem::Reti,
                },
            ],
            segments: vec![vec![1], vec![3], vec![0]],
            program_len: 1,
        }
    }

    fn outcome_from(seed: u64, traces: &[Trace]) -> Result<RunOutcome, String> {
        Ok(RunOutcome {
            seed,
            samples: traces.iter().map(|t| t.events.len()).sum(),
            symptoms: 0,
            buggy_ranks: vec![],
            verdict: Verdict::Clean,
            trace_digest: format!("{:016x}", traces[0].digest()),
            wall_time_ms: 0,
        })
    }

    #[test]
    fn mines_all_stored_runs_sorted_by_seed() {
        let root = tmpdir("sweep");
        let store = TraceStore::create(&root).unwrap();
        for seed in [9u64, 2, 5] {
            store
                .save_run(seed, "test", 0, &[trace_with(seed * 10)])
                .unwrap();
        }
        let result = mine_store(&store, CampaignOptions::default(), outcome_from).unwrap();
        assert!(result.errors.is_empty());
        let seeds: Vec<u64> = result.outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(seeds, vec![2, 5, 9]);
        assert_eq!(result.outcomes[0].samples, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_run_becomes_a_run_error_not_a_panic() {
        let root = tmpdir("corrupt");
        let store = TraceStore::create(&root).unwrap();
        store.save_run(1, "test", 0, &[trace_with(4)]).unwrap();
        let manifest = store.save_run(2, "test", 0, &[trace_with(8)]).unwrap();
        // Truncate run 2's trace file mid-stream.
        let path = store
            .run_dir(&manifest.run_id)
            .join(&manifest.nodes[0].file);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let result = mine_store(&store, CampaignOptions::default(), outcome_from).unwrap();
        assert_eq!(result.outcomes.len(), 1);
        assert_eq!(result.outcomes[0].seed, 1);
        assert_eq!(result.errors.len(), 1);
        assert_eq!(result.errors[0].seed, 2);
        let _ = std::fs::remove_dir_all(&root);
    }
}
